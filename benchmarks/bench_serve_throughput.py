"""Serve-daemon ingest throughput: frames/sec at N concurrent clients.

Each client is a separate *process* replaying the db benchmark's v2 log
in ``records`` mode — paying the full per-record encode cost a live
profiler pays — so N clients really are N independent producers, not N
threads behind one GIL.

Two measurements, two gates:

* **peak** — one unpaced client at socket speed; gates a frames/sec
  floor on the whole path (encode -> socket -> peek+route -> shard
  decode).
* **scaling** — N in {1, 4, 8} clients each paced to a realistic live
  profiler's record rate (open-loop load, the way real clients
  arrive). The gate is the issue's acceptance claim: aggregate ingest
  at 4 clients must scale over 1 client — i.e. the daemon absorbs four
  full-fidelity streams concurrently, it does not serialize them. The
  paced rate is chosen well under the single-core ceiling so the claim
  is about concurrency, not about outrunning the host CPU.

Results land in benchmarks/out/serve_throughput.json.
"""

import json
import multiprocessing
import os
import time

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeConfig, start_server_thread
from repro.serve.client import fetch_json, replay_log
from repro.stream import open_log_writer
from repro.stream.sinks import LogWriterSink

CLIENT_COUNTS = (1, 4, 8)
WORKERS = 4
#: per-client pacing for the scaling runs, records/sec. Low enough that
#: even 8 clients stay under a slow CI runner's ingest ceiling; the
#: scaling gate then measures concurrency, not raw CPU.
PACED_RATE = 700.0
#: frames/sec one unpaced client must sustain end to end. Local runs do
#: 20-30k; CI runners are slow and shared, hence the wide margin.
SINGLE_CLIENT_FLOOR = 300.0
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "serve_throughput.json")


def _client(path: str, host: str, port: int, rate) -> None:
    replay_log(path, host, port, mode="records", rate=rate)


def _run_clients(ctx, log_path, nclients, rate):
    registry = MetricsRegistry()
    handle = start_server_thread(
        ServeConfig(
            port=0, http_port=0, workers=WORKERS,
            drain_timeout=60.0, quiet=True,
        ),
        registry=registry,
    )
    host, port = handle.ingest_addr
    procs = [
        ctx.Process(target=_client, args=(str(log_path), host, port, rate))
        for _ in range(nclients)
    ]
    t0 = time.perf_counter()
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=600)
    elapsed = time.perf_counter() - t0
    assert all(p.exitcode == 0 for p in procs)
    summary = fetch_json(handle.http_addr, "/summary")
    frames = registry.get("repro_serve_frames_total").value
    records = registry.get("repro_serve_records_total").value
    handle.stop()
    assert summary["objects"] == records  # nothing lost in flight
    return {
        "clients": nclients,
        "workers": WORKERS,
        "rate_per_client": rate,
        "frames": int(frames),
        "records": int(records),
        "seconds": elapsed,
        "frames_per_sec": frames / elapsed,
        "records_per_sec": records / elapsed,
    }


def bench_serve_throughput(benchmark, emit, tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("serve_throughput")
    bench = all_benchmarks()["db"]
    program = compile_benchmark(bench, revised=False)
    log_path = out_dir / "db.dlog2"
    sink = LogWriterSink(open_log_writer(log_path))
    profile_program(
        program, bench.primary_args, interval_bytes=bench.interval_bytes, sink=sink
    )
    ctx = multiprocessing.get_context()

    def measure():
        peak = _run_clients(ctx, log_path, 1, rate=None)
        paced = {
            n: _run_clients(ctx, log_path, n, rate=PACED_RATE)
            for n in CLIENT_COUNTS
        }
        return peak, paced

    peak, paced = benchmark.pedantic(measure, rounds=1, iterations=1)
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(
            {"benchmark": "db", "workers": WORKERS, "peak": peak,
             "paced": [paced[n] for n in CLIENT_COUNTS]},
            f, indent=2,
        )
    emit()
    emit("=== Serve daemon ingest throughput (db log, records mode) ===")
    emit(
        f"peak, 1 unpaced client: {peak['frames_per_sec']:.0f} frames/s "
        f"({peak['records_per_sec']:.0f} records/s)"
    )
    emit(f"{'Clients':>7s} {'Rate/ea':>8s} {'Frames':>9s} {'Seconds':>8s} "
         f"{'Frames/s':>10s} {'vs 1':>6s}")
    base = paced[CLIENT_COUNTS[0]]["frames_per_sec"]
    for n in CLIENT_COUNTS:
        row = paced[n]
        emit(
            f"{n:7d} {row['rate_per_client']:8.0f} {row['frames']:9d} "
            f"{row['seconds']:8.2f} {row['frames_per_sec']:10.0f} "
            f"{row['frames_per_sec'] / base:5.2f}x"
        )
    emit(f"(results written to {os.path.relpath(OUT_PATH)})")
    assert peak["frames_per_sec"] >= SINGLE_CLIENT_FLOOR, (
        f"single-client ingest {peak['frames_per_sec']:.0f} frames/s "
        f"below floor {SINGLE_CLIENT_FLOOR}"
    )
    # The acceptance claim: ingest scales from 1 to 4 concurrent
    # clients. Paced clients all run the same wall-clock window, so
    # absorbing 4 streams concurrently must show up as aggregate
    # throughput; 3x leaves headroom for scheduler noise on 1 core.
    assert paced[4]["frames_per_sec"] >= 3.0 * paced[1]["frames_per_sec"], (
        "4 concurrent paced clients did not scale over 1"
    )
