"""Ablation: deep-GC interval vs measurement precision.

§2.1.1: "After every 100 KB of allocation we trigger a deep GC (a
larger interval yields less precise results)." Sweeping the interval on
juru shows measured drag growing with the interval: coarser sampling
delays the observed collection time of every object.
"""

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program

INTERVALS = [4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024]


def bench_ablation_interval(benchmark, emit):
    bench = all_benchmarks()["juru"]
    program = compile_benchmark(bench, revised=False)

    def measure():
        out = {}
        for interval in INTERVALS:
            profile = profile_program(
                compile_benchmark(bench, revised=False),
                bench.primary_args,
                interval_bytes=interval,
            )
            out[interval] = (
                sum(r.drag for r in profile.records),
                len(profile.samples),
            )
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    del program
    emit()
    emit("=== Ablation: deep-GC interval (juru, original) ===")
    emit(f"{'Interval':>10s} {'Samples':>8s} {'Measured drag (MB^2)':>22s}")
    previous = None
    for interval in INTERVALS:
        drag, samples = results[interval]
        emit(f"{interval:10d} {samples:8d} {drag / (1024.0 ** 4):22.6f}")
        if previous is not None:
            assert drag >= previous * 0.98, "coarser interval should not reduce drag"
        previous = drag
    emit("(larger interval => later observed collection => more measured drag)")
