"""Ablation: nested-allocation-site depth vs attribution quality.

§2.1.1: "The level of nesting can be set in order to tradeoff more
accurate information and speed." At depth 1 jack's biggest drag sites
are anonymous library lines (Vector/HashTable internals); with deeper
nesting the chain reaches the application constructor the paper's
workflow needs (the anchor site).
"""

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core import DragAnalysis
from repro.core.profiler import profile_program

DEPTHS = [1, 2, 4]


def bench_ablation_nesting(benchmark, emit):
    bench = all_benchmarks()["jack"]

    def measure():
        out = {}
        for depth in DEPTHS:
            profile = profile_program(
                compile_benchmark(bench, revised=False),
                bench.primary_args,
                interval_bytes=bench.interval_bytes,
                nesting_depth=depth,
            )
            analysis = DragAnalysis(profile.records)
            top = analysis.sorted_nested(3)
            out[depth] = [
                (g.key, any("NfaBuilder" in frame for frame in g.key)) for g in top
            ]
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Ablation: nested-site depth (jack, original) ===")
    for depth in DEPTHS:
        rows = results[depth]
        anchored = sum(1 for _, hit in rows if hit)
        emit(f"depth {depth}: {anchored}/3 of the top nested sites reach the "
             f"application constructor")
        for key, hit in rows:
            emit(f"    {'[app] ' if hit else '[lib] '}{' <- '.join(key)}")
    assert sum(1 for _, hit in results[1] if hit) == 0
    assert sum(1 for _, hit in results[2] if hit) >= 2
