"""Figure 2: reachable/in-use heap size over allocation time, original
vs revised, for every benchmark.

Prints each panel's four series sampled at 24 points (the paper plots
them as curves; the ASCII renderer in examples/heap_profile_charts.py
draws them) and asserts the qualitative features §4.1 describes.

The curves now come off the streaming ``TimelineBuilder``
(``figure2_series`` folds each run through it); this bench pins the
refactor by recomputing each curve the old batch way and asserting the
series are bit-identical, so the emitted table cannot drift.
"""

from repro.benchmarks.runner import figure2_series
from repro.core.integrals import curve_from_records

MB = 1024.0 * 1024.0
POINTS = 24


def _sample(curve, end_time):
    return [
        curve.value_at(end_time * i // (POINTS - 1)) / MB for i in range(POINTS)
    ]


def _assert_matches_batch(run, curves):
    for result, prefix in ((run.original, "original"), (run.revised, "revised")):
        for kind in ("reachable", "in_use"):
            timeline_curve = curves[f"{prefix}_{kind}"]
            batch_curve = curve_from_records(result.records, kind)
            assert timeline_curve.times == batch_curve.times
            assert timeline_curve.values == batch_curve.values


def bench_figure2(benchmark, emit, pairs, benchmark_names):
    def measure():
        return {name: pairs.get(name, "primary") for name in benchmark_names}

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Figure 2: heap profiles (MB vs MB allocated, 24 samples) ===")
    for name in benchmark_names:
        run = runs[name]
        curves = figure2_series(run)
        _assert_matches_batch(run, curves)
        emit(f"--- {name} (x axis: 0..{run.original.end_time / MB:.2f} MB allocated, "
             f"revised run: 0..{run.revised.end_time / MB:.2f} MB) ---")
        for key, end in (
            ("original_reachable", run.original.end_time),
            ("original_in_use", run.original.end_time),
            ("revised_reachable", run.revised.end_time),
            ("revised_in_use", run.revised.end_time),
        ):
            series = _sample(curves[key], end)
            emit(f"  {key:18s} " + " ".join(f"{v:6.3f}" for v in series))
