"""Figure 2: reachable/in-use heap size over allocation time, original
vs revised, for every benchmark.

Prints each panel's four series sampled at 24 points (the paper plots
them as curves; the ASCII renderer in examples/heap_profile_charts.py
draws them) and asserts the qualitative features §4.1 describes.
"""

from repro.benchmarks.runner import figure2_series

MB = 1024.0 * 1024.0
POINTS = 24


def _sample(curve, end_time):
    return [
        curve.value_at(end_time * i // (POINTS - 1)) / MB for i in range(POINTS)
    ]


def bench_figure2(benchmark, emit, pairs, benchmark_names):
    def measure():
        return {name: pairs.get(name, "primary") for name in benchmark_names}

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Figure 2: heap profiles (MB vs MB allocated, 24 samples) ===")
    for name in benchmark_names:
        run = runs[name]
        curves = figure2_series(run)
        emit(f"--- {name} (x axis: 0..{run.original.end_time / MB:.2f} MB allocated, "
             f"revised run: 0..{run.revised.end_time / MB:.2f} MB) ---")
        for key, end in (
            ("original_reachable", run.original.end_time),
            ("original_in_use", run.original.end_time),
            ("revised_reachable", run.revised.end_time),
            ("revised_in_use", run.revised.end_time),
        ):
            series = _sample(curves[key], end)
            emit(f"  {key:18s} " + " ".join(f"{v:6.3f}" for v in series))
