"""Shared fixtures for the table/figure benches.

Profiled original/revised pairs are expensive, so they are computed
once per session and shared across bench modules. ``emit`` prints
through pytest's capture so the regenerated table rows appear in the
``pytest benchmarks/ --benchmark-only`` output (and are also appended
to benchmarks/out/report.txt).
"""

import os

import pytest

from repro.benchmarks import all_benchmarks, run_pair

REPORT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def emit(request):
    """Print a line through (and past) pytest's output capture."""
    capman = request.config.pluginmanager.getplugin("capturemanager")
    os.makedirs(REPORT_DIR, exist_ok=True)
    report_path = os.path.join(REPORT_DIR, "report.txt")

    def _emit(line: str = "") -> None:
        with open(report_path, "a", encoding="utf-8") as f:
            f.write(line + "\n")
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(line)
        else:
            print(line)

    return _emit


class _PairCache:
    def __init__(self) -> None:
        self._runs = {}

    def get(self, name: str, which: str = "primary"):
        key = (name, which)
        if key not in self._runs:
            self._runs[key] = run_pair(all_benchmarks()[name], which)
        return self._runs[key]


@pytest.fixture(scope="session")
def pairs():
    return _PairCache()


@pytest.fixture(scope="session")
def benchmark_names():
    # paper's presentation order (Tables 2-5), plus our cache probe
    return ["javac", "jack", "raytrace", "jess", "euler", "mc", "juru", "analyzer", "db", "cache"]
