"""Table 4: runtime savings under the generational collector.

The paper timed HotSpot 1.3 Client (generational GC) on a Pentium-II;
we run both program versions unprofiled under our generational
collector and apply the deterministic cost model (instructions +
allocation/initialization + GC work). "Speedups are due to two
factors: (i) allocation savings ... and (ii) GC is invoked less
frequently" — both terms are visible in the model.
"""

from repro.benchmarks import all_benchmarks
from repro.benchmarks.paper import TABLE4
from repro.benchmarks.runner import run_runtime_pair


def bench_table4(benchmark, emit, benchmark_names):
    benches = all_benchmarks()

    def measure():
        return {name: run_runtime_pair(benches[name]) for name in benchmark_names}

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Table 4: runtime savings (generational GC, simulated cost) ===")
    emit(
        f"{'Benchmark':10s} {'Revised':>12s} {'Original':>12s} "
        f"{'Saving%':>8s} {'(paper)':>8s}"
    )
    for name in benchmark_names:
        run = runs[name]
        emit(
            f"{name:10s} {run.revised_runtime:12.0f} {run.original_runtime:12.0f} "
            f"{run.saving_pct:8.2f} {TABLE4[name]:8.2f}"
        )
    avg = sum(runs[n].saving_pct for n in benchmark_names) / len(benchmark_names)
    emit(f"{'average':10s} {'':12s} {'':12s} {avg:8.2f} {1.07:8.2f}")
    emit("(cost units, not seconds; the paper's negatives are measurement noise "
         "our deterministic model cannot show)")
