"""Table 2: drag and space savings for the primary inputs.

For every benchmark, profiles the original and revised versions,
computes the reachable/in-use space-time integrals (MByte²), and the
paper's two ratios — drag saving and space saving — printing measured
vs published values.
"""

from repro.benchmarks.paper import TABLE2


def bench_table2(benchmark, emit, pairs, benchmark_names):
    def measure():
        return {name: pairs.get(name, "primary") for name in benchmark_names}

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Table 2: drag and space savings (primary inputs) ===")
    emit(
        f"{'Benchmark':10s} {'RedIn-Use':>10s} {'RedReach':>10s} "
        f"{'OrigIn-Use':>11s} {'OrigReach':>10s} "
        f"{'Drag%':>7s} {'(paper)':>8s} {'Space%':>7s} {'(paper)':>8s}"
    )
    for name in benchmark_names:
        run = runs[name]
        s = run.savings
        paper = TABLE2[name]
        assert run.outputs_match(), f"{name}: revised output differs"
        emit(
            f"{name:10s} {s.reduced_in_use:10.4f} {s.reduced_reachable:10.4f} "
            f"{s.original_in_use:11.4f} {s.original_reachable:10.4f} "
            f"{s.drag_saving_pct:7.1f} {paper['drag_saving_pct'] or 0:8.2f} "
            f"{s.space_saving_pct:7.1f} {paper['space_saving_pct'] or 0:8.2f}"
        )
    avg_space = sum(runs[n].savings.space_saving_pct for n in benchmark_names) / len(
        benchmark_names
    )
    avg_drag = sum(runs[n].savings.drag_saving_pct for n in benchmark_names) / len(
        benchmark_names
    )
    emit(f"{'average':10s} {'':10s} {'':10s} {'':11s} {'':10s} "
         f"{avg_drag:7.1f} {51.0:8.2f} {avg_space:7.1f} {14.0:8.2f}")
    emit("(integrals are MByte^2 on scaled-down workloads; ratios are the "
         "comparable quantity)")
