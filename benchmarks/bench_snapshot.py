"""Benchmark: heap-snapshot capture overhead at deep-GC safepoints.

Snapshots piggyback on the moments the profiler already stops the
world (the interval deep GC plus program end), and capture only reads
the heap — so the whole cost is the worklist walk and varint packing.
The gate: on db, a profiled run with snapshot capture enabled keeps at
least 90% of the plain profiled run's instructions per second (i.e.
capture overhead ≤ 10%).

Best-of-N wall-clock over fresh programs per round, like the other
overhead benches. The captured stream is also sanity-checked (same
profile records, snapshots at every safepoint). Results land in
benchmarks/out/snapshot_overhead.json.
"""

import json
import os
import time

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program
from repro.snapshot import SnapshotRecorder

BENCHES = ["db", "euler"]
ROUNDS = 3
#: Snapshot capture must keep at least this fraction of plain-profiled
#: instructions/sec on db (the gated row).
MIN_IPS_RATIO = 0.90
GATED = "db"
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "snapshot_overhead.json")


def _best_run(name, with_snapshots):
    bench = all_benchmarks()[name]
    args = bench.args_for("primary")
    best = None
    result = recorder = None
    for _ in range(ROUNDS):
        program = compile_benchmark(bench, revised=False)
        rec = SnapshotRecorder(buffered=True) if with_snapshots else None
        started = time.perf_counter()
        res = profile_program(
            program,
            list(args),
            interval_bytes=bench.interval_bytes,
            max_heap=bench.max_heap,
            snapshotter=rec,
        )
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best, result, recorder = elapsed, res, rec
    return result, recorder, best


def bench_snapshot_overhead(benchmark, emit):
    def measure():
        rows = {}
        for name in BENCHES:
            plain, _none, t_plain = _best_run(name, with_snapshots=False)
            snapped, recorder, t_snap = _best_run(name, with_snapshots=True)
            # Capture must not perturb the profile: identical stdout,
            # byte clock, and record count.
            assert snapped.run_result.stdout == plain.run_result.stdout
            assert snapped.end_time == plain.end_time
            assert len(snapped.records) == len(plain.records)
            assert recorder.capture_count >= 2
            instructions = plain.run_result.instructions
            rows[name] = {
                "instructions": instructions,
                "snapshots": recorder.capture_count,
                "nodes": recorder.node_count,
                "edges": recorder.edge_count,
                "plain_s": t_plain,
                "snapshot_s": t_snap,
                "plain_ips": instructions / t_plain if t_plain else 0.0,
                "snapshot_ips": instructions / t_snap if t_snap else 0.0,
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Snapshot capture overhead: profiled instr/sec, plain vs capture ===")
    emit(
        f"{'Benchmark':10s} {'Instructions':>13s} {'Snaps':>6s} {'Nodes':>8s} "
        f"{'Plain i/s':>13s} {'Capture i/s':>13s} {'Ratio':>7s}"
    )
    for name in BENCHES:
        row = rows[name]
        ratio = row["snapshot_ips"] / row["plain_ips"] if row["plain_ips"] else 0.0
        row["ips_ratio"] = ratio
        emit(
            f"{name:10s} {row['instructions']:13d} {row['snapshots']:6d} "
            f"{row['nodes']:8d} {row['plain_ips']:13,.0f} "
            f"{row['snapshot_ips']:13,.0f} {ratio:6.3f}x"
        )
    gated = rows[GATED]["ips_ratio"]
    assert gated >= MIN_IPS_RATIO, (
        f"{GATED}: snapshot capture keeps only {gated:.1%} of plain profiled "
        f"instr/sec (gate: ≥ {MIN_IPS_RATIO:.0%})"
    )
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(
            {"min_ips_ratio": MIN_IPS_RATIO, "gated": GATED, "rows": rows},
            f,
            indent=2,
            sort_keys=True,
        )
    emit(
        f"(capture keeps {gated:.1%} of plain instr/sec on {GATED}, "
        f"gate ≥ {MIN_IPS_RATIO:.0%}; JSON at {os.path.relpath(OUT_PATH)})"
    )
