"""Benchmark: byte-weighted sampling must cost less than full profiling.

``--sample-bytes`` exists to make the profiler cheap enough to leave
on, so the gate is comparative: on db and euler, a sampled profiled
run (``--sample-bytes 4096``) must push strictly more instructions per
second than the full profiler — most records are never built, logged,
or trailed — while staying strictly slower than running unprofiled
(sampling still pays the hook dispatch and the byte-countdown).

Best-of-N wall-clock over fresh programs per round (compiled-handler
caches are per program). The full-vs-sampled floor is asserted; the
unprofiled row is reported for context. Results land in
benchmarks/out/sampling_overhead.json.
"""

import json
import os
import time

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program

BENCHES = ["db", "euler"]
ROUNDS = 3
SAMPLE_BYTES = 4096
SEED = 0
OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "sampling_overhead.json")


def _best_profiled_run(name, sample_bytes=None):
    bench = all_benchmarks()[name]
    args = bench.args_for("primary")
    best = None
    result = None
    for _ in range(ROUNDS):
        program = compile_benchmark(bench, revised=False)
        started = time.perf_counter()
        result = profile_program(
            program,
            list(args),
            interval_bytes=bench.interval_bytes,
            sample_bytes=sample_bytes,
            seed=SEED,
        )
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def bench_sampling_overhead(benchmark, emit):
    def measure():
        rows = {}
        for name in BENCHES:
            full, t_full = _best_profiled_run(name)
            sampled, t_sampled = _best_profiled_run(name, sample_bytes=SAMPLE_BYTES)
            # Sampling must not perturb the program: identical output
            # and byte clock, and the thinner log really is thinner.
            assert sampled.run_result.stdout == full.run_result.stdout
            assert sampled.end_time == full.end_time
            assert 0 < len(sampled.records) < len(full.records)
            instructions = full.run_result.instructions
            rows[name] = {
                "instructions": instructions,
                "records_full": len(full.records),
                "records_sampled": len(sampled.records),
                "full_s": t_full,
                "sampled_s": t_sampled,
                "full_ips": instructions / t_full if t_full else 0.0,
                "sampled_ips": instructions / t_sampled if t_sampled else 0.0,
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit(
        f"=== Sampling overhead: profiled instr/sec, full vs "
        f"--sample-bytes {SAMPLE_BYTES} ==="
    )
    emit(
        f"{'Benchmark':10s} {'Instructions':>13s} {'Records':>15s} "
        f"{'Full i/s':>13s} {'Sampled i/s':>13s} {'Speedup':>8s}"
    )
    for name in BENCHES:
        row = rows[name]
        speedup = (
            row["sampled_ips"] / row["full_ips"] if row["full_ips"] else 0.0
        )
        row["speedup"] = speedup
        emit(
            f"{name:10s} {row['instructions']:13d} "
            f"{row['records_full']:6d}->{row['records_sampled']:<6d} "
            f"{row['full_ips']:13,.0f} {row['sampled_ips']:13,.0f} "
            f"{speedup:7.3f}x"
        )
        assert row["sampled_ips"] > row["full_ips"], (
            f"{name}: sampled profiling ({row['sampled_ips']:,.0f} i/s) not "
            f"faster than the full profiler ({row['full_ips']:,.0f} i/s)"
        )
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(
            {"sample_bytes": SAMPLE_BYTES, "seed": SEED, "rows": rows},
            f,
            indent=2,
            sort_keys=True,
        )
    emit(f"(sampled instr/sec strictly above full profiling on every row; "
         f"JSON at {os.path.relpath(OUT_PATH)})")
