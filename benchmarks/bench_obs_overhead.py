"""Microbenchmark: telemetry overhead must stay within noise.

The observability layer promises two things at once: attached telemetry
observes every GC cycle and dispatch event, and *disabled* telemetry
leaves zero call sites in the compiled handlers. This bench enforces
the quantitative half of that contract — with a live Telemetry (tracer
+ metrics registry) attached, instr/sec on db and euler must stay
within 3% of the telemetry-off run — and re-asserts the qualitative
half: stdout, instruction counts, and byte clocks are bit-identical
either way. Best-of-N timing on both engines; the floor is only
enforced on the compiled engine, where the specialization machinery
lives (the baseline engine rows are reported for context).
"""

import time

from repro.obs import Telemetry
from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.runtime.engine import create_vm

BENCHES = ["db", "euler"]
ROUNDS = 3
OVERHEAD_FLOOR = 0.97  # traced instr/sec must be >= 97% of untraced


def _best_run(name, engine, traced):
    bench = all_benchmarks()[name]
    args = bench.args_for("primary")
    best = None
    result = None
    for _ in range(ROUNDS):
        # Fresh program and VM per round: compiled handlers cache per
        # program, and telemetry specialization happens at translation
        # time, so reuse would let one config warm up the other.
        program = compile_benchmark(bench, revised=False)
        vm = create_vm(
            program,
            engine=engine,
            max_heap=bench.max_heap,
            telemetry=Telemetry() if traced else None,
        )
        started = time.perf_counter()
        result = vm.run(list(args))
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def bench_obs_overhead(benchmark, emit):
    def measure():
        rows = {}
        for name in BENCHES:
            for engine in ("baseline", "compiled"):
                off, t_off = _best_run(name, engine, traced=False)
                on, t_on = _best_run(name, engine, traced=True)
                assert on.stdout == off.stdout
                assert on.instructions == off.instructions
                assert on.clock == off.clock
                rows[(name, engine)] = {
                    "instructions": off.instructions,
                    "off_ips": off.instructions / t_off if t_off else 0.0,
                    "on_ips": on.instructions / t_on if t_on else 0.0,
                }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Telemetry overhead: instr/sec with tracer+metrics attached ===")
    emit(
        f"{'Benchmark':10s} {'Engine':>10s} {'Instructions':>13s} "
        f"{'Off i/s':>13s} {'On i/s':>13s} {'Ratio':>7s}"
    )
    for name in BENCHES:
        for engine in ("baseline", "compiled"):
            row = rows[(name, engine)]
            ratio = row["on_ips"] / row["off_ips"] if row["off_ips"] else 0.0
            emit(
                f"{name:10s} {engine:>10s} {row['instructions']:13d} "
                f"{row['off_ips']:13,.0f} {row['on_ips']:13,.0f} "
                f"{ratio:6.3f}"
            )
            if engine == "compiled":
                assert ratio >= OVERHEAD_FLOOR, (
                    f"{name}/{engine}: telemetry overhead ratio {ratio:.3f} "
                    f"< {OVERHEAD_FLOOR} floor (>3% slowdown)"
                )
    emit("(telemetry on/off runs produce identical stdout, instruction "
         "counts, and byte clocks; profile-log bit-identity is enforced "
         "by tests/obs/test_telemetry_integration.py)")
