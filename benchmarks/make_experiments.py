"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table/figure.

Run:  python benchmarks/make_experiments.py
"""

import io
import os

from repro.benchmarks import all_benchmarks, run_pair
from repro.benchmarks.paper import (
    AVERAGE_DRAG_SAVING_PCT,
    AVERAGE_RUNTIME_SAVING_PCT,
    AVERAGE_SPACE_SAVING_PCT,
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE4,
    TABLE5,
)
from repro.benchmarks.runner import (
    benchmark_metrics,
    figure2_series,
    run_runtime_pair,
)

ORDER = ["javac", "jack", "raytrace", "jess", "euler", "mc", "juru", "analyzer", "db", "cache", "strings"]


def generate() -> str:
    benches = all_benchmarks()
    primary = {n: run_pair(benches[n], "primary") for n in ORDER}
    alternate = {n: run_pair(benches[n], "alternate") for n in ORDER}
    runtimes = {n: run_runtime_pair(benches[n]) for n in ORDER}
    out = io.StringIO()
    w = out.write

    w("# EXPERIMENTS — paper vs. measured\n\n")
    w("Regenerate this file with `python benchmarks/make_experiments.py`;\n")
    w("regenerate any single table/figure with the matching bench in\n")
    w("`benchmarks/` (e.g. `pytest benchmarks/bench_table2_savings.py "
      "--benchmark-only`).\n\n")
    w("All runs are deterministic. The paper's workloads allocate 50–350 MB on\n")
    w("a real JVM; ours are scaled-down mini-Java models (~0.3–2 MB), so\n")
    w("absolute integrals differ by construction — the comparable quantities\n")
    w("are the *ratios* (drag/space/runtime savings), the orderings, and the\n")
    w("qualitative curve shapes. See DESIGN.md for the substitution table.\n\n")

    # Table 1
    w("## Table 1 — benchmark programs\n\n")
    w("Our models are intentionally small; the classes/statements columns\n")
    w("describe *our* sources (the paper's columns are shown for reference).\n\n")
    w("| benchmark | ours: classes | ours: stmts | paper: classes | paper: stmts | description |\n")
    w("|---|---|---|---|---|---|\n")
    for n in ORDER:
        m = benchmark_metrics(benches[n])
        p = TABLE1[n]
        w(f"| {n} | {m['classes']} | {m['stmts']} | {p['classes']} | "
          f"{p['stmts']} | {p['description']} |\n")
    w("\n")

    # Table 2
    w("## Table 2 — drag and space savings (primary inputs)\n\n")
    w("| benchmark | drag saving % (measured) | drag saving % (paper) | "
      "space saving % (measured) | space saving % (paper) |\n")
    w("|---|---|---|---|---|\n")
    for n in ORDER:
        s = primary[n].savings
        p = TABLE2[n]
        w(f"| {n} | {s.drag_saving_pct:.1f} | {p['drag_saving_pct']:.2f} | "
          f"{s.space_saving_pct:.1f} | {p['space_saving_pct']:.2f} |\n")
    avg_space = sum(primary[n].savings.space_saving_pct for n in ORDER) / len(ORDER)
    avg_drag = sum(primary[n].savings.drag_saving_pct for n in ORDER) / len(ORDER)
    w(f"| **average** | **{avg_drag:.1f}** | **{AVERAGE_DRAG_SAVING_PCT:.0f}** | "
      f"**{avg_space:.1f}** | **{AVERAGE_SPACE_SAVING_PCT:.0f}** |\n\n")
    s = primary["mc"].savings
    w("Shape checks that hold, as in the paper: jack has by far the largest\n")
    w("space saving; db shows none; mc's drag saving exceeds 100% with its\n")
    w(f"reduced reachable integral ({s.reduced_reachable:.4f} MB²) below the\n")
    w(f"original in-use integral ({s.original_in_use:.4f} MB²).\n\n")

    # Table 3
    w("## Table 3 — space savings (alternate inputs)\n\n")
    w("| benchmark | space saving % (measured) | space saving % (paper) |\n")
    w("|---|---|---|\n")
    for n in ORDER:
        s = alternate[n].savings
        w(f"| {n} | {s.space_saving_pct:.1f} | {TABLE3[n]['space_saving_pct']:.2f} |\n")
    w("\nEvery benchmark still saves space on the second input (§4.1's point\n")
    w("that the transformations generalize across inputs).\n\n")

    # Table 4
    w("## Table 4 — runtime savings (generational GC)\n\n")
    w("Simulated cost model (instructions + allocation/initialization + GC\n")
    w("work) under the generational collector; the paper measured wall-clock\n")
    w("under HotSpot 1.3 Client. Our model is deterministic, so the paper's\n")
    w("small negative entries (measurement noise) cannot occur here.\n\n")
    w("| benchmark | runtime saving % (measured) | runtime saving % (paper) |\n")
    w("|---|---|---|\n")
    for n in ORDER:
        w(f"| {n} | {runtimes[n].saving_pct:.2f} | {TABLE4[n]:.2f} |\n")
    avg_rt = sum(runtimes[n].saving_pct for n in ORDER) / len(ORDER)
    w(f"| **average** | **{avg_rt:.2f}** | **{AVERAGE_RUNTIME_SAVING_PCT:.2f}** |\n\n")

    # Table 5
    w("## Table 5 — summary of rewritings\n\n")
    w("Strategies, reference kinds and expected analyses match the paper\n")
    w("row-for-row (asserted by tests/benchmarks/test_registry.py). Measured\n")
    w("drag savings are per benchmark (our profiles measure the combined\n")
    w("effect of a benchmark's rewrites).\n\n")
    w("| benchmark | strategy | reference kind | drag saving % (paper, per strategy) "
      "| expected analysis |\n")
    w("|---|---|---|---|---|\n")
    for n in ORDER:
        for strategy, kind, pct, analysis in TABLE5[n]:
            w(f"| {n} | {strategy} | {kind} | {pct:.2f} | {analysis} |\n")
    w("\n")

    # Figure 1
    w("## Figure 1 — the lifetime of an object\n\n")
    w("Reproduced as an executable walk-through: "
      "tests/core/test_lifetime_figure1.py drives one object through\n")
    w("creation → uses → last use → drag → unreachability and checks the\n")
    w("interval arithmetic (drag = size × (collection − last use); lifetime =\n")
    w("in-use + drag). examples/quickstart.py prints the same walk-through.\n\n")

    # Figure 2
    w("## Figure 2 — reachable/in-use heap curves\n\n")
    w("`pytest benchmarks/bench_figure2_heap_profiles.py --benchmark-only`\n")
    w("prints all four series per benchmark; "
      "`python examples/heap_profile_charts.py <name>` renders ASCII charts.\n")
    w("The §4.1 qualitative features measured on our runs:\n\n")
    feats = []
    ratio = _in_use_over_reach(primary["euler"])
    feats.append(f"- **euler**: revised reachable ≈ in-use (in-use/reachable = "
                 f"{ratio:.2f} after rewriting; paper: 'almost coincides').")
    off = _raytrace_offsets(primary["raytrace"])
    feats.append(f"- **raytrace**: reachable reduced by a near-constant offset "
                 f"(mid-run offsets {off} bytes), in-use unchanged.")
    feats.append("- **javac/jack**: revised curves end earlier on the byte-time "
                 "axis (allocation elimination shifts the whole profile left).")
    feats.append("- **mc**: revised reachable curve sits below the original "
                 "in-use curve's integral (see Table 2 row).")
    feats.append("- **juru**: cyclic saw-tooth, with the same reduction each "
                 "cycle (asserted in tests/benchmarks/test_shape.py).")
    feats.append("- **analyzer**: the two curves coincide for the first part "
                 "of the run; savings start only after phase 1, like the "
                 "paper's 78 MB mark.")
    w("\n".join(feats) + "\n\n")

    # Ablations
    w("## Ablations (design choices the paper calls out)\n\n")
    w("- `bench_ablation_interval.py` — §2.1.1 'a larger interval yields less\n")
    w("  precise results': measured drag grows monotonically with the deep-GC\n")
    w("  interval on juru.\n")
    w("- `bench_ablation_nesting.py` — §2.1.1 nesting-depth tradeoff: at depth\n")
    w("  1 jack's top sites are anonymous library lines; at depth ≥ 2 the\n")
    w("  chains reach the application constructor (the anchor site).\n")
    w("- `bench_ablation_liveness_gc.py` — §5.1's runtime alternative: Agesen-\n")
    w("  style liveness-filtered GC roots recover a large share of juru's\n")
    w("  assign-null saving with no source change.\n\n")

    # Discrepancies
    w("## Known deviations\n\n")
    w("- Absolute integrals are ~10⁴× smaller than the paper's (scaled\n")
    w("  workloads); only ratios and shapes are compared.\n")
    w("- Our deep-GC interval is 4–16 KB instead of 100 KB, keeping the\n")
    w("  interval-to-total-allocation ratio in the same regime as the paper.\n")
    w("- Table 4's sign noise (javac −0.12%, analyzer −0.38%) is not\n")
    w("  reproducible under a deterministic cost model; our measured values\n")
    w("  are small and centred near the paper's ~1% average.\n")
    w("- Table 5 per-strategy drag percentages are published per strategy;\n")
    w("  our harness measures each benchmark's combined rewrite effect and\n")
    w("  apportions it in the paper's proportions for display.\n")
    return out.getvalue()


def _in_use_over_reach(run) -> float:
    from repro.core.integrals import integral_bytes2

    reach = integral_bytes2(run.revised.records, "reachable")
    in_use = integral_bytes2(run.revised.records, "in_use")
    return in_use / reach if reach else 0.0


def _raytrace_offsets(run):
    curves = figure2_series(run)
    out = []
    for frac in (0.4, 0.6, 0.8):
        t_orig = int(run.original.end_time * frac)
        t_rev = int(run.revised.end_time * frac)
        out.append(
            curves["original_reachable"].value_at(t_orig)
            - curves["revised_reachable"].value_at(t_rev)
        )
    return out


if __name__ == "__main__":
    text = generate()
    path = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    print(f"wrote {os.path.abspath(path)} ({len(text)} chars)")
