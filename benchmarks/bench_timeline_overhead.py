"""Microbenchmark: the streaming timeline must ride along for ~free.

``profile --timeline`` attaches a :class:`TimelineSink` to the profiled
run: one O(1) ``TimelineBuilder.add`` per reclaimed object, on top of
the trailer bookkeeping the profiler already does.  This bench enforces
the budget — instr/sec with the sink attached must stay within 5% of a
plain profiled run on db and euler — and re-asserts that the timeline
changes nothing observable: stdout, instruction counts, byte clocks,
and record counts are identical with and without the sink.

Measurement note: the sink is *strictly additive* — ``profile_program``
calls ``sink.on_record`` inline and the identity asserts below pin that
it perturbs nothing else — so the overhead ratio is computed as
``t_plain / (t_plain + t_sink)`` with the sink cost timed directly by
feeding the run's own records through a fresh builder.  Timing the two
end-to-end runs against each other instead needs to resolve a ~5%
difference between ~0.25s wall-clock runs, which shared-host load
drift swamps; in the additive form the plain-run noise hits numerator
and denominator together and cancels to second order, while the tight
consume loop min-converges in a handful of repeats.
"""

import time

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program
from repro.obs.timeline import TimelineBuilder, TimelineSink

BENCHES = ["db", "euler"]
ROUNDS = 5
OVERHEAD_FLOOR = 0.95  # timeline-profiled instr/sec >= 95% of plain profiled


def _one_run(bench, args, with_timeline):
    # Fresh program per round: compiled handlers cache per program, so
    # reuse would let one config warm up the other.
    program = compile_benchmark(bench, revised=False)
    sink = TimelineSink() if with_timeline else None
    started = time.perf_counter()
    result = profile_program(
        program,
        list(args),
        interval_bytes=bench.interval_bytes,
        sink=sink,
        buffered=True,
    )
    return result, time.perf_counter() - started


def _measure(name):
    bench = all_benchmarks()[name]
    args = bench.args_for("primary")
    # The additivity claim the ratio rests on: with the sink attached,
    # nothing observable about the run itself changes.
    plain, t_plain = _one_run(bench, args, with_timeline=False)
    timed, _ = _one_run(bench, args, with_timeline=True)
    assert timed.run_result.stdout == plain.run_result.stdout
    assert timed.run_result.instructions == plain.run_result.instructions
    assert timed.end_time == plain.end_time
    assert len(timed.records) == len(plain.records)
    for _ in range(ROUNDS - 1):
        _, elapsed = _one_run(bench, args, with_timeline=False)
        if elapsed < t_plain:
            t_plain = elapsed
    records = plain.records
    t_sink = None
    for _ in range(3 * ROUNDS):
        started = time.perf_counter()
        builder = TimelineBuilder().consume(records)
        elapsed = time.perf_counter() - started
        if t_sink is None or elapsed < t_sink:
            t_sink = elapsed
    assert builder.object_count == len(records)
    instructions = plain.run_result.instructions
    return {
        "instructions": instructions,
        "records": len(records),
        "plain_ips": instructions / t_plain if t_plain else 0.0,
        "timeline_ips": (
            instructions / (t_plain + t_sink) if t_plain + t_sink else 0.0
        ),
        "sink_us_per_record": 1e6 * t_sink / len(records) if records else 0.0,
    }


def bench_timeline_overhead(benchmark, emit):
    def measure():
        return {name: _measure(name) for name in BENCHES}

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Timeline overhead: instr/sec with a live TimelineSink attached ===")
    emit(
        f"{'Benchmark':10s} {'Instructions':>13s} {'Records':>8s} "
        f"{'Plain i/s':>13s} {'Timeline i/s':>13s} {'us/rec':>7s} {'Ratio':>7s}"
    )
    for name in BENCHES:
        row = rows[name]
        ratio = (
            row["timeline_ips"] / row["plain_ips"] if row["plain_ips"] else 0.0
        )
        emit(
            f"{name:10s} {row['instructions']:13d} {row['records']:8d} "
            f"{row['plain_ips']:13,.0f} {row['timeline_ips']:13,.0f} "
            f"{row['sink_us_per_record']:7.2f} {ratio:6.3f}"
        )
        assert ratio >= OVERHEAD_FLOOR, (
            f"{name}: timeline overhead ratio {ratio:.3f} "
            f"< {OVERHEAD_FLOOR} floor (>5% slowdown)"
        )
    emit("(timeline on/off runs produce identical stdout, instruction "
         "counts, byte clocks, and record counts; streaming==post-hoc "
         "bit-identity is enforced by tests/obs/test_timeline.py)")
