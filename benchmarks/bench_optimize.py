"""The optimize gate, benched: the verified pipeline on db and euler.

Runs the full §3.2 fixpoint loop (max 3 cycles) with differential
verification on, asserts the gate invariants — every applied patch
verified stdout-identical with non-increasing drag, no rollbacks on
these inputs, total drag strictly decreasing — and records per-cycle
drag deltas to benchmarks/out/optimize_gate.json.
"""

import json
import os

import pytest

from repro.benchmarks.registry import get_benchmark
from repro.runtime.library import link
from repro.transform import OptimizationPipeline

OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "optimize_gate.json")


def _record(name, result):
    cycles = []
    for index, cycle in enumerate(result.cycles, 1):
        cycles.append(
            {
                "cycle": index,
                "drag_before": cycle.drag_before,
                "drag_after": cycle.drag_after,
                "drag_saved": cycle.drag_saved,
                "applied": [o.patch.to_dict() for o in cycle.applied()],
                "rolled_back": [o.patch.to_dict() for o in cycle.rolled_back()],
                "skips": len(cycle.skips),
            }
        )
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    data = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH, encoding="utf-8") as f:
            data = json.load(f)
    data[name] = {
        "drag_before": result.drag_before,
        "drag_after": result.drag_after,
        "cycles": cycles,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)


@pytest.mark.parametrize("name", ["db", "euler"])
def bench_optimize_gate(benchmark, emit, name):
    bench = get_benchmark(name)

    def run_pipeline():
        pipeline = OptimizationPipeline(
            link(bench.original),
            bench.main_class,
            bench.primary_args,
            interval_bytes=bench.interval_bytes,
            verify=True,
            max_cycles=3,
        )
        return pipeline.run()

    result = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    # Gate invariants.
    assert result.applied(), "pipeline applied nothing"
    for outcome in result.applied():
        assert outcome.verification is not None and outcome.verification.ok, (
            f"{name}: unverified applied patch {outcome.patch!r}"
        )
    assert not result.rolled_back(), f"{name}: unexpected rollback"
    assert result.drag_after is not None
    assert result.drag_after < result.drag_before, f"{name}: drag did not decrease"

    _record(name, result)
    emit()
    emit(f"=== Optimize gate: {name} ===")
    for index, cycle in enumerate(result.cycles, 1):
        emit(
            f"cycle {index}: drag {cycle.drag_before} -> {cycle.drag_after} "
            f"(saved {cycle.drag_saved}), "
            f"{cycle.applied_count} applied, {len(cycle.rolled_back())} rolled back, "
            f"{len(cycle.skips)} skipped"
        )
    pct = 100.0 * (result.drag_before - result.drag_after) / result.drag_before
    emit(f"total: {pct:.1f}% drag removed over {len(result.cycles)} cycle(s); "
         f"every applied patch differentially verified")
