"""The heap-liveness layer, benched: analysis cost and drag payoff.

Two claims to back with numbers:

* the interprocedural access-graph analysis (DRAG006/DRAG007) keeps
  the lint pipeline cheap — full lint with the heap rules costs at
  most 2x a lint restricted to the five flow-insensitive rules;
* the analysis pays for itself: on db (the benchmark the paper found
  no rewriting for, §4.1) and on cache (our pattern-4 probe) the
  heap-driven planner produces verified patches with strictly
  decreasing measured drag.

Per-benchmark timings, patch counts and drag deltas are recorded to
benchmarks/out/heap_liveness.json.
"""

import json
import os
import time

from repro.benchmarks.registry import get_benchmark
from repro.lint import lint_program
from repro.runtime.library import link
from repro.transform import OptimizationPipeline
from repro.transform.planners import HeapAssignNullPlanner

OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "heap_liveness.json")

LINT_BENCHES = ["db", "euler", "jess", "cache"]
OPT_BENCHES = ["db", "cache"]
BASELINE_RULES = ["DRAG001", "DRAG002", "DRAG003", "DRAG004", "DRAG005"]
HEAP_RULES = BASELINE_RULES + ["DRAG006", "DRAG007"]


def _best_of(fn, repeats=3):
    """Best-of-N wall time: the least noisy point estimate for a
    deterministic computation."""
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_heap_liveness(benchmark, emit):
    def measure():
        rows = {}
        for name in LINT_BENCHES:
            bench = get_benchmark(name)
            program_ast = link(bench.original)
            t_base, _ = _best_of(
                lambda: lint_program(program_ast, bench.main_class, rules=BASELINE_RULES)
            )
            t_full, full = _best_of(
                lambda: lint_program(program_ast, bench.main_class, rules=HEAP_RULES)
            )
            counts = full.counts()
            rows[name] = {
                "t_lint_baseline": t_base,
                "t_lint_full": t_full,
                "ratio": t_full / t_base if t_base else 0.0,
                "drag006": counts.get("DRAG006", 0),
                "drag007": counts.get("DRAG007", 0),
            }
        for name in OPT_BENCHES:
            bench = get_benchmark(name)
            pipeline = OptimizationPipeline(
                link(bench.original),
                bench.main_class,
                args=bench.args_for("primary"),
                interval_bytes=bench.interval_bytes,
                max_cycles=1,
                verify=True,
                strategies=[HeapAssignNullPlanner()],
            )
            result = pipeline.run()
            rows[name]["heap_patches"] = len(result.applied())
            rows[name]["rolled_back"] = len(result.rolled_back())
            rows[name]["drag_before"] = result.drag_before
            rows[name]["drag_after"] = result.drag_after
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(rows, f, indent=2, sort_keys=True)

    emit()
    emit("=== Heap liveness: lint cost and verified drag payoff ===")
    emit(
        f"{'Benchmark':10s} {'Base lint':>10s} {'Full lint':>10s} {'Ratio':>6s} "
        f"{'D006':>5s} {'D007':>5s}"
    )
    for name in LINT_BENCHES:
        row = rows[name]
        emit(
            f"{name:10s} {row['t_lint_baseline']:9.3f}s {row['t_lint_full']:9.3f}s "
            f"{row['ratio']:5.2f}x {row['drag006']:5d} {row['drag007']:5d}"
        )
        # the heap rules must stay cheap relative to the flow-insensitive
        # lint (the ISSUE's 2x runtime budget)
        assert row["ratio"] <= 2.0, (name, row["ratio"])
    for name in OPT_BENCHES:
        row = rows[name]
        saved = row["drag_before"] - row["drag_after"]
        pct = 100.0 * saved / row["drag_before"] if row["drag_before"] else 0.0
        emit(
            f"{name}: {row['heap_patches']} verified heap patch(es), "
            f"{row['rolled_back']} rolled back, drag {row['drag_before']} -> "
            f"{row['drag_after']} (-{pct:.1f}%)"
        )
        assert row["heap_patches"] >= 1, name
        assert row["rolled_back"] == 0, name
        assert row["drag_after"] < row["drag_before"], name
    emit(f"(full rows in {os.path.relpath(OUT_PATH)})")
