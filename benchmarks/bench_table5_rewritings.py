"""Table 5: summary of rewritings — strategy, reference kind, the drag
saving attributed to each benchmark's rewrites, and the static analysis
expected to automate them (§5)."""

from repro.benchmarks import all_benchmarks
from repro.benchmarks.paper import TABLE5


def bench_table5(benchmark, emit, pairs, benchmark_names):
    benches = all_benchmarks()

    def measure():
        return {
            name: pairs.get(name, "primary")
            for name in benchmark_names
            if benches[name].rewritings
        }

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Table 5: summary of rewritings ===")
    emit(
        f"{'Benchmark':10s} {'Strategy':18s} {'Reference kind':36s} "
        f"{'Drag%':>7s} {'(paper)':>8s}  Expected analysis"
    )
    for name in benchmark_names:
        bench = benches[name]
        if not bench.rewritings:
            emit(f"{name:10s} (no rewriting applies — §3.4 pattern 4)")
            continue
        measured_total = runs[name].savings.drag_saving_pct
        paper_rows = TABLE5[name]
        paper_total = sum(row[2] for row in paper_rows)
        for i, rewriting in enumerate(bench.rewritings):
            paper_pct = paper_rows[i][2]
            # Our profiles measure the combined saving; attribute it to
            # strategies in the paper's proportions for the per-row view.
            share = measured_total * (paper_pct / paper_total) if paper_total else 0.0
            emit(
                f"{name:10s} {rewriting.strategy:18s} {rewriting.reference_kind:36s} "
                f"{share:7.1f} {paper_pct:8.2f}  {rewriting.expected_analysis}"
            )
