"""Ablation: liveness-aided GC roots (Agesen et al., §5.1).

"This information can be passed to GC ... so that the root set is
reduced at runtime. Alternatively, the program can be transformed to
assign null to dead references." Running juru's *original* source with
liveness-filtered roots recovers much of the saving the manual
assign-null rewrite achieves — the runtime alternative the paper cites.
"""

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core import HeapProfiler
from repro.core.integrals import integral_mb2
from repro.runtime.interpreter import Interpreter


def _profile(bench, revised, liveness_roots):
    program = compile_benchmark(bench, revised=revised)
    profiler = HeapProfiler(interval_bytes=bench.interval_bytes)
    interp = Interpreter(program, profiler=profiler, liveness_roots=liveness_roots)
    interp.run(bench.primary_args)
    return profiler.records


def bench_ablation_liveness_gc(benchmark, emit):
    bench = all_benchmarks()["juru"]

    def measure():
        return {
            "original": _profile(bench, revised=False, liveness_roots=False),
            "liveness-gc": _profile(bench, revised=False, liveness_roots=True),
            "rewritten": _profile(bench, revised=True, liveness_roots=False),
        }

    records = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Ablation: liveness-aided GC roots vs source rewrite (juru) ===")
    base = integral_mb2(records["original"], "reachable")
    emit(f"{'Configuration':16s} {'Reachable MB^2':>15s} {'vs original':>12s}")
    for key in ("original", "liveness-gc", "rewritten"):
        reach = integral_mb2(records[key], "reachable")
        emit(f"{key:16s} {reach:15.4f} {100.0 * (base - reach) / base:11.1f}%")
    live_gain = base - integral_mb2(records["liveness-gc"], "reachable")
    rewrite_gain = base - integral_mb2(records["rewritten"], "reachable")
    assert live_gain > 0
    emit(
        f"(liveness-aided roots recover "
        f"{100.0 * live_gain / max(rewrite_gain, 1e-12):.0f}% of the rewrite's saving "
        "with no source change)"
    )
