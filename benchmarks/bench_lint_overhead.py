"""Microbenchmark: lint pipeline cost and worklist-seeding payoff.

Two claims to back with numbers:

* the direction-aware (reverse-)postorder worklist seeding in
  :mod:`repro.analysis.dataflow` reaches the same fixpoints as naive
  program-order seeding in far fewer solver iterations on real code
  (every liveness solve the linter runs on every benchmark method);
* linting a whole benchmark — compile, call graph, CFGs, all five
  rules — costs a small fraction of profiling it once, which is the
  point of a *static* drag tool.
"""

import time

from repro.analysis import dataflow
from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import liveness
from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.profiler import profile_program
from repro.lint import lint_program
from repro.runtime.library import link

BENCHES = ["db", "euler", "jess"]


def _liveness_iterations(program, order):
    """Total solver iterations to run ref-liveness over every compiled
    method of the program with the given worklist seeding."""
    dataflow.stats.reset()
    fixpoints = {}
    for cls in program.classes.values():
        members = list(cls.methods.values())
        if cls.ctor is not None:
            members.append(cls.ctor)
        if cls.clinit is not None:
            members.append(cls.clinit)
        for method in members:
            if method.is_native or not method.code:
                continue
            cfg = build_cfg(method)
            live = liveness(method, cfg=cfg, order=order)
            fixpoints[(cls.name, method.name)] = (
                tuple(live.live_in),
                tuple(live.live_out),
            )
    return dataflow.stats.total_iterations, fixpoints


def bench_lint_overhead(benchmark, emit):
    def measure():
        rows = {}
        for name in BENCHES:
            bench = all_benchmarks()[name]
            compiled = compile_benchmark(bench, revised=False)

            rpo_iters, rpo_fix = _liveness_iterations(compiled, "rpo")
            lin_iters, lin_fix = _liveness_iterations(compiled, "linear")
            # identical fixpoints — seeding only changes convergence speed
            assert rpo_fix.keys() == lin_fix.keys()
            for key in rpo_fix:
                assert rpo_fix[key] == lin_fix[key], key

            program_ast = link(bench.original)
            t0 = time.perf_counter()
            lint = lint_program(program_ast, bench.main_class)
            t_lint = time.perf_counter() - t0

            t0 = time.perf_counter()
            profile_program(
                compiled, bench.primary_args, interval_bytes=bench.interval_bytes
            )
            t_profile = time.perf_counter() - t0

            rows[name] = {
                "rpo_iters": rpo_iters,
                "lin_iters": lin_iters,
                "findings": sum(lint.counts().values()),
                "t_lint": t_lint,
                "t_profile": t_profile,
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Static lint overhead (worklist seeding + lint vs profile) ===")
    emit(
        f"{'Benchmark':10s} {'RPO iters':>10s} {'Linear':>8s} {'Saved':>7s} "
        f"{'Findings':>9s} {'Lint':>8s} {'Profile':>9s}"
    )
    for name in BENCHES:
        row = rows[name]
        saved = (
            100.0 * (row["lin_iters"] - row["rpo_iters"]) / row["lin_iters"]
            if row["lin_iters"]
            else 0.0
        )
        emit(
            f"{name:10s} {row['rpo_iters']:10d} {row['lin_iters']:8d} "
            f"{saved:6.1f}% {row['findings']:9d} {row['t_lint']:7.3f}s "
            f"{row['t_profile']:8.3f}s"
        )
        # the seeding must never be worse, and on real loopy code it
        # should actually win; timing is hardware-dependent, iteration
        # counts are not
        assert row["rpo_iters"] <= row["lin_iters"]
    emit("(identical liveness fixpoints under both seedings; iteration "
         "counts are deterministic)")
