"""Table 1: the benchmark programs — classes and source statements.

Regenerates the table for *our* mini-Java models, side by side with the
paper's numbers (which describe the real Java benchmarks; ours are
scaled-down models, so the columns differ in magnitude by design).
"""

from repro.benchmarks import all_benchmarks
from repro.benchmarks.paper import TABLE1
from repro.benchmarks.runner import benchmark_metrics


def bench_table1(benchmark, emit, benchmark_names):
    benches = all_benchmarks()

    def measure():
        return {name: benchmark_metrics(benches[name]) for name in benchmark_names}

    metrics = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Table 1: benchmark programs ===")
    emit(f"{'Benchmark':10s} {'Classes':>8s} {'Stmts':>7s}   "
         f"{'(paper cls)':>11s} {'(paper stmts)':>13s}   Description")
    for name in benchmark_names:
        ours = metrics[name]
        paper = TABLE1[name]
        emit(
            f"{name:10s} {ours['classes']:8d} {ours['stmts']:7d}   "
            f"{paper['classes']:11d} {paper['stmts']:13d}   {paper['description']}"
        )
