"""Microbenchmark: buffered vs streaming profiling, v1 vs v2 log size.

The streaming pipeline only earns its keep if (a) emitting records into
a sink instead of a list costs little, and (b) the v2 codec shrinks
logs enough to matter. This bench profiles db and euler both ways,
times the runs, writes both log formats, and emits the comparison —
with the invariant check that both paths log identical record streams.
"""

import os
import time

from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.core.logfile import read_log, write_log
from repro.core.profiler import profile_program
from repro.stream import LogWriterSink, open_log_writer

BENCHES = ["db", "euler"]


def bench_stream_overhead(benchmark, emit, tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("stream_overhead")

    def measure():
        rows = {}
        for name in BENCHES:
            bench = all_benchmarks()[name]
            program = compile_benchmark(bench, revised=False)
            args = bench.primary_args

            t0 = time.perf_counter()
            buffered = profile_program(
                program, args, interval_bytes=bench.interval_bytes
            )
            t_buffered = time.perf_counter() - t0

            v2_path = out_dir / f"{name}.dlog2"
            sink = LogWriterSink(open_log_writer(v2_path))
            t0 = time.perf_counter()
            streamed = profile_program(
                program, args, interval_bytes=bench.interval_bytes, sink=sink
            )
            t_streamed = time.perf_counter() - t0

            v1_path = out_dir / f"{name}.draglog"
            write_log(v1_path, buffered.records, end_time=buffered.end_time)

            # both paths must describe the same stream
            loaded = read_log(v2_path)
            assert len(loaded.records) == len(buffered.records)
            assert sum(r.drag for r in loaded.records) == sum(
                r.drag for r in buffered.records
            )
            assert streamed.profiler.record_count == len(buffered.records)
            assert streamed.records == []  # nothing buffered on the stream path

            rows[name] = {
                "records": len(buffered.records),
                "t_buffered": t_buffered,
                "t_streamed": t_streamed,
                "v1_bytes": os.path.getsize(v1_path),
                "v2_bytes": os.path.getsize(v2_path),
            }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Streaming pipeline overhead (buffered vs --sink stream) ===")
    emit(
        f"{'Benchmark':10s} {'Records':>8s} {'Buffered':>9s} {'Streamed':>9s} "
        f"{'Overhead':>9s} {'v1 log':>9s} {'v2 log':>9s} {'Shrink':>7s}"
    )
    for name in BENCHES:
        row = rows[name]
        overhead = (
            100.0 * (row["t_streamed"] - row["t_buffered"]) / row["t_buffered"]
            if row["t_buffered"] > 0
            else 0.0
        )
        shrink = row["v1_bytes"] / row["v2_bytes"] if row["v2_bytes"] else 0.0
        emit(
            f"{name:10s} {row['records']:8d} {row['t_buffered']:8.3f}s "
            f"{row['t_streamed']:8.3f}s {overhead:+8.1f}% "
            f"{row['v1_bytes']:9d} {row['v2_bytes']:9d} {shrink:6.1f}x"
        )
        # the codec should compress substantially; timing is hardware-
        # dependent so only the size claim is asserted
        assert row["v2_bytes"] * 4 < row["v1_bytes"]
    emit("(streamed runs buffer no records in the profiler: memory is "
         "O(live objects + sites))")
