"""Table 3: space savings on alternate inputs.

§4.1: "We also ran each benchmark on an input other than the one
initially analyzed by the tool ... the transformations work for
multiple inputs."
"""

from repro.benchmarks.paper import TABLE3


def bench_table3(benchmark, emit, pairs, benchmark_names):
    def measure():
        return {name: pairs.get(name, "alternate") for name in benchmark_names}

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Table 3: drag and space savings (alternate inputs) ===")
    emit(
        f"{'Benchmark':10s} {'RedReach':>10s} {'OrigReach':>10s} "
        f"{'Space%':>7s} {'(paper)':>8s}"
    )
    for name in benchmark_names:
        run = runs[name]
        s = run.savings
        paper = TABLE3[name]
        assert run.outputs_match(), f"{name}: revised output differs"
        emit(
            f"{name:10s} {s.reduced_reachable:10.4f} {s.original_reachable:10.4f} "
            f"{s.space_saving_pct:7.1f} {paper['space_saving_pct'] or 0:8.2f}"
        )
    emit("(every benchmark still saves space on the second input, as in the paper)")
