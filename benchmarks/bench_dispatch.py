"""Microbenchmark: baseline if/elif dispatch vs precompiled closures.

The compiled engine translates each method into handler closures at
first call — operand decoding and opcode comparisons move from run time
to translation time, and profiler hooks are specialized out entirely
when no profiler is attached. This bench times both engines on db,
euler, and jess (unprofiled and profiled), asserts the bit-identity
invariants the differential suite enforces, and checks the headline
claim: compiled is at least 1.3x baseline instr/sec on db and euler
when unprofiled.
"""

import time

from repro.core.profiler import HeapProfiler
from repro.benchmarks import all_benchmarks
from repro.benchmarks.runner import compile_benchmark
from repro.runtime.engine import create_vm

BENCHES = ["db", "euler", "jess"]
SPEEDUP_FLOOR = {"db": 1.3, "euler": 1.3}


def _timed_run(name, engine, profiled):
    bench = all_benchmarks()[name]
    # Fresh program per run: VM-internal sites register lazily in the
    # program's site table, so sharing would skew profiled site ids.
    program = compile_benchmark(bench, revised=False)
    profiler = (
        HeapProfiler(interval_bytes=bench.interval_bytes) if profiled else None
    )
    vm = create_vm(
        program, engine=engine, max_heap=bench.max_heap, profiler=profiler
    )
    args = bench.args_for("primary")
    started = time.perf_counter()
    result = vm.run(list(args))
    elapsed = time.perf_counter() - started
    return result, elapsed


def bench_dispatch(benchmark, emit):
    def measure():
        rows = {}
        for name in BENCHES:
            for profiled in (False, True):
                base, t_base = _timed_run(name, "baseline", profiled)
                comp, t_comp = _timed_run(name, "compiled", profiled)
                assert comp.stdout == base.stdout
                assert comp.instructions == base.instructions
                assert comp.clock == base.clock
                rows[(name, profiled)] = {
                    "instructions": base.instructions,
                    "base_ips": base.instructions / t_base if t_base else 0.0,
                    "comp_ips": comp.instructions / t_comp if t_comp else 0.0,
                }
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit()
    emit("=== Dispatch engines: baseline if/elif vs precompiled closures ===")
    emit(
        f"{'Benchmark':10s} {'Mode':>10s} {'Instructions':>13s} "
        f"{'Baseline i/s':>13s} {'Compiled i/s':>13s} {'Speedup':>8s}"
    )
    for name in BENCHES:
        for profiled in (False, True):
            row = rows[(name, profiled)]
            speedup = (
                row["comp_ips"] / row["base_ips"] if row["base_ips"] else 0.0
            )
            mode = "profiled" if profiled else "plain"
            emit(
                f"{name:10s} {mode:>10s} {row['instructions']:13d} "
                f"{row['base_ips']:13,.0f} {row['comp_ips']:13,.0f} "
                f"{speedup:7.2f}x"
            )
            floor = SPEEDUP_FLOOR.get(name)
            if floor and not profiled:
                assert speedup >= floor, (
                    f"{name}: compiled engine {speedup:.2f}x < {floor}x floor"
                )
    emit("(both engines produce identical stdout, instruction counts, "
         "and byte clocks; enforced above and by the differential suite)")
