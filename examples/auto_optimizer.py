"""The automatic optimizer: profile-guided rewriting, end to end.

The paper closes with: "In the future we hope to develop feasible
compiler algorithms that can achieve part of these savings." This
example runs that pipeline, verified: strategies plan structured
patches from the drag profile joined with the lint findings, each
patch is applied and differentially verified (identical stdout,
non-increasing drag — unsound patches would be rolled back), and the
revised source is printed as a diff for inspection.

Run:  python examples/auto_optimizer.py
"""

from repro import link, pretty_print, profile_source
from repro.core.integrals import savings
from repro.mjava.pretty import unified_source_diff
from repro.transform import OptimizationPipeline

SOURCE = """
class Report {
    Vector lines;
    int verbose;
    Report(int verbose) {
        this.verbose = verbose;
        lines = new Vector(600);
    }
    int flush() {
        if (verbose > 0) {
            lines.add("report line");
            return lines.size();
        }
        return 0;
    }
}

class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int job = 0; job < 25; job = job + 1) {
            int verbose = 0;
            if (job == 12) { verbose = 1; }
            Report report = new Report(verbose);
            total = total + report.flush();
            work(job);
        }
        char[] forgotten = new char[6000];
        System.printInt(total);
    }
    static void work(int job) {
        char[] buffer = new char[4000];
        for (int i = 0; i < buffer.length; i = i + 16) {
            buffer[i] = (char) ('a' + (job + i) % 26);
        }
        churn();
    }
    static void churn() {
        for (int i = 0; i < 30; i = i + 1) { char[] tmp = new char[100]; }
    }
}
"""


def profile(program_ast):
    from repro import compile_program, profile_program

    return profile_program(
        compile_program(program_ast, main_class="Main"), [], interval_bytes=4096
    )


def main() -> None:
    program = link(SOURCE)
    pipeline = OptimizationPipeline(program, "Main", interval_bytes=4096, verify=True)

    print("=== planned patches ===")
    print(pipeline.plan().describe_plan())

    result = pipeline.run()
    revised = result.revised
    cycle = result.cycles[0]

    print("\n=== pipeline decisions (verified) ===")
    print(cycle.summary())
    print(
        f"\nverification: {cycle.applied_count} applied, "
        f"{len(result.rolled_back())} rolled back; "
        f"drag {cycle.drag_before} -> {cycle.drag_after}"
    )

    before = profile(link(SOURCE))
    after = profile(revised)
    assert before.run_result.stdout == after.run_result.stdout
    row = savings(before.records, after.records)
    print("\n=== effect ===")
    print(f"drag saving  {row.drag_saving_pct:.1f}%")
    print(f"space saving {row.space_saving_pct:.1f}%")

    print("\n=== rewrite diff (application classes) ===")
    diff = unified_source_diff(program, revised)
    print("".join(
        line for line in diff.splitlines(keepends=True)
        if "Locale" not in line  # elide the removed library initializers
    ), end="")

    print("\n=== revised application source (library elided) ===")
    text = pretty_print(revised)
    for chunk in text.split("\n\n"):
        if chunk.startswith("class Report") or chunk.startswith("class Main"):
            print(chunk)
            print()


if __name__ == "__main__":
    main()
