"""The automatic optimizer: profile-guided rewriting, end to end.

The paper closes with: "In the future we hope to develop feasible
compiler algorithms that can achieve part of these savings." This
example runs that pipeline: the advisor profiles the program, walks the
sites in drag order, classifies each one's lifetime pattern (§3.4),
validates the matching transformation with the Section-5 analyses, and
rewrites the source. The revised source is printed for inspection.

Run:  python examples/auto_optimizer.py
"""

from repro import link, optimize, pretty_print, profile_source
from repro.core.integrals import savings

SOURCE = """
class Report {
    Vector lines;
    int verbose;
    Report(int verbose) {
        this.verbose = verbose;
        lines = new Vector(600);
    }
    int flush() {
        if (verbose > 0) {
            lines.add("report line");
            return lines.size();
        }
        return 0;
    }
}

class Main {
    public static void main(String[] args) {
        int total = 0;
        for (int job = 0; job < 25; job = job + 1) {
            int verbose = 0;
            if (job == 12) { verbose = 1; }
            Report report = new Report(verbose);
            total = total + report.flush();
            work(job);
        }
        char[] forgotten = new char[6000];
        System.printInt(total);
    }
    static void work(int job) {
        char[] buffer = new char[4000];
        for (int i = 0; i < buffer.length; i = i + 16) {
            buffer[i] = (char) ('a' + (job + i) % 26);
        }
        churn();
    }
    static void churn() {
        for (int i = 0; i < 30; i = i + 1) { char[] tmp = new char[100]; }
    }
}
"""


def profile(program_ast):
    from repro import compile_program, profile_program

    return profile_program(
        compile_program(program_ast, main_class="Main"), [], interval_bytes=4096
    )


def main() -> None:
    program = link(SOURCE)
    revised, report = optimize(program, "Main", interval_bytes=4096)

    print("=== advisor decisions ===")
    print(report.summary())

    before = profile(link(SOURCE))
    after = profile(revised)
    assert before.run_result.stdout == after.run_result.stdout
    row = savings(before.records, after.records)
    print("\n=== effect ===")
    print(f"drag saving  {row.drag_saving_pct:.1f}%")
    print(f"space saving {row.space_saving_pct:.1f}%")

    print("\n=== revised application source (library elided) ===")
    text = pretty_print(revised)
    for chunk in text.split("\n\n"):
        if chunk.startswith("class Report") or chunk.startswith("class Main"):
            print(chunk)
            print()


if __name__ == "__main__":
    main()
