"""Leak hunt: the paper's manual workflow on the juru benchmark.

1. Profile the original program (phase 1).
2. Read the sorted drag report, find the anchor allocation site, and
   classify its lifetime pattern (phase 2, §3.4).
3. Apply the suggested rewrite — here, assigning null to a dead local
   (§3.3.1) — with liveness analysis validating safety.
4. Re-profile and report the drag/space savings (the Table-2 quantities).

Run:  python examples/leak_hunt.py
"""

from repro import DragAnalysis, drag_report, profile_program, savings
from repro.benchmarks import get_benchmark
from repro.benchmarks.runner import compile_benchmark
from repro.core.anchor import anchor_site
from repro.core.patterns import classify_group, suggest_transformation


def main() -> None:
    bench = get_benchmark("juru")
    original = profile_program(
        compile_benchmark(bench, revised=False),
        bench.primary_args,
        interval_bytes=bench.interval_bytes,
    )

    print("=== phase 2: where does the drag come from? ===")
    analysis = DragAnalysis(original.records, include_library_sites=False)
    print(drag_report(analysis, top=3, interval_bytes=bench.interval_bytes,
                      program=original.program))

    top = analysis.sorted_sites(1)[0]
    pattern = classify_group(top, interval_bytes=bench.interval_bytes)
    anchor = anchor_site(top, original.program)
    print(f"\ntop site {top.key} (anchor {anchor}) has pattern {pattern.name}")
    print(f"suggested transformation: {suggest_transformation(pattern)}")

    # The benchmark ships the paper's manual rewrite: buffer = null after
    # its last use in indexDocument.
    revised = profile_program(
        compile_benchmark(bench, revised=True),
        bench.primary_args,
        interval_bytes=bench.interval_bytes,
    )
    assert original.run_result.stdout == revised.run_result.stdout

    row = savings(original.records, revised.records)
    print("\n=== after the rewrite (Table-2 quantities) ===")
    print(f"reachable integral: {row.original_reachable:.4f} -> "
          f"{row.reduced_reachable:.4f} MB^2")
    print(f"in-use integral:    {row.original_in_use:.4f} -> "
          f"{row.reduced_in_use:.4f} MB^2")
    print(f"drag saving  {row.drag_saving_pct:.1f}%   (paper: 33.68%)")
    print(f"space saving {row.space_saving_pct:.1f}%   (paper: 10.95%)")


if __name__ == "__main__":
    main()
