"""Quickstart: profile a mini-Java program and read the drag report.

Walks the Figure-1 lifecycle (creation -> last use -> drag ->
unreachable) on a small program, then prints the phase-2 report the
tool gives a programmer: allocation sites sorted by drag space-time
product, with lifetime patterns and suggested transformations.

Run:  python examples/quickstart.py
"""

from repro import DragAnalysis, drag_report, profile_source

SOURCE = """
class Cache {
    private char[] table;
    Cache(int size) { table = new char[size]; }
    int probe(int key) { return table[key % table.length]; }
}

class Main {
    public static void main(String[] args) {
        // a cache used early, dragging for the rest of the run
        Cache cache = new Cache(20000);
        for (int i = 0; i < 50; i = i + 1) {
            int hit = cache.probe(i);
        }
        // a buffer that is allocated but never used at all
        char[] scratch = new char[8000];
        // the actual work: churn plus a little persistent output
        Vector results = new Vector(16);
        for (int round = 0; round < 40; round = round + 1) {
            char[] work = new char[1000];
            work[0] = (char) ('a' + round % 26);
            if (round % 10 == 0) { results.add(work); }
        }
        System.printInt(results.size());
    }
}
"""


def main() -> None:
    interval = 8 * 1024  # deep GC every 8 KB of allocation (paper: 100 KB)
    result = profile_source(SOURCE, "Main", interval_bytes=interval)
    print("program output:", result.run_result.stdout)
    print(f"allocated {result.end_time} bytes; "
          f"{len(result.records)} objects logged; "
          f"{len(result.samples)} deep-GC samples\n")

    # Figure 1 on one object: the cache's backing array.
    record = max(
        (r for r in result.records if r.type_name == "char[]"), key=lambda r: r.size
    )
    print("Figure 1 for the cache's char[] (times are bytes allocated):")
    print(f"  created     at {record.creation_time}")
    print(f"  last used   at {record.last_use_time}")
    print(f"  unreachable at {record.collection_time}")
    print(f"  in-use time {record.in_use_time}, drag time {record.drag_time}, "
          f"drag product {record.drag} bytes^2\n")

    analysis = DragAnalysis(result.records)
    print(drag_report(analysis, top=5, interval_bytes=interval, program=result.program))


if __name__ == "__main__":
    main()
