"""GC strategy comparison on one workload.

Runs the same program under (a) whole-heap mark-sweep, (b) the
generational collector (the Table-4 configuration), and (c) mark-sweep
with liveness-aided roots (the Agesen-style alternative §5.1 cites for
assigning null), and compares collector work and what survives.

Run:  python examples/gc_comparison.py
"""

from repro import Engine, compile_program, link
from repro.runtime.generational import GenerationalCollector

SOURCE = """
class Main {
    static Object[] tenured = new Object[150];
    public static void main(String[] args) {
        for (int i = 0; i < 150; i = i + 1) { tenured[i] = new char[200]; }
        for (int round = 0; round < 12; round = round + 1) {
            char[] buffer = new char[8000];
            buffer[0] = 'x';
            churn();
        }
        System.println("done");
    }
    static void churn() {
        for (int i = 0; i < 120; i = i + 1) { char[] junk = new char[100]; }
    }
}
"""


def run(label, **kwargs):
    program = compile_program(link(SOURCE), main_class="Main")
    engine = Engine(program, max_heap=96 * 1024, **kwargs)
    result = engine.run([])
    interp = engine.vm
    stats = interp.heap.stats
    print(
        f"{label:22s} gc_runs={stats.gc_runs:3d} "
        f"(minor {stats.minor_gc_runs}, major {stats.major_gc_runs})  "
        f"marked={stats.objects_marked:6d}  swept={stats.objects_swept:6d}  "
        f"live_end={interp.heap.object_count():4d}"
    )
    return result


def main() -> None:
    print(f"{'collector':22s} work")
    a = run("mark-sweep")
    b = run(
        "generational",
        collector_factory=lambda heap, program: GenerationalCollector(
            heap, program, young_threshold=32 * 1024
        ),
    )
    c = run("mark-sweep + liveness", liveness_roots=True)
    assert a.stdout == b.stdout == c.stdout
    print("\nall three configurations produce identical program output;")
    print("generational marks far fewer objects per collection, and")
    print("liveness-aided roots let dead locals' buffers die early.")


if __name__ == "__main__":
    main()
