"""Figure 2 as text charts: reachable vs in-use heap curves, original
vs revised, for any benchmark.

Rendering is shared with ``repro timeline``: both go through
``repro.obs.timeline`` (``TimelineBuilder`` for the series,
``render_timeline_text`` for the sparkline rows and axis caption), so
this example no longer carries its own copy of the chart code.

Run:  python examples/heap_profile_charts.py [benchmark ...]
      (default: juru euler analyzer)
"""

import sys

from repro.benchmarks import get_benchmark, run_pair
from repro.benchmarks.runner import heap_timeline
from repro.obs.timeline import render_timeline_text


def chart(name: str) -> None:
    bench = get_benchmark(name)
    run = run_pair(bench, "primary")
    for label, result in (("original", run.original), ("revised", run.revised)):
        print(f"\n=== {name}: {label} run ===")
        payload = heap_timeline(result).payload(top=3)
        print(render_timeline_text(payload, histogram=False))
    s = run.savings
    print(f"drag saving {s.drag_saving_pct:.1f}%   space saving {s.space_saving_pct:.1f}%")


def main() -> None:
    names = sys.argv[1:] or ["juru", "euler", "analyzer"]
    for name in names:
        chart(name)


if __name__ == "__main__":
    main()
