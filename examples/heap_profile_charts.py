"""Figure 2 as ASCII charts: reachable vs in-use heap curves, original
vs revised, for any benchmark.

Run:  python examples/heap_profile_charts.py [benchmark ...]
      (default: juru euler analyzer)
"""

import sys

from repro.benchmarks import get_benchmark, run_pair
from repro.benchmarks.runner import figure2_series
from repro.core.report import heap_profile_chart


def chart(name: str) -> None:
    bench = get_benchmark(name)
    run = run_pair(bench, "primary")
    curves = figure2_series(run)
    print(f"\n=== {name}: original run ===")
    print(
        heap_profile_chart(
            {"#": curves["original_reachable"], ".": curves["original_in_use"]},
            end_time=run.original.end_time,
        )
    )
    print("legend: # reachable   . in-use")
    print(f"\n=== {name}: revised run ===")
    print(
        heap_profile_chart(
            {"#": curves["revised_reachable"], ".": curves["revised_in_use"]},
            end_time=run.revised.end_time,
        )
    )
    print("legend: # reachable   . in-use")
    s = run.savings
    print(f"drag saving {s.drag_saving_pct:.1f}%   space saving {s.space_saving_pct:.1f}%")


def main() -> None:
    names = sys.argv[1:] or ["juru", "euler", "analyzer"]
    for name in names:
        chart(name)


if __name__ == "__main__":
    main()
