"""Command-line interface: the drag-profiling tool as a tool.

Mirrors the paper's two-phase workflow::

    python -m repro run program.mj --main Main arg1 arg2
    python -m repro profile program.mj --main Main --log run.draglog
    python -m repro profile program.mj --main Main --sink stream --log run.dlog2
    python -m repro report run.draglog --top 10
    python -m repro watch run.dlog2 --once
    python -m repro optimize program.mj --main Main -o revised.mj
    python -m repro disasm program.mj --class Main

``profile`` is phase 1 (the instrumented VM writing the object log);
``report`` is phase 2 (the offline analyzer). ``--sink stream`` makes
phase 1 stream records to disk with bounded memory, and ``watch``
tails such a log — even mid-run — with live drag metrics. ``optimize``
runs the §3.4 advisor and writes the rewritten source.

The service mode (see :mod:`repro.serve`)::

    python -m repro serve --port 7091 --workers 4
    python -m repro profile program.mj --main Main --serve localhost:7091
    python -m repro replay run.dlog2 --serve localhost:7091 --clients 4
    python -m repro report --serve localhost:7092
    python -m repro watch --follow localhost:7092

``serve`` is the long-running sharded aggregation daemon; ``profile
--serve`` streams phase 1 to it instead of (or in addition to) a local
file, and ``report``/``watch`` read the live merged rankings back over
its HTTP port.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import MiniJavaException, ReproError


def _load_program(path: str, library_overrides=None):
    from repro.runtime.library import link

    with open(path, "r", encoding="utf-8") as f:
        source = f.read()
    return link(source, library_overrides=library_overrides)


def _make_telemetry(args, extra: bool = False):
    """One :class:`repro.obs.Telemetry` per invocation when any
    observability flag asked for it, else None — the convention every
    instrumented layer specializes on."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics_out", None) or extra):
        return None
    from repro.obs import Telemetry

    return Telemetry()


def _flush_telemetry(args, telemetry) -> None:
    """Write the trace / metrics files the flags requested."""
    if telemetry is None:
        return
    if getattr(args, "trace", None):
        telemetry.tracer.write_chrome_trace(args.trace)
        print(f"[obs] wrote Chrome trace to {args.trace}", file=sys.stderr)
    if getattr(args, "metrics_out", None):
        telemetry.registry.write_exposition(args.metrics_out)
        print(f"[obs] wrote Prometheus metrics to {args.metrics_out}", file=sys.stderr)


def _add_obs_flags(parser) -> None:
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome trace-event JSON file "
                        "(load in Perfetto, or render with 'repro trace')")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write Prometheus text-format metrics here")


def _gc_summary(stats) -> str:
    return (
        f"gc_runs={stats.gc_runs} "
        f"(minor={stats.minor_gc_runs} major={stats.major_gc_runs} "
        f"deep={stats.deep_gc_runs}) "
        f"gc_pause_ms={stats.gc_pause_seconds * 1e3:.1f} "
        f"reclaimed={stats.bytes_reclaimed}B"
    )


def cmd_run(args) -> int:
    from repro.mjava.compiler import compile_program
    from repro.runtime.engine import Engine

    # --time rides the tracer too: the root span *is* the timer.
    telemetry = _make_telemetry(args, extra=args.time)
    program_ast = _load_program(args.file)
    main_class = args.main
    if main_class is None:
        from repro.lint import detect_main_class

        main_class = detect_main_class(program_ast)
    program = compile_program(program_ast, main_class=main_class)
    engine = Engine(
        program, engine=args.engine, max_heap=args.max_heap, telemetry=telemetry
    )
    if telemetry is None:
        result = engine.run(args.args)
        root = None
    else:
        with telemetry.span(
            "run", category="cli", file=args.file, engine=engine.config.engine
        ) as root:
            result = engine.run(args.args)
    for line in result.stdout:
        print(line)
    if args.stats:
        print(
            f"[stats] instructions={result.instructions} "
            f"allocated={result.heap_stats.bytes_allocated}B "
            f"objects={result.heap_stats.objects_allocated} "
            f"{_gc_summary(result.heap_stats)}",
            file=sys.stderr,
        )
    if args.time:
        elapsed = root.wall_seconds
        rate = result.instructions / elapsed if elapsed > 0 else float("inf")
        print(
            f"[time] engine={engine.config.engine} "
            f"instructions={result.instructions} "
            f"instr/sec={rate:,.0f} "
            f"byte-clock={result.clock}",
            file=sys.stderr,
        )
    _flush_telemetry(args, telemetry)
    return 0


def cmd_profile(args) -> int:
    from repro.core.analyzer import DragAnalysis
    from repro.core.logfile import write_log
    from repro.core.profiler import profile_program
    from repro.core.report import drag_report
    from repro.mjava.compiler import compile_program

    streaming = args.sink == "stream"
    if streaming and not args.log and not args.serve:
        print("error: --sink stream requires --log or --serve", file=sys.stderr)
        return 2
    telemetry = _make_telemetry(args)
    program = compile_program(_load_program(args.file), main_class=args.main)
    metadata = {"main": args.main, "interval": args.interval}
    if args.sample_bytes is not None and args.sample_bytes > 1:
        metadata["sample_bytes"] = args.sample_bytes
        metadata["seed"] = args.seed

    log_sink = None
    if streaming and args.log:
        from repro.stream import LogWriterSink, open_log_writer

        log_sink = LogWriterSink(
            open_log_writer(args.log, fmt=args.format, metadata=metadata)
        )
    serve_sink = None
    if args.serve:
        from repro.serve import ServeSink, parse_hostport

        host, port = parse_hostport(args.serve)
        serve_sink = ServeSink(
            host, port,
            metadata=dict(metadata, program=args.file),
        )
    timeline_sink = None
    if args.timeline or args.html:
        from repro.obs.timeline import DEFAULT_BIN_BYTES, TimelineSink

        timeline_sink = TimelineSink(
            bin_bytes=args.timeline_bin_bytes or DEFAULT_BIN_BYTES
        )
    sinks = [s for s in (log_sink, serve_sink, timeline_sink) if s is not None]
    sink = None
    if len(sinks) == 1:
        sink = sinks[0]
    elif sinks:
        from repro.stream import TeeSink

        sink = TeeSink(*sinks)
    snapshotter = None
    if args.snapshot:
        from repro.snapshot import SnapshotRecorder

        snapshotter = SnapshotRecorder(
            out=args.snapshot, metadata=dict(metadata, program=args.file),
            telemetry=telemetry,
        )
    # Records must stay buffered when a non-streaming --log or the
    # final drag report will read them; a timeline sink alone is
    # incremental and needs nothing retained.
    needs_records = bool(
        (args.log and not streaming) or (not args.log and serve_sink is None)
    )
    result = profile_program(
        program,
        args.args,
        interval_bytes=args.interval,
        nesting_depth=args.nesting,
        last_use_depth=args.last_use_depth,
        sink=sink,
        buffered=True if (sink is not None and needs_records) else None,
        engine=args.engine,
        telemetry=telemetry,
        sample_bytes=args.sample_bytes,
        seed=args.seed,
        snapshotter=snapshotter,
    )
    for line in result.run_result.stdout:
        print(line)
    print(
        f"[profile] {result.profiler.record_count} objects logged, "
        f"{result.profiler.sample_count} deep-GC samples, "
        f"{result.end_time} bytes allocated",
        file=sys.stderr,
    )
    print(
        f"[profile] {_gc_summary(result.run_result.heap_stats)}",
        file=sys.stderr,
    )
    sampler = result.profiler.sampler
    if sampler is not None:
        seen = sampler.sampled + sampler.skipped
        print(
            f"[profile] byte-sampling 1/{sampler.sample_bytes} "
            f"(seed {sampler.seed}): kept {sampler.sampled} of "
            f"{seen} allocations",
            file=sys.stderr,
        )
    if result.finalizer_errors:
        print(
            f"[profile] {result.finalizer_errors} finalizer exception(s) "
            "swallowed during the run",
            file=sys.stderr,
        )
    if snapshotter is not None:
        snapshotter.close()
        print(
            f"[profile] wrote {snapshotter.capture_count} heap snapshot(s) "
            f"({snapshotter.node_count} nodes, {snapshotter.edge_count} edges) "
            f"to {args.snapshot}",
            file=sys.stderr,
        )
    if serve_sink is not None:
        serve_sink.close()  # already closed at program end; idempotent
        routed = serve_sink.server_records
        print(
            f"[profile] streamed {serve_sink.count} records to serve "
            f"{args.serve} (stream {serve_sink.stream_id}"
            + (f", {routed} routed" if routed is not None else "")
            + ")",
            file=sys.stderr,
        )
    if streaming and args.log:
        log_sink.close()  # already closed at program end; idempotent
        print(
            f"[profile] streamed {log_sink.count} records to {args.log}",
            file=sys.stderr,
        )
    elif args.log:
        count = write_log(
            args.log,
            result.records,
            end_time=result.end_time,
            metadata=metadata,
        )
        print(f"[profile] wrote {count} records to {args.log}", file=sys.stderr)
    elif serve_sink is not None:
        pass  # the daemon owns the analysis; read it back via /rankings
    else:
        analysis = DragAnalysis(result.records)
        print(
            drag_report(
                analysis,
                top=args.top,
                interval_bytes=args.interval,
                program=result.program,
            )
        )
    if timeline_sink is not None:
        from repro.obs.timeline import render_timeline_text

        payload = timeline_sink.builder.payload(top=args.top)
        print(render_timeline_text(payload))
        if args.html:
            from repro.obs.htmlreport import write_html

            markers = _snapshot_markers(args.snapshot) if args.snapshot else None
            write_html(
                args.html, payload,
                title=f"repro heap timeline: {args.file}",
                snapshots=markers,
            )
            print(
                f"[timeline] wrote HTML dashboard to {args.html}",
                file=sys.stderr,
            )
    _flush_telemetry(args, telemetry)
    return 0


def cmd_report(args) -> int:
    if args.serve:
        from repro.serve import fetch_json, fetch_rankings, parse_hostport
        from repro.serve.merge import render_rankings_text

        if args.log:
            print("error: pass a log file or --serve, not both", file=sys.stderr)
            return 2
        addr = parse_hostport(args.serve)
        rankings = fetch_rankings(
            addr,
            top=args.top or None,
            table="nested" if args.nested else "site",
        )
        summary = fetch_json(addr, "/summary")
        print(render_rankings_text(rankings, summary=summary))
        return 0
    if not args.log:
        print("error: report needs a log file (or --serve HOST:PORT)",
              file=sys.stderr)
        return 2
    from repro.core.analyzer import DragAnalysis
    from repro.core.logfile import read_log
    from repro.core.report import drag_report

    loaded = read_log(args.log, strict=not args.lenient)
    analysis = DragAnalysis(
        loaded.records, include_library_sites=not args.app_only
    )
    interval = loaded.metadata.get("interval", 100 * 1024)
    print(drag_report(analysis, top=args.top, interval_bytes=interval, nested=args.nested))
    return 0


def cmd_watch(args) -> int:
    from repro.stream.watch import follow_server, watch_log

    if args.follow and args.log:
        print("error: pass a log file or --follow, not both", file=sys.stderr)
        return 2
    if args.follow:
        follow_server(
            args.follow,
            once=args.once,
            poll_interval=args.poll,
            top=args.top,
            metrics_json=args.metrics_json,
            metrics_out=args.metrics_out,
        )
        return 0
    if not args.log:
        print("error: watch needs a log file (or --follow HOST:PORT)",
              file=sys.stderr)
        return 2
    watch_log(
        args.log,
        once=args.once,
        poll_interval=args.poll,
        top=args.top,
        metrics_json=args.metrics_json,
        metrics_out=args.metrics_out,
    )
    return 0


def cmd_serve(args) -> int:
    from repro.serve import DragServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        workers=args.workers,
        inline=args.inline,
        top_k=args.top,
        drain_timeout=args.drain_timeout,
        sample_bytes=args.sample_bytes,
        seed=args.seed,
        snapshot_file=args.snapshot_file,
        timeline_bin_bytes=args.timeline_bin_bytes,
    )
    return DragServer(config).run()


def cmd_replay(args) -> int:
    import threading

    from repro.serve import parse_hostport, replay_log

    host, port = parse_hostport(args.serve)
    results = [None] * args.clients
    errors = []

    def one(index: int) -> None:
        try:
            results[index] = replay_log(
                args.log, host, port, mode=args.mode, rate=args.rate,
                metadata={"replay": args.log, "client": index},
                sample_bytes=args.sample_bytes,
                # Offset per client so concurrent replays sample
                # independent subsets, yet the whole fleet is
                # reproducible from one --seed.
                seed=args.seed + index,
            )
        except Exception as exc:  # surfaced collectively below
            errors.append(exc)

    threads = [
        threading.Thread(target=one, args=(i,)) for i in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for index, ack in enumerate(r for r in results if r is not None):
        print(
            f"[replay] client {index}: {ack.get('records')} records routed"
            + (" (truncated)" if ack.get("truncated") else ""),
            file=sys.stderr,
        )
    if errors:
        print(f"error: {errors[0]}", file=sys.stderr)
        return 1
    return 0


def cmd_optimize(args) -> int:
    from repro.mjava.pretty import pretty_print, unified_source_diff
    from repro.transform.pipeline import OptimizationPipeline

    telemetry = _make_telemetry(args)
    program = _load_program(args.file)
    pipeline = OptimizationPipeline(
        program,
        args.main,
        args.args,
        interval_bytes=args.interval,
        max_cycles=args.max_cycles,
        verify=args.verify,
        engine=args.engine,
        telemetry=telemetry,
        snapshot=args.snapshot,
    )

    if args.dry_run:
        cycle = pipeline.plan()
        print(cycle.describe_plan())
        print(
            f"[optimize] {len(cycle.patches)} patch(es) planned "
            "(dry run; nothing applied)",
            file=sys.stderr,
        )
        _flush_telemetry(args, telemetry)
        return 0

    result = pipeline.run()
    applied = 0
    for index, cycle in enumerate(result.cycles, 1):
        if len(result.cycles) > 1:
            print(f"--- cycle {index} ---", file=sys.stderr)
        summary = cycle.summary()
        if summary:
            print(summary, file=sys.stderr)
        applied += cycle.applied_count
        if args.verify and cycle.drag_after is not None:
            pct = (
                100.0 * (cycle.drag_after - cycle.drag_before) / cycle.drag_before
                if cycle.drag_before
                else 0.0
            )
            print(
                f"[optimize] cycle {index} verified: drag {cycle.drag_before} "
                f"-> {cycle.drag_after} ({pct:+.1f}%), "
                f"{cycle.applied_count} applied, "
                f"{len(cycle.rolled_back())} rolled back",
                file=sys.stderr,
            )
    print(f"[optimize] {applied} transformation(s) applied", file=sys.stderr)

    if args.diff:
        print(
            unified_source_diff(
                program, result.revised,
                fromfile=f"{args.file} (original)", tofile=f"{args.file} (revised)",
            ),
            end="",
        )
    text = pretty_print(result.revised)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"[optimize] wrote revised source to {args.output}", file=sys.stderr)
    elif not args.diff:
        print(text)
    _flush_telemetry(args, telemetry)
    return 0


def cmd_lint(args) -> int:
    from repro.lint import detect_main_class, lint_program, render
    from repro.lint.rules import RULES_BY_ID

    if args.rules:
        # Each --rule may itself be a comma-separated list.
        args.rules = [
            rule for chunk in args.rules for rule in chunk.split(",") if rule
        ]
        bad = [r for r in args.rules if r not in RULES_BY_ID]
        if bad:
            print(f"error: unknown rule(s) {', '.join(bad)}; "
                  f"have {', '.join(sorted(RULES_BY_ID))}", file=sys.stderr)
            return 2
    telemetry = _make_telemetry(args)
    program = _load_program(args.file)
    main_class = args.main or detect_main_class(program)
    drag_analysis = None
    if args.profile:
        drag_analysis = _load_drag_analysis(args.profile)
    snapshot_analysis = None
    if args.snapshot:
        from repro.snapshot import analyze_snapshot, read_snapshots

        loaded = read_snapshots(args.snapshot, strict=False)
        if loaded.snapshots:
            peak = max(loaded.snapshots, key=lambda s: s.total_bytes)
            snapshot_analysis = analyze_snapshot(peak)
    result = lint_program(
        program, main_class, program_path=args.file, rules=args.rules or None,
        telemetry=telemetry, snapshot=snapshot_analysis, drag=drag_analysis,
    )
    if drag_analysis is not None:
        result.correlate(drag_analysis, profile_path=args.profile)
    print(render(result, args.format, explain=args.explain, top=args.top))
    _flush_telemetry(args, telemetry)
    if args.fail_on and result.at_least(args.fail_on):
        return 1
    return 0


def _load_drag_analysis(path: str):
    from repro.core.analyzer import DragAnalysis
    from repro.core.logfile import read_log

    return DragAnalysis(read_log(path).records)


def cmd_snapshot(args) -> int:
    from repro.snapshot import (
        SnapshotRecorder,
        read_snapshots,
        snapshot_diff_report,
        snapshot_report,
    )

    if args.action == "capture":
        from repro.core.profiler import profile_program
        from repro.mjava.compiler import compile_program

        telemetry = _make_telemetry(args)
        program = compile_program(_load_program(args.file), main_class=args.main)
        recorder = SnapshotRecorder(
            out=args.out,
            metadata={"main": args.main, "interval": args.interval,
                      "program": args.file},
            telemetry=telemetry,
        )
        result = profile_program(
            program, args.args, interval_bytes=args.interval,
            engine=args.engine, telemetry=telemetry, snapshotter=recorder,
        )
        recorder.close()
        for line in result.run_result.stdout:
            print(line)
        print(
            f"[snapshot] wrote {recorder.capture_count} snapshot(s) "
            f"({recorder.node_count} nodes, {recorder.edge_count} edges) "
            f"to {args.out}",
            file=sys.stderr,
        )
        _flush_telemetry(args, telemetry)
        return 0

    if args.action == "report":
        loaded = read_snapshots(args.snapshot_file, strict=not args.lenient)
        if not loaded.snapshots:
            print("error: no complete snapshots in file", file=sys.stderr)
            return 2
        drag = _load_drag_analysis(args.profile) if args.profile else None
        which = args.which
        if which is None:
            # Default to the heap at its fattest — retention is most
            # visible at peak, not in the (mostly-collected) end state.
            which = max(
                range(len(loaded.snapshots)),
                key=lambda i: loaded.snapshots[i].total_bytes,
            )
        print(snapshot_report(loaded, drag_analysis=drag, top=args.top, which=which))
        return 0

    # diff
    before = read_snapshots(args.snapshot_file, strict=not args.lenient)
    after = read_snapshots(args.other, strict=not args.lenient)
    if not before.snapshots or not after.snapshots:
        print("error: no complete snapshots to diff", file=sys.stderr)
        return 2
    print(snapshot_diff_report(before, after, top=args.top))
    return 0


def cmd_chart(args) -> int:
    from repro.core.analyzer import DragAnalysis
    from repro.core.integrals import curve_from_records
    from repro.core.logfile import read_log
    from repro.core.report import heap_profile_chart

    loaded = read_log(args.log)
    records = [r for r in loaded.records if not r.excluded]
    curves = {
        "#": curve_from_records(records, "reachable"),
        ".": curve_from_records(records, "in_use"),
    }
    print(heap_profile_chart(curves, width=args.width, height=args.height,
                             end_time=loaded.end_time))
    print("legend: # reachable   . in-use")
    return 0


def _snapshot_markers(path: str) -> list:
    """Join deep-GC snapshot markers with PR 9 retained sizes: one dict
    per snapshot, keyed by byte-clock, carrying the single biggest
    dominator-tree retained size at that instant."""
    from repro.snapshot import SnapshotAnalysis, read_snapshots

    markers = []
    for snap in read_snapshots(path, strict=False).snapshots:
        analysis = SnapshotAnalysis(snap)
        top = analysis.top_retained(1)
        markers.append({
            "time": snap.clock,
            "retained_bytes": analysis.retained[top[0]] if top else 0,
        })
    return markers


def cmd_timeline(args) -> int:
    import json

    from repro.obs.timeline import (
        DEFAULT_BIN_BYTES,
        TimelineBuilder,
        render_timeline_text,
    )

    if args.serve and args.log:
        print("error: pass a log file or --serve, not both", file=sys.stderr)
        return 2
    if args.serve:
        from urllib.error import HTTPError

        from repro.serve import fetch_json, parse_hostport

        addr = parse_hostport(args.serve)
        try:
            payload = fetch_json(addr, f"/timeline?top={args.top}")
        except HTTPError as exc:
            print(f"error: /timeline returned {exc.code} "
                  "(serve started with --timeline-bin-bytes 0?)",
                  file=sys.stderr)
            return 2
    elif args.log:
        from repro.core.logfile import read_log

        loaded = read_log(args.log, strict=not args.lenient)
        builder = TimelineBuilder(
            bin_bytes=args.bin_bytes or DEFAULT_BIN_BYTES
        ).consume(loaded.records)
        for sample in loaded.samples:
            builder.add_sample(sample)
        builder.note_end(loaded.end_time)
        payload = builder.payload(top=args.top or None)
    else:
        print("error: timeline needs a log file (or --serve HOST:HTTP_PORT)",
              file=sys.stderr)
        return 2
    if args.json:
        body = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(body)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(body + "\n")
            print(f"[timeline] wrote JSON payload to {args.json}",
                  file=sys.stderr)
    if args.html:
        from repro.obs.htmlreport import write_html

        markers = _snapshot_markers(args.snapshot) if args.snapshot else None
        write_html(
            args.html, payload,
            title=f"repro heap timeline: {args.serve or args.log}",
            snapshots=markers,
        )
        print(f"[timeline] wrote HTML dashboard to {args.html}",
              file=sys.stderr)
    if args.json != "-":
        print(render_timeline_text(payload, width=args.width))
    return 0


def cmd_trace(args) -> int:
    from repro.obs import read_chrome_trace, render_span_tree

    roots = read_chrome_trace(args.trace_file)
    print(render_span_tree(roots, width=args.width))
    return 0


def cmd_disasm(args) -> int:
    from repro.bytecode.disasm import disassemble_method, disassemble_program
    from repro.mjava.compiler import compile_program

    program = compile_program(_load_program(args.file))
    if args.cls:
        cls = program.classes.get(args.cls)
        if cls is None:
            print(f"error: no class {args.cls}", file=sys.stderr)
            return 2
        members = list(cls.methods.values())
        if cls.ctor is not None:
            members.append(cls.ctor)
        if cls.clinit is not None:
            members.append(cls.clinit)
        for method in members:
            if not method.is_native:
                print(disassemble_method(method))
    else:
        print(disassemble_program(program))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Drag-time heap profiler for mini-Java "
        "(reproduction of 'Heap Profiling for Space-Efficient Java', PLDI 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a mini-Java program")
    run.add_argument("file")
    run.add_argument("--main", help="class containing static main "
                     "(default: auto-detect the unique one)")
    run.add_argument("--max-heap", type=int, default=None, help="heap limit in bytes")
    run.add_argument("--stats", action="store_true", help="print VM counters")
    run.add_argument("--engine", choices=["baseline", "compiled"], default=None,
                     help="dispatch engine: classic if/elif interpreter or "
                     "precompiled closures (default: REPRO_ENGINE or baseline)")
    run.add_argument("--time", action="store_true",
                     help="print instructions, instr/sec, and final byte-clock")
    _add_obs_flags(run)
    run.set_defaults(fn=cmd_run)

    profile = sub.add_parser("profile", help="phase 1: run under the drag profiler")
    profile.add_argument("file")
    profile.add_argument("--main", required=True)
    profile.add_argument("--interval", type=int, default=100 * 1024,
                         help="deep-GC interval in bytes (default 100K, as the paper)")
    profile.add_argument("--nesting", type=int, default=4,
                         help="nested allocation-site depth")
    profile.add_argument("--last-use-depth", type=int, default=1,
                         help="nested last-use-site depth")
    profile.add_argument("--log", help="write the object log here instead of reporting")
    profile.add_argument("--sink", choices=["buffer", "stream"], default="buffer",
                         help="'stream' writes records to --log as objects are "
                         "reclaimed (bounded memory) instead of buffering them")
    profile.add_argument("--format", choices=["auto", "v1", "v2"], default="auto",
                         help="log format for --sink stream: v1 JSONL or compact "
                         "v2 binary (auto: v2 for .dlog2 files)")
    profile.add_argument("--serve", metavar="HOST:PORT",
                         help="stream the profile to a running 'repro serve' "
                         "daemon (combines with --log to also keep a local copy)")
    profile.add_argument("--top", type=int, default=10)
    profile.add_argument("--sample-bytes", type=int, default=None, metavar="N",
                         help="byte-weighted sampling: trailer roughly one "
                         "allocation per N allocated bytes and weight-correct "
                         "all drag estimates (1 = profile everything, "
                         "bit-identical to no sampling)")
    profile.add_argument("--seed", type=int, default=0,
                         help="sampling RNG seed for reproducible runs "
                         "(default 0; CI gates pin it)")
    profile.add_argument("--engine", choices=["baseline", "compiled"], default=None,
                         help="dispatch engine (profiles are bit-identical "
                         "either way)")
    profile.add_argument("--snapshot", metavar="FILE",
                         help="also capture a heap snapshot at every deep-GC "
                         "safepoint into this file (analyze with "
                         "'repro snapshot report')")
    profile.add_argument("--timeline", action="store_true",
                         help="maintain a streaming heap timeline during the "
                         "run and print it (sparklines) after the report")
    profile.add_argument("--html", metavar="FILE",
                         help="write the timeline as a self-contained HTML "
                         "dashboard (implies --timeline)")
    profile.add_argument("--timeline-bin-bytes", type=int, default=None,
                         metavar="N",
                         help="timeline bin width on the byte-allocation "
                         "clock (default 64K)")
    _add_obs_flags(profile)
    profile.set_defaults(fn=cmd_profile)

    report = sub.add_parser("report", help="phase 2: analyze an object log")
    report.add_argument("log", nargs="?",
                        help="an object log file (omit with --serve)")
    report.add_argument("--serve", metavar="HOST:HTTP_PORT",
                        help="read live merged rankings from a serve daemon's "
                        "HTTP port instead of a log file")
    report.add_argument("--top", type=int, default=10)
    report.add_argument("--nested", action="store_true",
                        help="group by nested allocation site (call chain)")
    report.add_argument("--app-only", action="store_true",
                        help="exclude library (mini-JDK) allocation sites")
    report.add_argument("--lenient", action="store_true",
                        help="tolerate a truncated final record (crashed run)")
    report.set_defaults(fn=cmd_report)

    watch = sub.add_parser("watch", help="tail a growing log with live drag metrics")
    watch.add_argument("log", nargs="?",
                       help="a growing log file (omit with --follow)")
    watch.add_argument("--follow", metavar="HOST:HTTP_PORT",
                       help="poll a serve daemon's /rankings endpoint instead "
                       "of tailing a file")
    watch.add_argument("--once", action="store_true",
                       help="print one summary of the log as it is now and exit")
    watch.add_argument("--poll", type=float, default=1.0,
                       help="seconds between polls (default 1)")
    watch.add_argument("--top", type=int, default=10)
    watch.add_argument("--metrics-json",
                       help="flush a machine-readable metrics snapshot here "
                       "on every refresh")
    watch.add_argument("--metrics-out", metavar="FILE",
                       help="flush Prometheus text-format metrics here "
                       "on every refresh (same repro_live_* series as "
                       "the in-process MetricsSink)")
    watch.set_defaults(fn=cmd_watch)

    optimize = sub.add_parser("optimize", help="profile-driven automatic rewriting")
    optimize.add_argument("file")
    optimize.add_argument("--main", required=True)
    optimize.add_argument("--interval", type=int, default=100 * 1024)
    optimize.add_argument("-o", "--output", help="write revised source here")
    optimize.add_argument(
        "--verify",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="re-run each applied patch and roll back on stdout/drag regression",
    )
    optimize.add_argument(
        "--diff", action="store_true",
        help="print a unified diff of original vs revised source",
    )
    optimize.add_argument(
        "--dry-run", action="store_true",
        help="plan and print patches without applying anything",
    )
    optimize.add_argument(
        "--max-cycles", type=int, default=1,
        help="repeat the profile-rewrite cycle up to N times (§3.2)",
    )
    optimize.add_argument(
        "--engine", choices=["baseline", "compiled"], default=None,
        help="VM engine for profiling and verification runs",
    )
    optimize.add_argument(
        "--snapshot", action="store_true",
        help="capture heap snapshots during the reference profile and "
        "plan dominating-reference cuts from dominator-tree retained "
        "sizes (DRAG008/RetainerCutPlanner; differentially verified)",
    )
    _add_obs_flags(optimize)
    optimize.set_defaults(fn=cmd_optimize)

    lint = sub.add_parser("lint", help="static drag analysis (no program run needed)")
    lint.add_argument("file")
    lint.add_argument("--main", help="class containing static main "
                      "(default: auto-detect the unique one)")
    lint.add_argument("--profile", help="a phase-1 drag log; findings are ranked "
                      "by the measured drag of their allocation sites")
    lint.add_argument("--format", choices=["text", "json", "sarif"], default="text")
    lint.add_argument("--fail-on", choices=["error", "warning", "note"],
                      help="exit 1 if any finding is at least this severe")
    lint.add_argument("--rule", dest="rules", action="append", metavar="RULEID",
                      help="restrict to specific rule IDs (repeatable; each "
                      "value may be a comma-separated list)")
    lint.add_argument("--explain", action="store_true",
                      help="show each finding's derivation (pinning paths, "
                      "last-use points) and analysis soundness notes")
    lint.add_argument("--snapshot", metavar="FILE",
                      help="a heap snapshot file (from profile --snapshot); "
                      "enables DRAG008 high-retained-container findings from "
                      "dominator-tree retained sizes")
    lint.add_argument("--top", type=int, default=None,
                      help="show only the N highest-ranked findings "
                      "(applies to text, json, and sarif alike)")
    _add_obs_flags(lint)
    lint.set_defaults(fn=cmd_lint)

    serve = sub.add_parser(
        "serve", help="run the sharded drag-aggregation daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7091,
                       help="TCP ingest port for profile streams (default 7091; "
                       "0 picks a free port)")
    serve.add_argument("--http-port", type=int, default=None,
                       help="HTTP port for /rankings, /summary, /healthz, "
                       "/metrics (default: ingest port + 1)")
    serve.add_argument("--workers", type=int, default=4,
                       help="shard worker processes (default 4)")
    serve.add_argument("--inline", action="store_true",
                       help="run shards in-process instead of worker processes "
                       "(debugging, low-traffic)")
    serve.add_argument("--top", type=int, default=10,
                       help="default top-K for /rankings")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds to wait for in-flight streams on "
                       "SIGTERM/SIGINT")
    serve.add_argument("--sample-bytes", type=int, default=None, metavar="N",
                       help="server-side byte resampling: keep roughly one "
                       "record per N allocated bytes per stream, reweighting "
                       "survivors so aggregates stay unbiased")
    serve.add_argument("--seed", type=int, default=0,
                       help="base RNG seed for per-stream samplers (default 0)")
    serve.add_argument("--snapshot-file", metavar="FILE",
                       help="a heap snapshot file (from profile --snapshot); "
                       "GET /snapshot serves its retained-size summary, "
                       "re-parsed whenever the file grows")
    serve.add_argument("--timeline-bin-bytes", type=int, default=None,
                       metavar="N",
                       help="byte-clock bin width for the shard timelines "
                       "behind GET /timeline (default 64K; 0 disables)")
    serve.set_defaults(fn=cmd_serve)

    replay = sub.add_parser(
        "replay", help="stream a recorded log to a serve daemon (load generator)")
    replay.add_argument("log", help="a v1 or v2 object log to replay")
    replay.add_argument("--serve", metavar="HOST:PORT", required=True,
                        help="the daemon's TCP ingest address")
    replay.add_argument("--clients", type=int, default=1,
                        help="concurrent replay connections (default 1)")
    replay.add_argument("--mode", choices=["records", "raw"], default="records",
                        help="'records' re-encodes each record (live-profiler "
                        "cost); 'raw' copies v2 bytes verbatim (max pressure)")
    replay.add_argument("--rate", type=float, default=None,
                        help="per-client records/sec pacing (records mode; "
                        "default: full speed)")
    replay.add_argument("--sample-bytes", type=int, default=None, metavar="N",
                        help="client-side byte resampling before sending "
                        "(records mode): survivors carry composed weights so "
                        "the daemon's estimates still cover the full log")
    replay.add_argument("--seed", type=int, default=0,
                        help="sampling RNG seed; client i uses seed+i "
                        "(default 0; CI gates pin it)")
    replay.set_defaults(fn=cmd_replay)

    snapshot = sub.add_parser(
        "snapshot", help="heap snapshots: capture, retained-size report, diff")
    snap_sub = snapshot.add_subparsers(dest="action", required=True)
    snap_capture = snap_sub.add_parser(
        "capture", help="run a program, capturing a snapshot at every deep GC")
    snap_capture.add_argument("file")
    snap_capture.add_argument("--main", required=True)
    snap_capture.add_argument("--out", required=True, metavar="FILE",
                              help="snapshot file to write")
    snap_capture.add_argument("--interval", type=int, default=100 * 1024,
                              help="deep-GC interval in bytes (default 100K)")
    snap_capture.add_argument("--engine", choices=["baseline", "compiled"],
                              default=None)
    _add_obs_flags(snap_capture)
    snap_capture.set_defaults(fn=cmd_snapshot)
    snap_report = snap_sub.add_parser(
        "report", help="dominator-tree retained sizes and retainer chains")
    snap_report.add_argument("snapshot_file")
    snap_report.add_argument("--top", type=int, default=10)
    snap_report.add_argument("--which", type=int, default=None,
                             help="snapshot index within the file (default: "
                             "the one with the most reachable bytes)")
    snap_report.add_argument("--profile", metavar="LOG",
                             help="a phase-1 drag log; retainers are "
                             "annotated with the dragged sites they pin")
    snap_report.add_argument("--lenient", action="store_true",
                             help="tolerate a truncated snapshot file")
    snap_report.set_defaults(fn=cmd_snapshot)
    snap_diff = snap_sub.add_parser(
        "diff", help="per-site retained deltas between two snapshot files")
    snap_diff.add_argument("snapshot_file")
    snap_diff.add_argument("other")
    snap_diff.add_argument("--top", type=int, default=10)
    snap_diff.add_argument("--lenient", action="store_true")
    snap_diff.set_defaults(fn=cmd_snapshot)

    chart = sub.add_parser("chart", help="render Figure-2-style heap curves from a log")
    chart.add_argument("log")
    chart.add_argument("--width", type=int, default=72)
    chart.add_argument("--height", type=int, default=16)
    chart.set_defaults(fn=cmd_chart)

    timeline = sub.add_parser(
        "timeline",
        help="binned heap timeline: sparklines, JSON, HTML dashboard")
    timeline.add_argument("log", nargs="?",
                          help="an object log file (omit with --serve)")
    timeline.add_argument("--serve", metavar="HOST:HTTP_PORT",
                          help="fetch the live merged /timeline from a serve "
                          "daemon instead of reading a log")
    timeline.add_argument("--bin-bytes", type=int, default=None, metavar="N",
                          help="bin width on the byte-allocation clock "
                          "(default 64K; log mode only — the daemon binned "
                          "at ingest)")
    timeline.add_argument("--top", type=int, default=5,
                          help="per-site drag strips to show (0 = all)")
    timeline.add_argument("--width", type=int, default=60,
                          help="sparkline width in columns")
    timeline.add_argument("--json", metavar="FILE",
                          help="write the timeline payload as JSON "
                          "('-' for stdout, suppressing the text render)")
    timeline.add_argument("--html", metavar="FILE",
                          help="write a self-contained HTML dashboard")
    timeline.add_argument("--snapshot", metavar="FILE",
                          help="a heap snapshot file (from profile "
                          "--snapshot); HTML markers are joined with "
                          "dominator-tree retained sizes")
    timeline.add_argument("--lenient", action="store_true",
                          help="tolerate a truncated log (crashed run)")
    timeline.set_defaults(fn=cmd_timeline)

    trace = sub.add_parser("trace", help="render a --trace file as a span tree")
    trace.add_argument("trace_file", help="a Chrome trace JSON file from --trace")
    trace.add_argument("--width", type=int, default=44,
                       help="label column width for the tree")
    trace.set_defaults(fn=cmd_trace)

    disasm = sub.add_parser("disasm", help="disassemble compiled bytecode")
    disasm.add_argument("file")
    disasm.add_argument("--class", dest="cls", help="restrict to one class")
    disasm.set_defaults(fn=cmd_disasm)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    # Program arguments are whatever trails the recognized options, so
    # "repro run prog.mj --main Main input1 input2" works naturally.
    args, extra = parser.parse_known_args(argv)
    bad = [a for a in extra if a.startswith("-")]
    if bad:
        parser.error(f"unrecognized arguments: {' '.join(bad)}")
    args.args = extra
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except MiniJavaException as exc:
        print(f"uncaught mini-Java exception: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream (head, grep -q) closed our stdout: the Unix
        # convention is to exit quietly. Point stdout at /dev/null so
        # the interpreter's shutdown flush doesn't raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
