"""Generic AST cloning and statement-level rewriting utilities.

Transforms never mutate their input program: they deep-clone it and
rewrite the clone, so an original/revised pair can be profiled
side by side (exactly how the paper's tables are produced).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.errors import TransformError
from repro.mjava import ast

StmtRewrite = Callable[[ast.Stmt], Union[ast.Stmt, List[ast.Stmt], None]]


def clone_node(node):
    """Deep-copy an AST node (positions preserved)."""
    if not isinstance(node, ast.Node):
        return node
    args = []
    for name in node._fields:
        value = getattr(node, name)
        if isinstance(value, ast.Node):
            args.append(clone_node(value))
        elif isinstance(value, list):
            args.append([clone_node(v) for v in value])
        else:
            args.append(value)
    copy = type(node)(*args, pos=node.pos)
    if isinstance(node, ast.ClassDecl):
        copy.is_library = node.is_library
    return copy


def clone_program(program: ast.Program) -> ast.Program:
    return clone_node(program)


def rewrite_block(block: ast.Block, fn: StmtRewrite) -> ast.Block:
    """Apply ``fn`` to every statement (innermost first), in place on an
    already-cloned tree. ``fn`` returns a replacement statement, a list
    of statements, or None to delete the statement."""
    new_stmts: List[ast.Stmt] = []
    for stmt in block.stmts:
        stmt = _rewrite_children(stmt, fn)
        result = fn(stmt)
        if result is None:
            continue
        if isinstance(result, list):
            new_stmts.extend(result)
        else:
            new_stmts.append(result)
    block.stmts = new_stmts
    return block


def _rewrite_children(stmt: ast.Stmt, fn: StmtRewrite) -> ast.Stmt:
    if isinstance(stmt, ast.Block):
        return rewrite_block(stmt, fn)
    if isinstance(stmt, ast.If):
        stmt.then = _wrap_single(stmt.then, fn)
        if stmt.otherwise is not None:
            stmt.otherwise = _wrap_single(stmt.otherwise, fn)
    elif isinstance(stmt, ast.While):
        stmt.body = _wrap_single(stmt.body, fn)
    elif isinstance(stmt, ast.For):
        stmt.body = _wrap_single(stmt.body, fn)
    elif isinstance(stmt, ast.Try):
        rewrite_block(stmt.body, fn)
        for clause in stmt.catches:
            rewrite_block(clause.body, fn)
    elif isinstance(stmt, ast.Synchronized):
        rewrite_block(stmt.body, fn)
    return stmt


def _wrap_single(stmt: ast.Stmt, fn: StmtRewrite) -> ast.Stmt:
    """Rewrite a non-block child statement; if the rewrite produces
    multiple statements (or a deletion), wrap in a block."""
    stmt = _rewrite_children(stmt, fn)
    result = fn(stmt)
    if result is None:
        return ast.Block([], pos=stmt.pos)
    if isinstance(result, list):
        return ast.Block(result, pos=stmt.pos)
    return result


def rewrite_method_bodies(
    program: ast.Program,
    fn: StmtRewrite,
    class_name: Optional[str] = None,
    method_name: Optional[str] = None,
) -> None:
    """Rewrite statements across the program (or one class/method)."""
    for cls in program.classes:
        if class_name is not None and cls.name != class_name:
            continue
        for method in cls.methods:
            if method_name is not None and method.name != method_name:
                continue
            if method.body is not None:
                rewrite_block(method.body, fn)
        if method_name is None or method_name == "<init>":
            for ctor in cls.ctors:
                rewrite_block(ctor.body, fn)


ExprRewrite = Callable[[ast.Expr], ast.Expr]


def rewrite_expr(expr: ast.Expr, fn: ExprRewrite) -> ast.Expr:
    """Bottom-up expression rewrite: children first, then the node."""
    for name in expr._fields:
        value = getattr(expr, name)
        if isinstance(value, ast.Expr):
            setattr(expr, name, rewrite_expr(value, fn))
        elif isinstance(value, list):
            setattr(
                expr,
                name,
                [rewrite_expr(v, fn) if isinstance(v, ast.Expr) else v for v in value],
            )
    return fn(expr)


def rewrite_exprs_in_stmt(stmt: ast.Stmt, fn: ExprRewrite) -> None:
    """Rewrite every expression in *read* position under a statement.

    Assignment targets are handled specially: a ``Name`` target is a
    pure write (not rewritten), while the base of an ``Index`` or
    ``FieldAccess`` target is a read of the container and is rewritten.
    """
    if isinstance(stmt, ast.Block):
        for inner in stmt.stmts:
            rewrite_exprs_in_stmt(inner, fn)
    elif isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            stmt.init = rewrite_expr(stmt.init, fn)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = rewrite_expr(stmt.expr, fn)
    elif isinstance(stmt, ast.Assign):
        target = stmt.target
        if isinstance(target, ast.Index):
            target.array = rewrite_expr(target.array, fn)
            target.index = rewrite_expr(target.index, fn)
        elif isinstance(target, ast.FieldAccess):
            target.target = rewrite_expr(target.target, fn)
        stmt.value = rewrite_expr(stmt.value, fn)
    elif isinstance(stmt, ast.If):
        stmt.cond = rewrite_expr(stmt.cond, fn)
        rewrite_exprs_in_stmt(stmt.then, fn)
        if stmt.otherwise is not None:
            rewrite_exprs_in_stmt(stmt.otherwise, fn)
    elif isinstance(stmt, ast.While):
        stmt.cond = rewrite_expr(stmt.cond, fn)
        rewrite_exprs_in_stmt(stmt.body, fn)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            rewrite_exprs_in_stmt(stmt.init, fn)
        if stmt.cond is not None:
            stmt.cond = rewrite_expr(stmt.cond, fn)
        if stmt.update is not None:
            rewrite_exprs_in_stmt(stmt.update, fn)
        rewrite_exprs_in_stmt(stmt.body, fn)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = rewrite_expr(stmt.value, fn)
    elif isinstance(stmt, ast.Throw):
        stmt.value = rewrite_expr(stmt.value, fn)
    elif isinstance(stmt, ast.Try):
        rewrite_exprs_in_stmt(stmt.body, fn)
        for clause in stmt.catches:
            rewrite_exprs_in_stmt(clause.body, fn)
    elif isinstance(stmt, ast.Synchronized):
        stmt.monitor = rewrite_expr(stmt.monitor, fn)
        rewrite_exprs_in_stmt(stmt.body, fn)
    elif isinstance(stmt, ast.SuperCall):
        stmt.args = [rewrite_expr(a, fn) for a in stmt.args]


def find_class(program: ast.Program, name: str) -> ast.ClassDecl:
    cls = program.find_class(name)
    if cls is None:
        raise TransformError(f"no class {name} in program")
    return cls


def find_method(program: ast.Program, class_name: str, method_name: str) -> ast.MethodDecl:
    cls = find_class(program, class_name)
    for method in cls.methods:
        if method.name == method_name:
            return method
    raise TransformError(f"no method {class_name}.{method_name}")


def stmts_at_line(block: ast.Block, line: int) -> List[ast.Stmt]:
    """All statements (at any nesting depth) starting at ``line``."""
    out = []
    for node in block.walk():
        if isinstance(node, ast.Stmt) and not isinstance(node, ast.Block) and node.pos.line == line:
            out.append(node)
    return out
