"""Structured patches: the unit of work of the optimization pipeline.

The seed-era advisor mutated cloned ASTs inline, leaving no record of
*what* changed beyond a free-text detail string. The pipeline splits
every §3.3 transformation into a *plan* step that emits a
:class:`Patch` — a declarative description carrying the source span,
the replacement sketch, the rationale, the originating lint
diagnostics (DRAG001–003) and the profile site whose drag motivated it
— and an *apply* step (:mod:`repro.transform.apply`) that executes the
patch purely, producing a new program AST.

A planned patch that is applied, verified, or rolled back is tracked
as a :class:`PatchOutcome`; sites the planner looked at but declined
are recorded as :class:`PlannedSkip` entries so reports keep the
paper's "what was skipped and why" shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Patch:
    """One planned source rewrite.

    ``kind`` names the applier (see :data:`repro.transform.apply.APPLIERS`);
    ``params`` carries everything the applier needs, making the patch
    self-contained: ``apply_patches(program, patches)`` needs no other
    context. ``site``/``pattern``/``drag`` tie the patch back to the
    profile group that motivated it, ``diagnostics`` to the lint
    findings that justified it, and ``span``/``replacement``/
    ``rationale`` make the plan human-readable (``--dry-run``).
    """

    __slots__ = (
        "strategy",
        "kind",
        "params",
        "span",
        "site",
        "pattern",
        "drag",
        "rationale",
        "diagnostics",
        "replacement",
        "priority",
    )

    def __init__(
        self,
        strategy: str,
        kind: str,
        params: Dict[str, object],
        span=None,
        site=None,
        pattern=None,
        drag: int = 0,
        rationale: str = "",
        diagnostics: Tuple[str, ...] = (),
        replacement: str = "",
        priority: int = 1,
    ) -> None:
        self.strategy = strategy
        self.kind = kind
        self.params = params
        self.span = span  # SourceSpan of the code being rewritten (or None)
        self.site = site  # profile group key that motivated the patch
        self.pattern = pattern  # LifetimePattern that selected the strategy
        self.drag = drag  # measured bytes*time of the motivating group
        self.rationale = rationale
        self.diagnostics = diagnostics  # refs of originating lint findings
        self.replacement = replacement  # human-readable sketch of the rewrite
        self.priority = priority  # scheduling class; lower runs earlier

    @property
    def label(self) -> str:
        return self.span.label if self.span is not None else str(self.site)

    def describe(self) -> str:
        """One-paragraph plan entry (the ``--dry-run`` format)."""
        lines = [f"{self.strategy} [{self.kind}] @ {self.label}  drag={self.drag}"]
        if self.replacement:
            lines.append(f"    rewrite: {self.replacement}")
        if self.rationale:
            lines.append(f"    why:     {self.rationale}")
        if self.diagnostics:
            lines.append(f"    lint:    {', '.join(self.diagnostics)}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "kind": self.kind,
            "span": self.span.label if self.span is not None else None,
            "site": str(self.site) if self.site is not None else None,
            "pattern": self.pattern.name if self.pattern is not None else None,
            "drag": self.drag,
            "rationale": self.rationale,
            "diagnostics": list(self.diagnostics),
            "replacement": self.replacement,
        }

    def __repr__(self) -> str:
        return f"<patch {self.strategy}/{self.kind} @ {self.label}>"


# Outcome statuses, in lifecycle order.
PLANNED = "planned"
APPLIED = "applied"
FAILED = "failed"  # the applier raised (precondition not met on this AST)
ROLLED_BACK = "rolled-back"  # applied, then differential verification failed


class PatchOutcome:
    """A patch plus what happened to it in one pipeline cycle."""

    __slots__ = ("patch", "status", "detail", "verification")

    def __init__(self, patch: Patch, status: str = PLANNED, detail: str = "") -> None:
        self.patch = patch
        self.status = status
        self.detail = detail
        # VerificationResult when the differential check ran (applied or
        # rolled-back patches under --verify), else None.
        self.verification = None

    @property
    def applied(self) -> bool:
        return self.status == APPLIED

    def __repr__(self) -> str:
        return f"<{self.status} {self.patch!r}: {self.detail}>"


class PlannedSkip:
    """A profile group the planner examined and declined, with the
    §3.4 reason — kept so pipeline reports subsume advisor reports."""

    __slots__ = ("site", "pattern", "strategy", "detail")

    def __init__(self, site, pattern, strategy: Optional[str], detail: str) -> None:
        self.site = site
        self.pattern = pattern
        self.strategy = strategy
        self.detail = detail

    def __repr__(self) -> str:
        return f"<skip {self.strategy} at {self.site}: {self.detail}>"


def describe_plan(entries: List[object]) -> str:
    """Render a planned cycle (patches and skips) for ``--dry-run``."""
    lines: List[str] = []
    index = 0
    for entry in entries:
        if isinstance(entry, PatchOutcome):
            entry = entry.patch
        if isinstance(entry, Patch):
            index += 1
            lines.append(f"{index}. {entry.describe()}")
        else:
            lines.append(f"-  skip {entry.strategy or '-'} @ {entry.site}: {entry.detail}")
    if index == 0:
        lines.append("(no patches planned)")
    return "\n".join(lines)
