"""Pure patch application: ``apply_patches(program, patches) -> program``.

Each :class:`~repro.transform.patch.Patch` kind maps to one applier
built on the §3.3 transformation functions (which themselves clone
before rewriting), so applying never mutates the input AST. An applier
either returns ``(revised_program, detail)`` or raises
:class:`~repro.errors.TransformError` when the patch's static
precondition does not hold on this AST — the pipeline records that as
a failed outcome and moves on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransformError
from repro.mjava import ast
from repro.transform.assign_null import (
    assign_null_to_local,
    clear_array_slot_on_remove,
)
from repro.transform.dead_code import remove_dead_allocations
from repro.transform.lazy_alloc import lazy_allocate_field
from repro.transform.patch import Patch
from repro.transform.rewriter import clone_program, find_class, find_method, rewrite_block

Applier = Callable[[ast.Program, Patch], Tuple[ast.Program, str]]

APPLIERS: Dict[str, Applier] = {}


def register_applier(kind: str) -> Callable[[Applier], Applier]:
    def decorate(fn: Applier) -> Applier:
        APPLIERS[kind] = fn
        return fn

    return decorate


@register_applier("remove-dead-allocations")
def _apply_remove_dead(program: ast.Program, patch: Patch) -> Tuple[ast.Program, str]:
    revised, removals = remove_dead_allocations(
        program,
        patch.params["main_class"],
        candidates=patch.params.get("candidates"),
    )
    detail = f"{len(removals)} allocation(s) removed"
    if not removals:
        raise TransformError(detail)
    return revised, detail


@register_applier("lazy-alloc-field")
def _apply_lazy_field(program: ast.Program, patch: Patch) -> Tuple[ast.Program, str]:
    cls_name = patch.params["class_name"]
    field = patch.params["field_name"]
    revised = lazy_allocate_field(
        program, cls_name, field, patch.params.get("main_class")
    )
    return revised, f"{cls_name}.{field} now allocated on first use"


@register_applier("clear-array-slot")
def _apply_clear_array(program: ast.Program, patch: Patch) -> Tuple[ast.Program, str]:
    cls_name = patch.params["class_name"]
    pairs = patch.params["pairs"]
    revised = clear_array_slot_on_remove(program, cls_name)
    return revised, f"array liveness: cleared slots of {pairs} in {cls_name}"


@register_applier("assign-null-local")
def _apply_assign_null(program: ast.Program, patch: Patch) -> Tuple[ast.Program, str]:
    cls_name = patch.params["class_name"]
    method = patch.params["method_name"]
    var = patch.params["var_name"]
    lines = list(patch.params["lines"])
    if not patch.params.get("validate", True):
        # Escape hatch for synthetic/test patches: raw insertion with no
        # liveness proof. Differential verification is the only net.
        revised = _insert_null_unchecked(program, cls_name, method, var, lines[0])
        return revised, f"{var} = null inserted after {cls_name}.{method}:{lines[0]} (unverified plan)"
    last_error = None
    for line in lines:
        try:
            revised = assign_null_to_local(program, cls_name, method, var, line)
            return revised, f"{var} = null inserted after {cls_name}.{method}:{line}"
        except TransformError as exc:
            last_error = exc
    raise TransformError(
        str(last_error)
        if last_error is not None
        else f"no liveness-safe nulling point for {var} in {cls_name}.{method}"
    )


def _insert_null_unchecked(
    program: ast.Program, class_name: str, method_name: str, var: str, after_line: int
) -> ast.Program:
    revised = clone_program(program)
    target_cls = find_class(revised, class_name)
    target_method = None
    for method in target_cls.methods:
        if method.name == method_name:
            target_method = method
    if target_method is None or target_method.body is None:
        raise TransformError(f"no body for {class_name}.{method_name}")
    inserted: List[ast.Stmt] = []

    def insert_after(stmt: ast.Stmt):
        if (
            stmt.pos.line == after_line
            and not isinstance(stmt, ast.Block)
            and not inserted
        ):
            inserted.append(stmt)
            null_assign = ast.Assign(
                ast.Name(var, pos=stmt.pos), ast.NullLit(pos=stmt.pos), pos=stmt.pos
            )
            return [stmt, null_assign]
        return stmt

    rewrite_block(target_method.body, insert_after)
    if not inserted:
        raise TransformError(
            f"no statement at line {after_line} in {class_name}.{method_name}"
        )
    return revised


def _null_safe_rhs(expr: ast.Expr) -> bool:
    """May ``expr`` be replaced by ``null`` without observable effect
    beyond the stored reference? True only for expressions that cannot
    throw, cannot allocate (the byte clock is untouched, so every other
    object's drag measurement is preserved), and have no side effects.
    Deliberately tighter than "side-effect-free": ``x.f`` off a local
    may NPE and a string literal allocates, so both are excluded."""
    if isinstance(expr, (ast.Name, ast.This, ast.IntLit, ast.CharLit, ast.BoolLit, ast.NullLit)):
        return True
    if isinstance(expr, ast.FieldAccess):
        return isinstance(expr.target, ast.This)
    return False


def _checked(revised: ast.Program, detail: str) -> Tuple[ast.Program, str]:
    """Re-run the compiler as the applier's semantic gate."""
    from repro.errors import ReproError
    from repro.mjava.compiler import compile_program

    try:
        compile_program(revised)
    except ReproError as exc:
        raise TransformError(f"revision does not compile: {exc}")
    return revised, detail


@register_applier("assign-null-heap-field")
def _apply_heap_field_null(program: ast.Program, patch: Patch) -> Tuple[ast.Program, str]:
    """DRAG007: insert ``var.field = null;`` after the first insertion
    line that carries a statement — the heap liveness analysis proved
    every access path through the field dead past each candidate."""
    cls_name = patch.params["class_name"]
    method = patch.params["method_name"]
    var = patch.params["var_name"]
    field = patch.params["field_name"]
    lines = list(patch.params["lines"])
    if not lines:
        raise TransformError(f"no insertion line for {var}.{field} in {cls_name}.{method}")
    last_error: Optional[TransformError] = None
    for line in lines:
        try:
            revised = _insert_field_null(program, cls_name, method, var, field, line)
        except TransformError as exc:
            last_error = exc
            continue
        return _checked(
            revised, f"{var}.{field} = null inserted after {cls_name}.{method}:{line}"
        )
    raise TransformError(str(last_error))


def _insert_field_null(
    program: ast.Program,
    class_name: str,
    method_name: str,
    var: str,
    field: str,
    after_line: int,
) -> ast.Program:
    revised = clone_program(program)
    target_method = find_method(revised, class_name, method_name)
    if target_method.body is None:
        raise TransformError(f"no body for {class_name}.{method_name}")
    inserted: List[ast.Stmt] = []

    def insert_after(stmt: ast.Stmt):
        if (
            stmt.pos.line == after_line
            and not isinstance(stmt, ast.Block)
            and not inserted
        ):
            inserted.append(stmt)
            null_assign = ast.Assign(
                ast.FieldAccess(ast.Name(var, pos=stmt.pos), field, pos=stmt.pos),
                ast.NullLit(pos=stmt.pos),
                pos=stmt.pos,
            )
            return [stmt, null_assign]
        return stmt

    rewrite_block(target_method.body, insert_after)
    if not inserted:
        raise TransformError(
            f"no statement at line {after_line} in {class_name}.{method_name}"
        )
    return revised


@register_applier("null-dead-heap-store")
def _apply_null_dead_store(program: ast.Program, patch: Patch) -> Tuple[ast.Program, str]:
    """DRAG006: keep each flagged store (and everything it evaluates)
    but store ``null`` instead of the reference, so the heap path stops
    pinning objects nothing will read. Only rewrites assignments whose
    RHS passes :func:`_null_safe_rhs`."""
    stores = list(patch.params["stores"])
    revised = clone_program(program)
    rewritten = 0
    for cls_name, line in stores:
        cls = revised.find_class(cls_name)
        if cls is None:
            continue
        bodies = [c.body for c in cls.ctors] + [
            m.body for m in cls.methods if m.body is not None
        ]
        for body in bodies:
            for node in body.walk():
                if (
                    isinstance(node, ast.Assign)
                    and node.pos.line == line
                    and not isinstance(node.value, ast.NullLit)
                    and _null_safe_rhs(node.value)
                ):
                    node.value = ast.NullLit(pos=node.value.pos)
                    rewritten += 1
    if not rewritten:
        raise TransformError(
            f"no rewritable dead heap store at {[f'{c}:{l}' for c, l in stores]}"
        )
    return _checked(revised, f"{rewritten} dead heap store(s) now store null")


def apply_patch(program: ast.Program, patch: Patch) -> Tuple[ast.Program, str]:
    """Apply one patch; returns (revised program, human detail)."""
    applier = APPLIERS.get(patch.kind)
    if applier is None:
        raise TransformError(f"no applier for patch kind {patch.kind!r}")
    return applier(program, patch)


def apply_patches(program: ast.Program, patches) -> ast.Program:
    """Apply a sequence of patches in order, purely: the input program
    is never mutated and each patch sees its predecessors' output. A
    patch whose precondition fails on the evolving AST raises
    :class:`TransformError` (use the pipeline for record-and-continue
    semantics)."""
    current = program
    for patch in patches:
        current, _ = apply_patch(current, patch)
    return current
