"""Assigning null to dead references (§3.3.1).

Two validated variants:

* :func:`assign_null_to_local` — inserts ``v = null;`` after the last
  use of a local reference, validated by liveness analysis on the
  original bytecode (§5.1): the slot must be dead at every later point.
* :func:`clear_array_slot_on_remove` — the §5.2 vector case: in classes
  with a verified logical-size (array, count) pair, inserts
  ``array[count] = null;`` after every decrement of the count.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SemanticError, TransformError
from repro.analysis.array_liveness import logical_size_pairs, removal_points
from repro.analysis.liveness import liveness
from repro.bytecode.opcodes import Op
from repro.mjava import ast
from repro.mjava.compiler import compile_program
from repro.mjava.sema import ClassTable
from repro.transform.rewriter import clone_program, find_class, rewrite_block


def _validate_dead_after_line(method, var_name: str, line: int) -> None:
    """Liveness proof: inserting ``var = null`` after ``line`` preserves
    semantics — no later program point may rely on the slot."""
    try:
        slot = method.slot_names.index(var_name)
    except ValueError:
        raise TransformError(f"no local {var_name} in {method.qualified_name}")
    if method.slot_types[slot] != "ref":
        raise TransformError(f"{var_name} is not a reference variable")
    live = liveness(method)
    # The insertion point is "after the statement at `line`": collect the
    # control-flow successors that leave that line and require the slot
    # to be dead at each of them. This is robust to loops (a back edge
    # to an earlier line is still a successor and is checked).
    stmt_pcs = [pc for pc, instr in enumerate(method.code) if instr.line == line]
    if not stmt_pcs:
        raise TransformError(
            f"line {line} has no code in {method.qualified_name}"
        )
    on_line = set(stmt_pcs)
    for pc in stmt_pcs:
        for succ in live.cfg.succs[pc]:
            if succ in on_line:
                continue
            if slot in live.live_in[succ]:
                raise TransformError(
                    f"{var_name} is still live after line {line} "
                    f"(at pc {succ}, line {method.code[succ].line}); "
                    "assigning null would change semantics"
                )


def null_insertion_candidates(method, var_name: str) -> List[int]:
    """Lines after which ``var_name = null`` would be liveness-safe,
    earliest first.

    For a variable whose last read sits inside a loop there is no
    single "last use instruction" (the backward analysis keeps it live
    around the back edge); the death happens on the loop-exit edge, so
    the safe insertion point is after the enclosing loop statement —
    which this sweep finds naturally.
    """
    try:
        slot = method.slot_names.index(var_name)
    except ValueError:
        return []
    if method.slot_types[slot] != "ref":
        return []
    load_lines = [
        instr.line
        for instr in method.code
        if instr.op == Op.LOAD and instr.args == (slot,)
    ]
    if not load_lines:
        return []
    first_load = min(load_lines)
    candidates = sorted({instr.line for instr in method.code if instr.line >= first_load})
    out = []
    for line in candidates:
        try:
            _validate_dead_after_line(method, var_name, line)
        except TransformError:
            continue
        out.append(line)
    return out


def assign_null_to_local(
    program: ast.Program,
    class_name: str,
    method_name: str,
    var_name: str,
    after_line: int,
    table: Optional[ClassTable] = None,
) -> ast.Program:
    """Insert ``var = null;`` after the statement at ``after_line`` in
    ``class_name.method_name``. Returns a new (linked) program AST;
    raises :class:`TransformError` if liveness cannot prove safety."""
    compiled = compile_program(program, table=table)
    cls = compiled.classes.get(class_name)
    if cls is None or method_name not in cls.methods:
        raise TransformError(f"no method {class_name}.{method_name}")
    _validate_dead_after_line(cls.methods[method_name], var_name, after_line)

    revised = clone_program(program)
    target_cls = find_class(revised, class_name)
    target_method = None
    for method in target_cls.methods:
        if method.name == method_name:
            target_method = method
    if target_method is None or target_method.body is None:
        raise TransformError(f"no body for {class_name}.{method_name}")

    inserted = []

    def insert_after(stmt: ast.Stmt):
        if (
            stmt.pos.line == after_line
            and not isinstance(stmt, ast.Block)
            and not inserted
        ):
            inserted.append(stmt)
            null_assign = ast.Assign(
                ast.Name(var_name, pos=stmt.pos), ast.NullLit(pos=stmt.pos), pos=stmt.pos
            )
            return [stmt, null_assign]
        return stmt

    rewrite_block(target_method.body, insert_after)
    if not inserted:
        raise TransformError(
            f"no statement at line {after_line} in {class_name}.{method_name}"
        )
    # Bytecode liveness is method-scoped but AST scoping is narrower: the
    # chosen line may sit outside the variable's declaring block. A
    # compile check catches that (and any other scoping surprise).
    try:
        compile_program(revised)
    except SemanticError as exc:
        raise TransformError(
            f"insertion after line {after_line} is out of {var_name}'s scope: {exc}"
        )
    return revised


def clear_array_slot_on_remove(
    program: ast.Program,
    class_name: str,
    pair: Optional[Tuple[str, str]] = None,
    table: Optional[ClassTable] = None,
) -> ast.Program:
    """Null out the slot of a logically-removed array element.

    For each verified (array, count) pair of ``class_name`` and each
    decrement of the count, rewrites::

        count = count - 1;            count = count - 1;
        return data[count];     =>    Object removed = data[count];
                                      data[count] = null;
                                      return removed;

    (or simply appends ``data[count] = null;`` when the next statement
    does not read the slot).
    """
    table = table or ClassTable(program)
    pairs = logical_size_pairs(table, class_name)
    if pair is not None:
        if pair not in pairs:
            raise TransformError(
                f"({pair[0]}, {pair[1]}) is not a verified logical-size pair of {class_name}"
            )
        pairs = [pair]
    if not pairs:
        raise TransformError(f"{class_name} has no verified logical-size array")

    revised = clone_program(program)
    target_cls = find_class(revised, class_name)

    for array_field, size_field in pairs:
        decrements = {
            id_stmt
            for _, dec in removal_points(table, class_name, (array_field, size_field))
            for id_stmt in [_stmt_signature(dec)]
        }

        def make_fixer(return_type: ast.Type):
            def fix_block(block: ast.Block) -> None:
                new_stmts: List[ast.Stmt] = []
                i = 0
                stmts = block.stmts
                while i < len(stmts):
                    stmt = stmts[i]
                    _recurse_blocks(stmt, fix_block)
                    new_stmts.append(stmt)
                    if isinstance(stmt, ast.Assign) and _stmt_signature(stmt) in decrements:
                        nxt = stmts[i + 1] if i + 1 < len(stmts) else None
                        if (
                            isinstance(nxt, ast.Return)
                            and isinstance(nxt.value, ast.Index)
                            and _reads_slot(nxt.value, array_field, size_field)
                        ):
                            pos = nxt.pos
                            new_stmts.append(
                                ast.VarDecl(return_type, "removedElement_", nxt.value, pos=pos)
                            )
                            new_stmts.append(_null_store(array_field, size_field, pos))
                            new_stmts.append(
                                ast.Return(ast.Name("removedElement_", pos=pos), pos=pos)
                            )
                            i += 2
                            continue
                        new_stmts.append(_null_store(array_field, size_field, stmt.pos))
                    i += 1
                block.stmts = new_stmts

            return fix_block

        for ctor in target_cls.ctors:
            make_fixer(ast.OBJECT)(ctor.body)
        for method in target_cls.methods:
            if method.body is not None:
                make_fixer(method.return_type)(method.body)
    return revised


def _stmt_signature(stmt: ast.Stmt):
    """Position-based identity usable across a clone."""
    return (stmt.pos.line, stmt.pos.col, type(stmt).__name__)


def _recurse_blocks(stmt: ast.Stmt, fix_block) -> None:
    if isinstance(stmt, ast.Block):
        fix_block(stmt)
    elif isinstance(stmt, ast.If):
        _recurse_blocks(stmt.then, fix_block)
        if stmt.otherwise is not None:
            _recurse_blocks(stmt.otherwise, fix_block)
    elif isinstance(stmt, (ast.While, ast.For)):
        _recurse_blocks(stmt.body, fix_block)
    elif isinstance(stmt, ast.Try):
        fix_block(stmt.body)
        for clause in stmt.catches:
            fix_block(clause.body)
    elif isinstance(stmt, ast.Synchronized):
        fix_block(stmt.body)


def _reads_slot(index_expr: ast.Index, array_field: str, size_field: str) -> bool:
    from repro.analysis.array_liveness import _is_field_name

    return _is_field_name(index_expr.array, array_field) and _is_field_name(
        index_expr.index, size_field
    )


def _null_store(array_field: str, size_field: str, pos) -> ast.Assign:
    return ast.Assign(
        ast.Index(ast.Name(array_field, pos=pos), ast.Name(size_field, pos=pos), pos=pos),
        ast.NullLit(pos=pos),
        pos=pos,
    )
