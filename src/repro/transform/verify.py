"""Differential verification of applied patches.

The paper checks its hand rewrites by re-running the benchmark and
comparing outputs; this module automates that. After a patch is
applied, the revised program is compiled and re-profiled through the
PR 3 engine facade (:func:`repro.core.profiler.profile_program` goes
through :func:`repro.runtime.engine.create_vm`), and the run is
compared against the last *accepted* run:

* **stdout must be identical** — the rewrite preserved behavior;
* **total drag must not increase** (within ``drag_tolerance``) — the
  rewrite moved in the paper's Table 5 direction.

A revised program that fails to compile or crashes at runtime is a
verification failure, not an internal error: the pipeline rolls the
patch back and continues.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import MiniJavaException, ReproError


class ReferenceRun:
    """One accepted profiled run: the baseline the next patch is
    differenced against."""

    __slots__ = ("stdout", "records", "analysis", "total_drag", "profile")

    def __init__(self, stdout: List[str], records, analysis, profile=None) -> None:
        self.stdout = stdout
        self.records = records
        self.analysis = analysis
        # Weight-corrected total: the exact observed int for full-rate
        # profiles (the pipeline's own runs), the unbiased estimate when
        # a caller verifies against a byte-sampled reference.
        self.total_drag = analysis.est_total_drag
        self.profile = profile

    @classmethod
    def from_profile(cls, profile) -> "ReferenceRun":
        from repro.core.analyzer import DragAnalysis

        analysis = DragAnalysis(profile.records)
        return cls(list(profile.run_result.stdout), profile.records, analysis, profile)


def run_reference(
    program_ast,
    main_class: str,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    engine: Optional[str] = None,
) -> ReferenceRun:
    """Compile and profile a program AST; raises
    :class:`~repro.errors.ReproError` /
    :class:`~repro.errors.MiniJavaException` when it cannot run."""
    from repro.core.profiler import profile_program
    from repro.mjava.compiler import compile_program

    compiled = compile_program(program_ast, main_class=main_class)
    profile = profile_program(
        compiled, list(args or []), interval_bytes=interval_bytes, engine=engine
    )
    return ReferenceRun.from_profile(profile)


class VerificationResult:
    """The verdict on one applied patch."""

    __slots__ = ("ok", "stdout_ok", "drag_ok", "drag_before", "drag_after", "detail")

    def __init__(
        self,
        ok: bool,
        stdout_ok: bool,
        drag_ok: bool,
        drag_before: int,
        drag_after: Optional[int],
        detail: str,
    ) -> None:
        self.ok = ok
        self.stdout_ok = stdout_ok
        self.drag_ok = drag_ok
        self.drag_before = drag_before
        self.drag_after = drag_after  # None when the revised program crashed
        self.detail = detail

    @property
    def drag_saved(self) -> int:
        if self.drag_after is None:
            return 0
        return self.drag_before - self.drag_after

    def __repr__(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        return f"<verify {verdict}: {self.detail}>"


def verify_revision(
    baseline: ReferenceRun,
    revised_ast,
    main_class: str,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    engine: Optional[str] = None,
    drag_tolerance: float = 0.0,
) -> Tuple[VerificationResult, Optional[ReferenceRun]]:
    """Differential check of ``revised_ast`` against ``baseline``.

    Returns (result, revised run); the run is ``None`` when the revised
    program failed to compile or crashed. On success the caller adopts
    the revised run as the next baseline, so drag comparisons are
    always patch-over-accepted-predecessor.
    """
    try:
        run = run_reference(
            revised_ast, main_class, args, interval_bytes=interval_bytes, engine=engine
        )
    except (ReproError, MiniJavaException) as exc:
        return (
            VerificationResult(
                False, False, False, baseline.total_drag, None,
                f"revised program failed to run: {exc}",
            ),
            None,
        )
    stdout_ok = run.stdout == baseline.stdout
    allowed = baseline.total_drag * (1.0 + drag_tolerance)
    drag_ok = run.total_drag <= allowed
    ok = stdout_ok and drag_ok
    if not stdout_ok:
        detail = _stdout_mismatch(baseline.stdout, run.stdout)
    elif not drag_ok:
        detail = (
            f"total drag increased: {baseline.total_drag} -> {run.total_drag} "
            f"(allowed <= {allowed:.0f})"
        )
    else:
        detail = (
            f"stdout identical ({len(run.stdout)} line(s)); "
            f"drag {baseline.total_drag} -> {run.total_drag}"
        )
    return VerificationResult(
        ok, stdout_ok, drag_ok, baseline.total_drag, run.total_drag, detail
    ), run


def _stdout_mismatch(before: List[str], after: List[str]) -> str:
    if len(before) != len(after):
        return f"stdout differs: {len(before)} line(s) before, {len(after)} after"
    for i, (a, b) in enumerate(zip(before, after)):
        if a != b:
            return f"stdout differs at line {i + 1}: {a!r} != {b!r}"
    return "stdout differs"
