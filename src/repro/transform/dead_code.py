"""Dead-code removal of never-used allocations (§3.3.2).

"Using a feature of the tool showing objects that are allocated but
never used, we find allocation sites where all objects are never-used
... We eliminate the allocation of these objects. ... We must guarantee
that the constructor is the only code that references the object and
that the constructor has no influence on the rest of the program."

The automatic version removes:

* assignments (and field initializers) to fields that usage /
  indirect-usage analysis proves are never read in any call-graph-
  reachable method, when the right-hand side is a removal-pure
  allocation, and
* declarations/assignments of local reference variables that are never
  loaded, under the same right-hand-side purity requirement.

Safety gates (§3.3.2, §5.5): the constructor must be pure and its only
possible exception is OutOfMemoryError, which must have no handler in
the program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import build_call_graph
from repro.analysis.exceptions import ThrownExceptions
from repro.analysis.indirect_usage import indirectly_unused_fields
from repro.analysis.purity import ctor_purity
from repro.analysis.usage import field_usage
from repro.bytecode.opcodes import Op
from repro.mjava import ast
from repro.mjava.compiler import compile_program
from repro.mjava.sema import ClassTable
from repro.transform.rewriter import clone_program, rewrite_block


class Removal:
    """One removed allocation, for reporting."""

    __slots__ = ("kind", "where", "what")

    def __init__(self, kind: str, where: str, what: str) -> None:
        self.kind = kind  # 'field-store' | 'field-init' | 'local'
        self.where = where
        self.what = what

    def __repr__(self) -> str:
        return f"<removed {self.kind} {self.what} at {self.where}>"


class DeadAllocationCandidates:
    """Everything the §3.3.2 analyses prove removable, before any
    rewriting — the single analysis core shared by
    :func:`remove_dead_allocations` and the linter's DRAG001 pass."""

    __slots__ = (
        "dead_statics",
        "dead_fields",
        "dead_locals",
        "array_store_sigs",
        "oom_handled",
    )

    def __init__(
        self,
        dead_statics: Set[Tuple[str, str]],
        dead_fields: Set[Tuple[str, str]],
        dead_locals: Dict[str, Set[str]],
        array_store_sigs: Set[Tuple[str, Tuple]],
        oom_handled: bool,
    ) -> None:
        self.dead_statics = dead_statics  # (declaring class, field)
        self.dead_fields = dead_fields  # (declaring class, field)
        self.dead_locals = dead_locals  # qualified method -> local names
        self.array_store_sigs = array_store_sigs  # (class, stmt signature)
        self.oom_handled = oom_handled

    def is_empty(self) -> bool:
        return not (
            self.dead_statics
            or self.dead_fields
            or self.dead_locals
            or self.array_store_sigs
        )


def dead_allocation_candidates(
    program: ast.Program,
    main_class: str,
    table: Optional[ClassTable] = None,
    compiled=None,
    callgraph=None,
) -> DeadAllocationCandidates:
    """Run the never-used analyses (usage, indirect usage, never-loaded
    locals, write-only arrays) restricted to call-graph-reachable code,
    with the §5.5 exception gate. ``compiled``/``callgraph`` may be
    passed in to reuse a caller's cached artifacts."""
    table = table or ClassTable(program)
    if compiled is None:
        compiled = compile_program(program, main_class=main_class, table=table)
    if callgraph is None:
        callgraph = build_call_graph(compiled)
    reachable = callgraph.reachable_compiled_methods()
    usage = field_usage(compiled, reachable)
    exceptions = ThrownExceptions(compiled, callgraph)
    oom_handled = exceptions.program_has_handler_for("OutOfMemoryError")

    dead_statics: Set[Tuple[str, str]] = set(usage.written_never_read_statics())
    dead_fields: Set[Tuple[str, str]] = set(usage.written_never_read_instance_fields())
    for key in indirectly_unused_fields(compiled, usage):
        cls = compiled.classes.get(key[0])
        if cls is not None and key[1] in cls.static_descriptors:
            dead_statics.add(key)
        else:
            dead_fields.add(key)

    dead_locals = never_loaded_ref_locals(compiled, callgraph)
    array_store_sigs: Set[Tuple[str, Tuple]] = (
        set()
        if oom_handled
        else set(_write_only_array_removals(program, table, callgraph.reachable))
    )
    return DeadAllocationCandidates(
        dead_statics, dead_fields, dead_locals, array_store_sigs, oom_handled
    )


def _is_removal_pure_expr(table: ClassTable, expr: ast.Expr) -> bool:
    """Side-effect-free except allocation; cannot throw anything but
    OutOfMemoryError."""
    if isinstance(expr, (ast.IntLit, ast.CharLit, ast.BoolLit, ast.NullLit, ast.StringLit)):
        return True
    if isinstance(expr, ast.New):
        if not table.has(expr.class_name):
            return False
        if not ctor_purity(table, expr.class_name).pure:
            return False
        return all(_is_removal_pure_expr(table, a) for a in expr.args)
    if isinstance(expr, ast.NewArray):
        # A non-constant length could raise IndexOutOfBoundsException,
        # which programs do catch — require a provably non-negative
        # constant length.
        return isinstance(expr.length, ast.IntLit) and expr.length.value >= 0
    if isinstance(expr, ast.Binary) and expr.op == "+":
        # string concatenation of pure parts (allocates only)
        return _is_removal_pure_expr(table, expr.left) and _is_removal_pure_expr(
            table, expr.right
        )
    return False


def _stmt_signature(stmt: ast.Stmt):
    return (stmt.pos.line, stmt.pos.col, type(stmt).__name__)


def _bodies_of(decl: ast.ClassDecl):
    out = [("<init>", ctor.body, [p.name for p in ctor.params]) for ctor in decl.ctors]
    out += [
        (m.name, m.body, [p.name for p in m.params])
        for m in decl.methods
        if m.body is not None
    ]
    return out


def _write_only_array_removals(
    program: ast.Program,
    table: ClassTable,
    reachable_keys,
) -> List[Tuple[str, Tuple]]:
    """The raytrace §3.4.2 pattern: a never-read array field whose
    elements are only ever *written* in the constructor with pure
    allocations. Returns (class_name, stmt signature) pairs naming the
    element stores that can be removed.

    Guards: the whole-array allocation must be a constant-length
    ``new T[n]`` preceding the stores (so removal cannot hide an NPE),
    each removed store must use a constant in-bounds index (so removal
    cannot hide an IndexOutOfBoundsException), and every read of the
    field in a call-graph-reachable method must itself be one of those
    stores' bases.
    """
    removals: List[Tuple[str, Tuple]] = []
    for decl in program.classes:
        for field in decl.fields:
            if field.mods.static or not isinstance(field.type, ast.ArrayType):
                continue
            fname = field.name
            disqualified = False
            element_stores: List[Tuple[str, ast.Assign, ast.Index]] = []
            array_length: Optional[int] = None

            for cls in program.classes:
                resolved = table.resolve_field(cls.name, fname)
                if resolved is None or resolved[0].name != decl.name:
                    continue
                for member_name, body, params in _bodies_of(cls):
                    shadowed = fname in params or any(
                        isinstance(n, ast.VarDecl) and n.name == fname
                        for n in body.walk()
                    )
                    reachable = (cls.name, member_name) in reachable_keys
                    for node in body.walk():
                        if not isinstance(node, ast.Assign):
                            continue
                        target = node.target
                        names_field = (
                            isinstance(target, ast.Name)
                            and target.ident == fname
                            and not shadowed
                        ) or (
                            isinstance(target, ast.FieldAccess)
                            and target.name == fname
                            and isinstance(target.target, ast.This)
                        )
                        if names_field:
                            # whole-array allocation with constant length
                            if (
                                member_name == "<init>"
                                and isinstance(node.value, ast.NewArray)
                                and isinstance(node.value.length, ast.IntLit)
                            ):
                                array_length = node.value.length.value
                            continue
                        if (
                            isinstance(target, ast.Index)
                            and (
                                (
                                    isinstance(target.array, ast.Name)
                                    and target.array.ident == fname
                                    and not shadowed
                                )
                                or (
                                    isinstance(target.array, ast.FieldAccess)
                                    and target.array.name == fname
                                    and isinstance(target.array.target, ast.This)
                                )
                            )
                        ):
                            element_stores.append((cls.name, node, target))
                    # Any *other* appearance of the field in a reachable
                    # body is a real read and disqualifies the pattern.
                    if not reachable:
                        continue
                    store_bases = {id(t.array) for _, _, t in element_stores}
                    for node in body.walk():
                        if isinstance(node, ast.Name) and node.ident == fname and not shadowed:
                            if id(node) not in store_bases and not _is_write_target(
                                body, node
                            ):
                                disqualified = True
                        elif (
                            isinstance(node, ast.FieldAccess)
                            and node.name == fname
                            and isinstance(node.target, ast.This)
                        ):
                            if id(node) not in store_bases and not _is_write_target(
                                body, node
                            ):
                                disqualified = True
                if disqualified:
                    break
            if disqualified or array_length is None:
                continue
            for cls_name, stmt, target in element_stores:
                if (
                    isinstance(target.index, ast.IntLit)
                    and 0 <= target.index.value < array_length
                    and isinstance(stmt.value, ast.New)
                    and _is_removal_pure_expr(table, stmt.value)
                ):
                    removals.append((cls_name, _stmt_signature(stmt)))
    return removals


def _is_write_target(body: ast.Block, node: ast.Expr) -> bool:
    """Is ``node`` exactly the target of some assignment in the body?"""
    for stmt in body.walk():
        if isinstance(stmt, ast.Assign) and stmt.target is node:
            return True
    return False


def remove_dead_allocations(
    program: ast.Program,
    main_class: str,
    table: Optional[ClassTable] = None,
    candidates: Optional[DeadAllocationCandidates] = None,
) -> Tuple[ast.Program, List[Removal]]:
    """Apply dead-code removal program-wide; returns (revised program,
    removal report). The input program must be library-linked.
    ``candidates`` may come from a previous
    :func:`dead_allocation_candidates` run (e.g. the linter's) to avoid
    repeating the analyses."""
    table = table or ClassTable(program)
    if candidates is None:
        candidates = dead_allocation_candidates(program, main_class, table=table)
    oom_handled = candidates.oom_handled
    dead_statics = candidates.dead_statics
    dead_fields = candidates.dead_fields
    dead_field_names = {f for _, f in dead_fields}
    dead_locals = candidates.dead_locals
    array_store_sigs = candidates.array_store_sigs

    revised = clone_program(program)
    removals: List[Removal] = []

    for cls in revised.classes:
        # Field initializers of dead fields.
        for field in cls.fields:
            key = (cls.name, field.name)
            is_dead = key in dead_statics if field.mods.static else key in dead_fields
            if is_dead and field.init is not None and _is_removal_pure_expr(table, field.init):
                if _allocates(field.init) and oom_handled:
                    continue
                removals.append(
                    Removal("field-init", f"{cls.name}.{field.name}", _describe(field.init))
                )
                field.init = None
        # Statement rewrites in every body.
        bodies = [
            (f"{cls.name}.<init>", ctor.body, [p.name for p in ctor.params])
            for ctor in cls.ctors
        ]
        bodies += [
            (f"{cls.name}.{m.name}", m.body, [p.name for p in m.params])
            for m in cls.methods
            if m.body is not None
        ]
        for where, body, param_names in bodies:
            method_dead_locals = set(dead_locals.get(where, set()))
            local_names = {
                node.name for node in body.walk() if isinstance(node, ast.VarDecl)
            }
            local_names.update(param_names)
            # A local is only removable when every store to it is pure;
            # otherwise removing its declaration would orphan the store.
            for node in body.walk():
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.target, ast.Name)
                    and node.target.ident in method_dead_locals
                    and not _is_removal_pure_expr(table, node.value)
                ):
                    method_dead_locals.discard(node.target.ident)

            def remove_dead(stmt: ast.Stmt):
                if (
                    isinstance(stmt, ast.Assign)
                    and (cls.name, _stmt_signature(stmt)) in array_store_sigs
                ):
                    removals.append(
                        Removal("array-store", where, _describe(stmt.value))
                    )
                    return None
                if isinstance(stmt, ast.Assign):
                    target = stmt.target
                    is_dead_target = (
                        isinstance(target, ast.Name)
                        and (
                            target.ident in method_dead_locals
                            or (
                                target.ident not in local_names
                                and _field_key(
                                    table, cls.name, target.ident, dead_fields, dead_statics
                                )
                            )
                        )
                    ) or (
                        isinstance(target, ast.FieldAccess)
                        and isinstance(target.target, ast.This)
                        and target.name in dead_field_names
                    )
                    if is_dead_target and _is_removal_pure_expr(table, stmt.value):
                        if _allocates(stmt.value) and oom_handled:
                            return stmt
                        removals.append(
                            Removal("field-store", where, _describe(stmt.value))
                        )
                        return None
                if isinstance(stmt, ast.VarDecl) and stmt.name in method_dead_locals:
                    if stmt.init is None or _is_removal_pure_expr(table, stmt.init):
                        if stmt.init is not None and _allocates(stmt.init) and oom_handled:
                            return stmt
                        removals.append(
                            Removal("local", where, _describe(stmt.init) if stmt.init else stmt.name)
                        )
                        return None
                return stmt

            rewrite_block(body, remove_dead)
    return revised, removals


def _allocates(expr: ast.Expr) -> bool:
    return any(
        isinstance(node, (ast.New, ast.NewArray, ast.StringLit, ast.Binary))
        for node in expr.walk()
    )


def _describe(expr: ast.Expr) -> str:
    if isinstance(expr, ast.New):
        return f"new {expr.class_name}(...)"
    if isinstance(expr, ast.NewArray):
        return f"new {expr.element_type}[...]"
    return type(expr).__name__


def _field_key(table, class_name, name, dead_fields, dead_statics) -> bool:
    resolved = table.resolve_field(class_name, name)
    if resolved is None:
        return False
    declaring, field = resolved
    key = (declaring.name, name)
    return key in dead_statics if field.mods.static else key in dead_fields


def never_loaded_ref_locals(compiled, callgraph) -> Dict[str, Set[str]]:
    """Per qualified method: declared ref locals never LOADed.

    A local is removable only if *all* its stores have pure right-hand
    sides — that is checked at rewrite time; here we only demand it is
    never read. Parameters are excluded (callers still pass them)."""
    out: Dict[str, Set[str]] = {}
    for method in callgraph.reachable_compiled_methods():
        if method.is_native or not method.code:
            continue
        loaded = {i.args[0] for i in method.code if i.op == Op.LOAD}
        dead = set()
        first_local = method.param_count + (0 if method.is_static else 1)
        for slot in range(first_local, method.nlocals):
            if (
                slot not in loaded
                and method.slot_types[slot] == "ref"
                and not method.slot_names[slot].startswith("$")
            ):
                dead.add(method.slot_names[slot])
        if dead:
            out[method.qualified_name] = dead
    return out
