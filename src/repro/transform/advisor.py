"""The profile-driven optimizer (§3.4 "Putting It All Together").

Given a (linked) program and an input, the advisor:

1. profiles the original program (phase 1 + 2),
2. walks the allocation sites in decreasing drag order,
3. finds each site's *anchor* allocation site in application code,
4. classifies the site's lifetime pattern, and
5. applies the §3.4-suggested transformation when its static-analysis
   preconditions hold — dead-code removal for pattern 1, lazy
   allocation for pattern 2, assigning null for pattern 3 (locals via
   liveness; logical-size arrays via array liveness), nothing for
   pattern 4.

The result is a revised program plus a report of what was rewritten and
what was skipped (and why) — the paper's manual workflow, automated for
the cases its Section 5 analyses can justify.

The static analyses come from the lint pipeline
(:mod:`repro.lint`): the advisor builds one
:class:`~repro.lint.passes.AnalysisContext` (program compiled once,
call graph / CFGs / class table built once and shared across all
sites) and consults the lint diagnostics before attempting each
transformation — the static linter and the profile-driven optimizer
share one analysis core, so everything the advisor acts on is, by
construction, also a lint finding.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import TransformError
from repro.analysis.array_liveness import logical_size_pairs
from repro.core.analyzer import DragAnalysis, SiteGroup
from repro.core.patterns import LifetimePattern, classify_group
from repro.core.profiler import profile_program
from repro.mjava import ast
from repro.mjava.compiler import compile_program
from repro.mjava.sema import ClassTable
from repro.transform.assign_null import assign_null_to_local, clear_array_slot_on_remove
from repro.transform.dead_code import remove_dead_allocations
from repro.transform.lazy_alloc import lazy_allocate_field
from repro.transform.rewriter import clone_program


class Action:
    """One advisor decision, applied or skipped."""

    __slots__ = ("site", "pattern", "transformation", "applied", "detail")

    def __init__(self, site, pattern, transformation, applied, detail) -> None:
        self.site = site
        self.pattern = pattern
        self.transformation = transformation
        self.applied = applied
        self.detail = detail

    def __repr__(self) -> str:
        status = "applied" if self.applied else "skipped"
        return f"<{status} {self.transformation} at {self.site}: {self.detail}>"


class AdvisorReport:
    def __init__(self) -> None:
        self.actions: List[Action] = []

    def applied(self) -> List[Action]:
        return [a for a in self.actions if a.applied]

    def summary(self) -> str:
        lines = []
        for action in self.actions:
            status = "APPLIED" if action.applied else "skipped"
            lines.append(
                f"{status:8s} {action.transformation or '-':18s} "
                f"{str(action.site):40s} {action.detail}"
            )
        return "\n".join(lines)


def _parse_frame(label: str):
    """'Class.method:line' -> (class, method, line)."""
    left, _, line = label.rpartition(":")
    cls, _, method = left.partition(".")
    return cls, method, int(line)


class Advisor:
    """Automates one profile→rewrite cycle."""

    def __init__(
        self,
        program_ast: ast.Program,
        main_class: str,
        args: Optional[List[str]] = None,
        interval_bytes: int = 100 * 1024,
        top: int = 12,
        min_drag_share: float = 0.01,
    ) -> None:
        self.program_ast = program_ast
        self.main_class = main_class
        self.args = args or []
        self.interval_bytes = interval_bytes
        self.top = top
        self.min_drag_share = min_drag_share
        self._context = None
        self._lint_result = None
        # ClassTable cache for the revised AST: rebuilt only when an
        # applied transform produces a new AST, not per site group.
        self._revised_table = (None, None)

    @property
    def context(self):
        """The shared lint :class:`AnalysisContext` for the original
        program: one compilation, one call graph, one CFG per method,
        reused by every site decision."""
        if self._context is None:
            from repro.lint.passes import AnalysisContext

            self._context = AnalysisContext(self.program_ast, self.main_class)
        return self._context

    @property
    def lint(self):
        """Lint diagnostics for the original program (computed once)."""
        if self._lint_result is None:
            from repro.lint import lint_program

            self._lint_result = lint_program(
                self.program_ast, self.main_class, context=self.context
            )
        return self._lint_result

    def _table_for(self, revised) -> ClassTable:
        cached_ast, cached_table = self._revised_table
        if cached_ast is not revised:
            cached_table = ClassTable(revised)
            self._revised_table = (revised, cached_table)
        return cached_table

    def run(self):
        """Profile, decide, rewrite. Returns (revised_ast, report)."""
        compiled = self.context.compiled
        profile = profile_program(
            compiled, self.args, interval_bytes=self.interval_bytes
        )
        analysis = DragAnalysis(profile.records)
        report = AdvisorReport()
        revised = clone_program(self.program_ast)

        # Dead-code removal runs program-wide once; it is the pattern-1
        # transformation for every never-used site at once. The
        # candidate set is the lint core's (DRAG001's own analysis), so
        # whatever is removed here is exactly what the linter reports.
        never_used_sites = analysis.never_used_sites()
        if never_used_sites:
            revised, removals = remove_dead_allocations(
                revised, self.main_class, candidates=self.context.interproc.dead
            )
            detail = f"{len(removals)} allocation(s) removed"
            for group in never_used_sites[: self.top]:
                report.actions.append(
                    Action(group.key, LifetimePattern.ALL_NEVER_USED, "dead-code-removal",
                           bool(removals), detail)
                )

        lazy_done = set()
        arrays_done = set()
        # Nested-site groups distinguish call contexts that share a raw
        # allocation site (e.g. two HashTable fields allocated by the
        # same library constructor line) — exactly why §2.2 partitions
        # by nested allocation site.
        for group in analysis.sorted_nested(self.top):
            if analysis.drag_share(group) < self.min_drag_share:
                continue
            pattern = classify_group(group, interval_bytes=self.interval_bytes)
            if pattern is LifetimePattern.ALL_NEVER_USED:
                continue  # handled above
            if pattern is LifetimePattern.MOSTLY_NEVER_USED:
                revised = self._try_lazy(revised, profile, group, report, lazy_done)
            elif pattern is LifetimePattern.LARGE_DRAG:
                revised = self._try_assign_null(revised, profile, group, report, arrays_done)
            else:
                report.actions.append(
                    Action(group.key, pattern, None, False,
                           "no transformation for this pattern (§3.4 pattern 4/unclassified)")
                )
        return revised, report

    # -- pattern 2: lazy allocation ------------------------------------------

    def _try_lazy(self, revised, profile, group: SiteGroup, report, done):
        anchor = self._anchor(profile, group)
        if anchor is None:
            report.actions.append(
                Action(group.key, LifetimePattern.MOSTLY_NEVER_USED, "lazy-allocation",
                       False, "no application anchor frame"))
            return revised
        cls_name, method, line = _parse_frame(anchor)
        # The anchor must be a constructor assigning the allocation to a
        # field; find which field from the (original) AST.
        field = self._ctor_assigned_field(cls_name, line)
        if field is None:
            report.actions.append(
                Action(group.key, LifetimePattern.MOSTLY_NEVER_USED, "lazy-allocation",
                       False, f"anchor {anchor} is not a ctor field assignment"))
            return revised
        if (cls_name, field) in done:
            return revised
        if not self.lint.find("DRAG003", "field", cls_name, field):
            report.actions.append(
                Action(group.key, LifetimePattern.MOSTLY_NEVER_USED, "lazy-allocation",
                       False, f"{cls_name}.{field} is not a static lazy-allocation "
                       "candidate (no DRAG003 finding)"))
            return revised
        try:
            revised = lazy_allocate_field(revised, cls_name, field, self.main_class)
            done.add((cls_name, field))
            report.actions.append(
                Action(group.key, LifetimePattern.MOSTLY_NEVER_USED, "lazy-allocation",
                       True, f"{cls_name}.{field} now allocated on first use"))
        except TransformError as exc:
            report.actions.append(
                Action(group.key, LifetimePattern.MOSTLY_NEVER_USED, "lazy-allocation",
                       False, str(exc)))
        return revised

    # -- pattern 3: assigning null ---------------------------------------------

    def _try_assign_null(self, revised, profile, group: SiteGroup, report, arrays_done):
        # Case A: the dragged objects' last use is inside a class with a
        # verified logical-size array (the jess Vector case). The lint
        # DRAG002 findings already carry the verdict for every class
        # (including instantiated library ones), so consult them first.
        table = self._table_for(revised)
        for use_group in sorted(
            group.partition_by_last_use().values(), key=lambda g: -g.total_drag
        ):
            if use_group.key[1] is None:
                continue
            use_cls, _, _ = _parse_frame(use_group.key[1])
            if use_cls in arrays_done or not table.has(use_cls):
                continue
            if not self.lint.find("DRAG002", "array", use_cls):
                continue
            pairs = logical_size_pairs(table, use_cls)
            if pairs:
                try:
                    revised = clear_array_slot_on_remove(revised, use_cls)
                    arrays_done.add(use_cls)
                    report.actions.append(
                        Action(group.key, LifetimePattern.LARGE_DRAG, "assign-null",
                               True, f"array liveness: cleared slots of {pairs} in {use_cls}"))
                    return revised
                except TransformError:
                    pass
        # Case B: the allocation is held by a local of the anchor
        # method. Liveness on the anchor method pinpoints the local's
        # last-use line (the profile's last-use frame may be in a
        # callee — e.g. a fill() helper touching the buffer).
        anchor = self._anchor(profile, group)
        if anchor is None:
            report.actions.append(
                Action(group.key, LifetimePattern.LARGE_DRAG, "assign-null",
                       False, "no anchor frame in application code"))
            return revised
        a_cls, a_method, a_line = _parse_frame(anchor)
        var = self._local_assigned_at(a_cls, a_method, a_line)
        if var is None:
            report.actions.append(
                Action(group.key, LifetimePattern.LARGE_DRAG, "assign-null",
                       False, f"no local variable assigned at {anchor}"))
            return revised
        candidates = self._insertion_lines(profile.program, a_cls, a_method, var)
        candidates = [line for line in candidates if line >= a_line]
        if not candidates:
            report.actions.append(
                Action(group.key, LifetimePattern.LARGE_DRAG, "assign-null",
                       False, f"no liveness-safe nulling point for {var} in {a_cls}.{a_method}"))
            return revised
        last_error = None
        for line in candidates[:5]:
            try:
                revised = assign_null_to_local(revised, a_cls, a_method, var, line)
                report.actions.append(
                    Action(group.key, LifetimePattern.LARGE_DRAG, "assign-null",
                           True, f"{var} = null inserted after {a_cls}.{a_method}:{line}"))
                return revised
            except TransformError as exc:
                last_error = exc
        report.actions.append(
            Action(group.key, LifetimePattern.LARGE_DRAG, "assign-null",
                   False, str(last_error)))
        return revised

    # -- helpers --------------------------------------------------------------

    def _anchor(self, profile, group: SiteGroup) -> Optional[str]:
        from repro.core.anchor import anchor_site

        return anchor_site(group, profile.program)

    def _insertion_lines(self, compiled, class_name: str, method_name: str, var: str):
        """Liveness-safe lines after which ``var = null`` may go."""
        from repro.transform.assign_null import null_insertion_candidates

        cls = compiled.classes.get(class_name)
        if cls is None or method_name not in cls.methods:
            return []
        return null_insertion_candidates(cls.methods[method_name], var)

    def _dominant_last_use(self, group: SiteGroup) -> Optional[str]:
        votes = {}
        for record in group.records:
            if record.last_use_frame:
                votes[record.last_use_frame] = (
                    votes.get(record.last_use_frame, 0) + record.drag
                )
        if not votes:
            return None
        return max(sorted(votes), key=lambda k: votes[k])

    def _ctor_assigned_field(self, class_name: str, line: int) -> Optional[str]:
        cls = self.program_ast.find_class(class_name)
        if cls is None:
            return None
        for ctor in cls.ctors:
            for node in ctor.body.walk():
                if isinstance(node, ast.Assign) and node.pos.line == line:
                    if isinstance(node.target, ast.Name):
                        return node.target.ident
                    if isinstance(node.target, ast.FieldAccess) and isinstance(
                        node.target.target, ast.This
                    ):
                        return node.target.name
        for field in cls.fields:
            if field.pos.line == line and field.init is not None:
                return field.name
        return None

    def _local_assigned_at(self, class_name: str, method_name: str, line: int) -> Optional[str]:
        cls = self.program_ast.find_class(class_name)
        if cls is None:
            return None
        for method in cls.methods:
            if method.name != method_name or method.body is None:
                continue
            for node in method.body.walk():
                if node.pos.line != line:
                    continue
                if isinstance(node, ast.VarDecl) and node.init is not None:
                    return node.name
                if isinstance(node, ast.Assign) and isinstance(node.target, ast.Name):
                    local_names = {
                        n.name for n in method.body.walk() if isinstance(n, ast.VarDecl)
                    } | {p.name for p in method.params}
                    if node.target.ident in local_names:
                        return node.target.ident
        return None


def optimize(
    program_ast: ast.Program,
    main_class: str,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    top: int = 12,
):
    """One-call automatic drag reduction: returns (revised_ast, report)."""
    advisor = Advisor(program_ast, main_class, args, interval_bytes, top)
    return advisor.run()


def optimize_iteratively(
    program_ast: ast.Program,
    main_class: str,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    top: int = 12,
    max_cycles: int = 4,
):
    """Repeat the profile→rewrite cycle until no transformation applies.

    §3.2: "The tool was reapplied to the revised code in order to
    measure the resulting drag ... Sometimes, the results revealed more
    opportunities for drag reduction; in that case, another cycle of
    code rewriting and applying the tool took place."

    Returns (revised_ast, [report per cycle]).
    """
    current = program_ast
    reports: List[AdvisorReport] = []
    for _ in range(max_cycles):
        advisor = Advisor(current, main_class, args, interval_bytes, top)
        revised, report = advisor.run()
        reports.append(report)
        if not report.applied():
            break
        current = revised
    return current, reports
