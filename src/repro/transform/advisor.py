"""The profile-driven optimizer (§3.4 "Putting It All Together") —
legacy facade.

Since the pipeline refactor this module is a thin backward-compat shim:
the actual decision procedure lives in the strategy planners
(:mod:`repro.transform.planners`), patch application in
:mod:`repro.transform.apply`, and the profile→plan→apply(→verify)
cycle in :mod:`repro.transform.pipeline`. :class:`Advisor` runs one
*unverified* pipeline cycle and projects the result onto the original
``(revised_ast, AdvisorReport)`` shape — same action order, same
detail strings, same analysis sharing (one
:class:`~repro.lint.passes.AnalysisContext`, one lint run) as the
seed implementation. New code should use
:class:`~repro.transform.pipeline.OptimizationPipeline` directly,
which adds differential verification and rollback.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mjava import ast
from repro.transform.planners import parse_frame as _parse_frame  # noqa: F401 (compat)


class Action:
    """One advisor decision, applied or skipped."""

    __slots__ = ("site", "pattern", "transformation", "applied", "detail")

    def __init__(self, site, pattern, transformation, applied, detail) -> None:
        self.site = site
        self.pattern = pattern
        self.transformation = transformation
        self.applied = applied
        self.detail = detail

    def __repr__(self) -> str:
        status = "applied" if self.applied else "skipped"
        return f"<{status} {self.transformation} at {self.site}: {self.detail}>"


class AdvisorReport:
    def __init__(self) -> None:
        self.actions: List[Action] = []

    def applied(self) -> List[Action]:
        return [a for a in self.actions if a.applied]

    def summary(self) -> str:
        lines = []
        for action in self.actions:
            status = "APPLIED" if action.applied else "skipped"
            lines.append(
                f"{status:8s} {action.transformation or '-':18s} "
                f"{str(action.site):40s} {action.detail}"
            )
        return "\n".join(lines)


class Advisor:
    """Automates one profile→rewrite cycle (unverified; deprecated in
    favor of :class:`~repro.transform.pipeline.OptimizationPipeline`)."""

    def __init__(
        self,
        program_ast: ast.Program,
        main_class: str,
        args: Optional[List[str]] = None,
        interval_bytes: int = 100 * 1024,
        top: int = 12,
        min_drag_share: float = 0.01,
    ) -> None:
        self.program_ast = program_ast
        self.main_class = main_class
        self.args = args or []
        self.interval_bytes = interval_bytes
        self.top = top
        self.min_drag_share = min_drag_share
        self._context = None
        self._lint_result = None
        # The CycleReport behind the last run() — patches, outcomes,
        # and skip entries for callers that want the structured view.
        self.last_cycle = None

    @property
    def context(self):
        """The shared lint :class:`AnalysisContext` for the original
        program: one compilation, one call graph, one CFG per method,
        reused by every site decision."""
        if self._context is None:
            from repro.lint.passes import AnalysisContext

            self._context = AnalysisContext(self.program_ast, self.main_class)
        return self._context

    @property
    def lint(self):
        """Lint diagnostics for the original program (computed once)."""
        if self._lint_result is None:
            from repro.lint import lint_program

            self._lint_result = lint_program(
                self.program_ast, self.main_class, context=self.context
            )
        return self._lint_result

    def run(self):
        """Profile, decide, rewrite. Returns (revised_ast, report).

        One unverified pipeline cycle sharing this advisor's analysis
        context and lint result, so the profile is taken on the same
        compiled program and no analysis is rebuilt.
        """
        from repro.transform.pipeline import OptimizationPipeline

        pipeline = OptimizationPipeline(
            self.program_ast,
            self.main_class,
            self.args,
            interval_bytes=self.interval_bytes,
            top=self.top,
            min_drag_share=self.min_drag_share,
            max_cycles=1,
            verify=False,
        )
        cycle = pipeline.run_cycle(
            self.program_ast, context=self.context, lint=self.lint
        )
        self.last_cycle = cycle
        return cycle.revised, cycle.to_advisor_report()


def optimize(
    program_ast: ast.Program,
    main_class: str,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    top: int = 12,
):
    """One-call automatic drag reduction: returns (revised_ast, report)."""
    advisor = Advisor(program_ast, main_class, args, interval_bytes, top)
    return advisor.run()


def optimize_iteratively(
    program_ast: ast.Program,
    main_class: str,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    top: int = 12,
    max_cycles: int = 4,
):
    """Repeat the profile→rewrite cycle until no transformation applies.

    §3.2: "The tool was reapplied to the revised code in order to
    measure the resulting drag ... Sometimes, the results revealed more
    opportunities for drag reduction; in that case, another cycle of
    code rewriting and applying the tool took place."

    Returns (revised_ast, [report per cycle]).
    """
    from repro.transform.pipeline import OptimizationPipeline

    pipeline = OptimizationPipeline(
        program_ast,
        main_class,
        args,
        interval_bytes=interval_bytes,
        top=top,
        max_cycles=max_cycles,
        verify=False,
    )
    result = pipeline.run()
    return result.revised, [cycle.to_advisor_report() for cycle in result.cycles]
