"""Lazy allocation (§3.3.3).

"We eliminate the original allocation of the object and the variable
that would have referenced the object remains null ... Then, at every
possible first use of the object, there is a test to check whether the
variable is still null. If so, the object is allocated."

The automatic version targets an instance field initialized in the
constructor (the jack pattern: one Vector and two HashTables assigned to
package-visible instance fields). Preconditions (§3.3.3, §5.5):

* the field is assigned exactly once, in the constructor (or a field
  initializer), with ``new C(constant args)``;
* C's constructor is pure and reads no program state (``lazy_safe``);
* the only possible exception is OutOfMemoryError and the program has
  no handler for it;
* every read of the field is rewritable (reads occur as ``f`` /
  ``this.f`` in the declaring class — package scope is validated by
  scanning all classes).

The rewrite inserts the §5.1 "minimal code insertion" in its simplest
form: reads go through a package-visible accessor performing the
null-check-then-allocate test.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import TransformError
from repro.analysis.callgraph import build_call_graph
from repro.analysis.exceptions import ThrownExceptions
from repro.analysis.purity import ctor_purity
from repro.mjava import ast
from repro.mjava.compiler import compile_program
from repro.mjava.sema import ClassTable
from repro.transform.rewriter import (
    clone_program,
    find_class,
    rewrite_block,
    rewrite_exprs_in_stmt,
)


def _is_constant(expr: ast.Expr) -> bool:
    return isinstance(expr, (ast.IntLit, ast.CharLit, ast.BoolLit, ast.StringLit, ast.NullLit))


def _field_reads_in(cls: ast.ClassDecl, field_name: str) -> List[ast.Expr]:
    """Expressions reading ``field_name`` in a class body (Name or
    this.f), excluding assignment-target writes."""
    reads: List[ast.Expr] = []

    def collect(node: ast.Node) -> None:
        for sub in node.walk():
            if isinstance(sub, ast.Name) and sub.ident == field_name:
                reads.append(sub)
            elif (
                isinstance(sub, ast.FieldAccess)
                and sub.name == field_name
                and isinstance(sub.target, ast.This)
            ):
                reads.append(sub)

    bodies = [ctor.body for ctor in cls.ctors] + [
        m.body for m in cls.methods if m.body is not None
    ]
    for body in bodies:
        for stmt in body.walk():
            if isinstance(stmt, ast.Assign):
                if not isinstance(stmt.target, ast.Name):
                    collect(stmt.target)
                collect(stmt.value)
            elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
                collect(stmt.init)
            elif isinstance(stmt, (ast.ExprStmt,)):
                collect(stmt.expr)
            elif isinstance(stmt, (ast.Return, ast.Throw)) and stmt.value is not None:
                collect(stmt.value)
            elif isinstance(stmt, (ast.If, ast.While)):
                collect(stmt.cond)
            elif isinstance(stmt, ast.For) and stmt.cond is not None:
                collect(stmt.cond)
            elif isinstance(stmt, ast.Synchronized):
                collect(stmt.monitor)
            elif isinstance(stmt, ast.SuperCall):
                for arg in stmt.args:
                    collect(arg)
    return reads


def lazy_allocate_field(
    program: ast.Program,
    class_name: str,
    field_name: str,
    main_class: Optional[str] = None,
    table: Optional[ClassTable] = None,
) -> ast.Program:
    """Make ``class_name.field_name`` lazily allocated; returns a new
    program AST or raises :class:`TransformError` if unsafe."""
    table = table or ClassTable(program)
    info = table.get(class_name)
    field = info.fields.get(field_name)
    if field is None:
        raise TransformError(f"no field {class_name}.{field_name}")
    if field.mods.static:
        raise TransformError("lazy allocation targets instance fields")
    if not isinstance(field.type, ast.ClassType):
        raise TransformError("lazy allocation needs a class-typed field")

    # Find the single initializing assignment.
    init_sources: List[Tuple[str, ast.New]] = []
    if field.init is not None:
        if isinstance(field.init, ast.New):
            init_sources.append(("<field-init>", field.init))
        else:
            raise TransformError("field initializer is not a plain allocation")
    ctor = info.ctor
    ctor_assigns: List[ast.Assign] = []
    if ctor is not None:
        for node in ctor.body.walk():
            if isinstance(node, ast.Assign) and (
                (isinstance(node.target, ast.Name) and node.target.ident == field_name)
                or (
                    isinstance(node.target, ast.FieldAccess)
                    and node.target.name == field_name
                    and isinstance(node.target.target, ast.This)
                )
            ):
                ctor_assigns.append(node)
                if isinstance(node.value, ast.New):
                    init_sources.append(("<ctor>", node.value))
                else:
                    raise TransformError("constructor assigns a non-allocation value")
    if len(init_sources) != 1:
        raise TransformError(
            f"{class_name}.{field_name} must have exactly one initializing allocation"
        )
    _, allocation = init_sources[0]

    # No method anywhere (the declaring class's non-ctor methods, or any
    # other class) may assign the field: the constructor must be the
    # single initialization point.
    for cls in program.classes:
        for method in cls.methods:
            if method.body is None:
                continue
            for node in method.body.walk():
                if not isinstance(node, ast.Assign):
                    continue
                target = node.target
                assigns_field = (
                    isinstance(target, ast.FieldAccess) and target.name == field_name
                ) or (
                    cls.name == class_name
                    and isinstance(target, ast.Name)
                    and target.ident == field_name
                )
                if assigns_field:
                    raise TransformError(
                        f"{cls.name}.{method.name} assigns {field_name}; "
                        "cannot prove a single initialization point"
                    )

    # §3.3.3 constant-argument and purity requirements.
    if not all(_is_constant(a) for a in allocation.args):
        raise TransformError("constructor arguments are not constants")
    purity = ctor_purity(table, allocation.class_name)
    if not purity.lazy_safe:
        raise TransformError(
            f"constructor of {allocation.class_name} is not lazy-safe: {purity.reasons}"
        )

    # Exception check: only OOM possible; program must not handle it.
    compiled = compile_program(program, main_class=main_class, table=table)
    exceptions = ThrownExceptions(compiled, build_call_graph(compiled))
    if exceptions.program_has_handler_for("OutOfMemoryError"):
        raise TransformError("program has a handler for OutOfMemoryError")

    # Reads outside the declaring class make the rewrite non-local; the
    # jack fields are package-visible but only read in their class.
    for cls in program.classes:
        if cls.name != class_name and _field_reads_in(cls, field_name):
            resolved = table.resolve_field(cls.name, field_name)
            if resolved is not None and resolved[0].name == class_name:
                raise TransformError(
                    f"{field_name} is read in {cls.name}; rewrite only supports in-class reads"
                )

    # ---- rewrite ---------------------------------------------------------
    revised = clone_program(program)
    target_cls = find_class(revised, class_name)
    accessor_name = "lazyInit_" + field_name

    for rfield in target_cls.fields:
        if rfield.name == field_name:
            rfield.init = None

    def drop_init(stmt: ast.Stmt):
        if isinstance(stmt, ast.Assign) and (
            (isinstance(stmt.target, ast.Name) and stmt.target.ident == field_name)
            or (
                isinstance(stmt.target, ast.FieldAccess)
                and stmt.target.name == field_name
                and isinstance(stmt.target.target, ast.This)
            )
        ):
            return None
        return stmt

    def to_accessor(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Name) and expr.ident == field_name:
            return ast.Call(None, accessor_name, [], pos=expr.pos)
        if (
            isinstance(expr, ast.FieldAccess)
            and expr.name == field_name
            and isinstance(expr.target, ast.This)
        ):
            return ast.Call(ast.This(pos=expr.pos), accessor_name, [], pos=expr.pos)
        return expr

    for rctor in target_cls.ctors:
        rewrite_block(rctor.body, drop_init)
        rewrite_exprs_in_stmt(rctor.body, to_accessor)

    for method in target_cls.methods:
        if method.body is None or any(p.name == field_name for p in method.params):
            continue
        if any(
            isinstance(n, ast.VarDecl) and n.name == field_name
            for n in method.body.walk()
        ):
            continue  # shadowed by a local; reads hit the local, not the field
        rewrite_exprs_in_stmt(method.body, to_accessor)

    pos = field.pos
    accessor = ast.MethodDecl(
        ast.Modifiers("package"),
        field.type,
        accessor_name,
        [],
        ast.Block(
            [
                ast.If(
                    ast.Binary("==", ast.Name(field_name, pos=pos), ast.NullLit(pos=pos), pos=pos),
                    ast.Block(
                        [
                            ast.Assign(
                                ast.Name(field_name, pos=pos),
                                clone_node_expr(allocation),
                                pos=pos,
                            )
                        ],
                        pos=pos,
                    ),
                    None,
                    pos=pos,
                ),
                ast.Return(ast.Name(field_name, pos=pos), pos=pos),
            ],
            pos=pos,
        ),
        pos=pos,
    )
    target_cls.methods.append(accessor)
    return revised


def clone_node_expr(expr: ast.Expr) -> ast.Expr:
    from repro.transform.rewriter import clone_node

    return clone_node(expr)
