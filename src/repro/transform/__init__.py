"""The three drag-reducing program transformations (§3.3) and the
verified optimization pipeline that plans and applies them (§3.2/§3.4).

All transformations are source-to-source on the mini-Java AST, each
validated by the Section-5 static analyses before being applied:

* assigning null to a dead reference (local, field, or the vector
  logical-size array-element case),
* dead-code removal of allocations of never-used objects,
* lazy allocation of rarely-used objects.

Since the pipeline refactor the layer is split plan/apply:

* :mod:`~repro.transform.planners` — strategies emitting structured
  :class:`~repro.transform.patch.Patch` objects from profile drag
  groups joined with lint diagnostics;
* :mod:`~repro.transform.apply` — pure patch application
  (:func:`apply_patches`);
* :mod:`~repro.transform.verify` — differential verification (stdout
  identical, drag non-increasing) through the engine facade;
* :mod:`~repro.transform.pipeline` — the §3.2 fixpoint loop with
  per-patch rollback;
* :mod:`~repro.transform.advisor` — the legacy one-cycle facade.
"""

from repro.transform.rewriter import clone_program, clone_node
from repro.transform.assign_null import (
    assign_null_to_local,
    clear_array_slot_on_remove,
)
from repro.transform.dead_code import remove_dead_allocations
from repro.transform.lazy_alloc import lazy_allocate_field
from repro.transform.patch import Patch, PatchOutcome, PlannedSkip
from repro.transform.apply import APPLIERS, apply_patch, apply_patches
from repro.transform.planners import (
    AssignNullPlanner,
    DeadCodePlanner,
    LazyAllocPlanner,
    PlanningContext,
    Transformation,
    default_strategies,
)
from repro.transform.verify import (
    ReferenceRun,
    VerificationResult,
    run_reference,
    verify_revision,
)
from repro.transform.pipeline import (
    CycleReport,
    OptimizationPipeline,
    PipelineResult,
)
from repro.transform.advisor import (
    Advisor,
    AdvisorReport,
    optimize,
    optimize_iteratively,
)

__all__ = [
    "clone_program",
    "clone_node",
    "assign_null_to_local",
    "clear_array_slot_on_remove",
    "remove_dead_allocations",
    "lazy_allocate_field",
    "Patch",
    "PatchOutcome",
    "PlannedSkip",
    "APPLIERS",
    "apply_patch",
    "apply_patches",
    "Transformation",
    "PlanningContext",
    "DeadCodePlanner",
    "LazyAllocPlanner",
    "AssignNullPlanner",
    "default_strategies",
    "ReferenceRun",
    "VerificationResult",
    "run_reference",
    "verify_revision",
    "CycleReport",
    "OptimizationPipeline",
    "PipelineResult",
    "Advisor",
    "AdvisorReport",
    "optimize",
    "optimize_iteratively",
]
