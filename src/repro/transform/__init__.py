"""The three drag-reducing program transformations (§3.3) and the
profile-driven advisor that picks among them (§3.4).

All transformations are source-to-source on the mini-Java AST, each
validated by the Section-5 static analyses before being applied:

* assigning null to a dead reference (local, field, or the vector
  logical-size array-element case),
* dead-code removal of allocations of never-used objects,
* lazy allocation of rarely-used objects.
"""

from repro.transform.rewriter import clone_program, clone_node
from repro.transform.assign_null import (
    assign_null_to_local,
    clear_array_slot_on_remove,
)
from repro.transform.dead_code import remove_dead_allocations
from repro.transform.lazy_alloc import lazy_allocate_field
from repro.transform.advisor import (
    Advisor,
    AdvisorReport,
    optimize,
    optimize_iteratively,
)

__all__ = [
    "clone_program",
    "clone_node",
    "assign_null_to_local",
    "clear_array_slot_on_remove",
    "remove_dead_allocations",
    "lazy_allocate_field",
    "Advisor",
    "AdvisorReport",
    "optimize",
    "optimize_iteratively",
]
