"""The verified optimization pipeline (§3.2's loop, automated).

One :class:`OptimizationPipeline` run is the paper's workflow:

1. **Profile** the program (phase 1 + 2) through the engine facade.
2. **Plan**: each :class:`~repro.transform.planners.Transformation`
   strategy joins the drag ranking with the lint diagnostics
   (DRAG001–003) via the shared
   :class:`~repro.lint.passes.AnalysisContext` and emits structured
   :class:`~repro.transform.patch.Patch` objects.
3. **Schedule** patches by (priority, drag) — dead-code removal first,
   then per-site patches in decreasing measured drag, the §3.4 order.
4. **Apply** each patch purely (:mod:`repro.transform.apply`).
5. **Verify** (``verify=True``): re-run the revised program and demand
   stdout-identical output and non-increasing total drag
   (:mod:`repro.transform.verify`); a failing patch is rolled back,
   recorded, and the pipeline continues with the last accepted AST.
6. **Repeat** until a cycle applies nothing or ``max_cycles`` is hit.

The legacy advisor (:mod:`repro.transform.advisor`) is a thin shim
over one unverified cycle of this pipeline.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence

from repro.errors import TransformError
from repro.core.patterns import LifetimePattern, classify_group
from repro.mjava import ast
from repro.transform.apply import apply_patch
from repro.transform.patch import (
    APPLIED,
    FAILED,
    ROLLED_BACK,
    Patch,
    PatchOutcome,
    PlannedSkip,
    describe_plan,
)
from repro.transform.planners import (
    PlanningContext,
    Transformation,
    default_strategies,
)
from repro.transform.rewriter import clone_program
from repro.transform.verify import ReferenceRun, verify_revision


class CycleReport:
    """Everything one profile→plan→apply(→verify) cycle did.

    ``entries`` holds :class:`PatchOutcome` and :class:`PlannedSkip`
    objects in *planning* order (drag rank), which is also the report
    order the seed advisor used; application order is the scheduler's
    (priority, drag) order.
    """

    def __init__(self, program_ast: ast.Program) -> None:
        self.program_ast = program_ast
        self.entries: List[object] = []
        self.revised: ast.Program = program_ast
        self.drag_before: int = 0
        self.drag_after: Optional[int] = None  # None when verify is off
        self.reference: Optional[ReferenceRun] = None

    # -- views -------------------------------------------------------------

    @property
    def outcomes(self) -> List[PatchOutcome]:
        return [e for e in self.entries if isinstance(e, PatchOutcome)]

    @property
    def skips(self) -> List[PlannedSkip]:
        return [e for e in self.entries if isinstance(e, PlannedSkip)]

    @property
    def patches(self) -> List[Patch]:
        return [o.patch for o in self.outcomes]

    def applied(self) -> List[PatchOutcome]:
        return [o for o in self.outcomes if o.status == APPLIED]

    def rolled_back(self) -> List[PatchOutcome]:
        return [o for o in self.outcomes if o.status == ROLLED_BACK]

    def failed(self) -> List[PatchOutcome]:
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def applied_count(self) -> int:
        return len(self.applied())

    @property
    def drag_saved(self) -> int:
        if self.drag_after is None:
            return 0
        return self.drag_before - self.drag_after

    def describe_plan(self) -> str:
        return describe_plan(self.entries)

    # -- advisor compatibility --------------------------------------------

    def to_advisor_report(self):
        """Project the cycle onto the legacy
        :class:`~repro.transform.advisor.AdvisorReport` shape — one
        :class:`Action` per skip and per patch, with the program-wide
        dead-code patch expanded to one action per never-used site,
        exactly as ``Advisor.run`` reported it."""
        from repro.transform.advisor import Action, AdvisorReport

        report = AdvisorReport()
        for entry in self.entries:
            if isinstance(entry, PlannedSkip):
                report.actions.append(
                    Action(entry.site, entry.pattern, entry.strategy, False, entry.detail)
                )
                continue
            patch = entry.patch
            applied = entry.status == APPLIED
            if patch.kind == "remove-dead-allocations":
                for site in patch.params.get("sites", [patch.site]):
                    report.actions.append(
                        Action(site, LifetimePattern.ALL_NEVER_USED,
                               patch.strategy, applied, entry.detail)
                    )
            else:
                report.actions.append(
                    Action(patch.site, patch.pattern, patch.strategy, applied, entry.detail)
                )
        return report

    def summary(self) -> str:
        return self.to_advisor_report().summary()


class PipelineResult:
    """The fixpoint run: final AST plus one report per cycle."""

    def __init__(self, revised: ast.Program, cycles: List[CycleReport]) -> None:
        self.revised = revised
        self.cycles = cycles

    def applied(self) -> List[PatchOutcome]:
        return [o for cycle in self.cycles for o in cycle.applied()]

    def rolled_back(self) -> List[PatchOutcome]:
        return [o for cycle in self.cycles for o in cycle.rolled_back()]

    def reports(self):
        return [cycle.to_advisor_report() for cycle in self.cycles]

    @property
    def drag_before(self) -> int:
        return self.cycles[0].drag_before if self.cycles else 0

    @property
    def drag_after(self) -> Optional[int]:
        for cycle in reversed(self.cycles):
            if cycle.drag_after is not None:
                return cycle.drag_after
        return None


class OptimizationPipeline:
    """Plan, schedule, apply, and (optionally) verify §3.3 patches."""

    def __init__(
        self,
        program_ast: ast.Program,
        main_class: str,
        args: Optional[List[str]] = None,
        interval_bytes: int = 100 * 1024,
        top: int = 12,
        min_drag_share: float = 0.01,
        max_cycles: int = 1,
        verify: bool = True,
        drag_tolerance: float = 0.0,
        engine: Optional[str] = None,
        strategies: Optional[Sequence[Transformation]] = None,
        extra_patches: Sequence[Patch] = (),
        telemetry=None,
        snapshot: bool = False,
    ) -> None:
        self.program_ast = program_ast
        self.main_class = main_class
        self.args = args or []
        self.interval_bytes = interval_bytes
        self.top = top
        self.min_drag_share = min_drag_share
        self.max_cycles = max_cycles
        self.verify = verify
        self.drag_tolerance = drag_tolerance
        self.engine = engine
        # Optional repro.obs.Telemetry: per-cycle plan/apply/verify
        # spans plus patch-outcome and drag counters.
        self.telemetry = telemetry
        self.strategies = list(strategies) if strategies is not None else default_strategies()
        # Opt-in snapshot mode: capture heap snapshots during the
        # reference profile, attach the dominator analysis to the lint
        # context (enabling DRAG008), and plan dominating-reference
        # cuts. Off by default so the static-only plan stays
        # byte-identical to the Advisor's.
        self.snapshot = snapshot
        if snapshot:
            from repro.transform.planners import RetainerCutPlanner

            if not any(isinstance(s, RetainerCutPlanner) for s in self.strategies):
                self.strategies.append(RetainerCutPlanner())
        # Extra pre-planned patches injected into the first cycle —
        # the rollback tests use this to feed the verifier an unsound
        # rewrite; they are scheduled after the planned patches.
        self.extra_patches = list(extra_patches)

    # -- one cycle ---------------------------------------------------------

    def plan(self, program_ast: Optional[ast.Program] = None) -> CycleReport:
        """Profile and plan without applying (``--dry-run``)."""
        return self.run_cycle(
            program_ast if program_ast is not None else self.program_ast,
            extra_patches=self.extra_patches,
            dry_run=True,
        )

    def run_cycle(
        self,
        program_ast: ast.Program,
        context=None,
        lint=None,
        reference: Optional[ReferenceRun] = None,
        extra_patches: Sequence[Patch] = (),
        dry_run: bool = False,
    ) -> CycleReport:
        """One profile→plan→apply(→verify) cycle over ``program_ast``.

        ``context``/``lint`` let a caller (the advisor shim, the linter)
        share its own analysis artifacts; ``reference`` lets the
        fixpoint loop reuse the previous cycle's accepted verification
        run instead of re-profiling the same AST.
        """
        from repro.core.profiler import profile_program

        telemetry = self.telemetry

        def span(name, **args):
            if telemetry is None:
                return nullcontext()
            return telemetry.span(name, category="optimize", **args)

        if context is None:
            from repro.lint.passes import AnalysisContext

            context = AnalysisContext(program_ast, self.main_class)
        # Snapshot mode profiles *first*: the reference run doubles as
        # the capture run, and its dominator analysis plus drag ranking
        # become lint evidence (DRAG008) before the linter plans.
        if self.snapshot and lint is None and reference is None:
            from repro.snapshot import SnapshotRecorder, analyze_snapshot

            recorder = SnapshotRecorder(telemetry=telemetry)
            with span("optimize.profile"):
                profile = profile_program(
                    context.compiled,
                    self.args,
                    interval_bytes=self.interval_bytes,
                    engine=self.engine,
                    telemetry=telemetry,
                    snapshotter=recorder,
                )
                reference = ReferenceRun.from_profile(profile)
            if recorder.snapshots:
                # Analyze the heap at its fattest: the capture with the
                # most reachable bytes shows retention at its worst.
                peak = max(recorder.snapshots, key=lambda s: s.total_bytes)
                context.snapshot = analyze_snapshot(peak)
                context.drag = reference.analysis
        if lint is None:
            from repro.lint import lint_program

            lint = lint_program(
                program_ast, self.main_class, context=context, telemetry=telemetry
            )
        if reference is None:
            with span("optimize.profile"):
                profile = profile_program(
                    context.compiled,
                    self.args,
                    interval_bytes=self.interval_bytes,
                    engine=self.engine,
                    telemetry=telemetry,
                )
                reference = ReferenceRun.from_profile(profile)
        profile = reference.profile
        analysis = reference.analysis

        report = CycleReport(program_ast)
        report.drag_before = analysis.total_drag
        report.reference = reference

        # -- plan ---------------------------------------------------------
        with span("optimize.plan", drag_before=report.drag_before):
            pctx = PlanningContext(
                program_ast, self.main_class, context, lint, profile, analysis,
                self.interval_bytes, self.top, self.min_drag_share,
            )
            for strategy in self.strategies:
                for entry in strategy.plan_program(pctx):
                    report.entries.append(self._wrap(entry))
            pattern_map = {}
            for strategy in self.strategies:
                for pattern in strategy.patterns:
                    pattern_map.setdefault(pattern, strategy)
            for group in analysis.sorted_nested(self.top):
                if analysis.drag_share(group) < self.min_drag_share:
                    continue
                pattern = classify_group(group, interval_bytes=self.interval_bytes)
                if pattern is LifetimePattern.ALL_NEVER_USED:
                    continue  # the program-wide dead-code patch covers these
                strategy = pattern_map.get(pattern)
                if strategy is None:
                    report.entries.append(
                        PlannedSkip(group.key, pattern, None,
                                    "no transformation for this pattern (§3.4 pattern 4/unclassified)")
                    )
                    continue
                for entry in strategy.plan_group(pctx, group, pattern):
                    report.entries.append(self._wrap(entry))
            for patch in extra_patches:
                report.entries.append(PatchOutcome(patch))

        if dry_run:
            if telemetry is not None:
                for outcome in report.outcomes:
                    telemetry.record_patch("planned")
            report.drag_after = report.drag_before if self.verify else None
            return report

        # -- schedule + apply (+ verify) ----------------------------------
        # Stable sort: priority class first (dead-code removal runs
        # program-wide before per-site patches), then measured drag —
        # which is also the planning order, so report order is stable.
        schedule = sorted(
            report.outcomes, key=lambda o: (o.patch.priority, -o.patch.drag)
        )
        current = clone_program(program_ast)
        for outcome in schedule:
            with span("optimize.apply", kind=outcome.patch.kind):
                try:
                    candidate, detail = apply_patch(current, outcome.patch)
                except TransformError as exc:
                    outcome.status = FAILED
                    outcome.detail = str(exc)
                    candidate = None
            if candidate is None:
                if telemetry is not None:
                    telemetry.record_patch("failed")
                continue
            if not self.verify:
                current = candidate
                outcome.status = APPLIED
                outcome.detail = detail
                if telemetry is not None:
                    telemetry.record_patch("applied")
                continue
            with span("optimize.verify", kind=outcome.patch.kind):
                result, run = verify_revision(
                    reference,
                    candidate,
                    self.main_class,
                    self.args,
                    interval_bytes=self.interval_bytes,
                    engine=self.engine,
                    drag_tolerance=self.drag_tolerance,
                )
            outcome.verification = result
            if result.ok:
                current = candidate
                reference = run
                outcome.status = APPLIED
                outcome.detail = detail
            else:
                outcome.status = ROLLED_BACK
                outcome.detail = f"{detail} [rolled back: {result.detail}]"
            if telemetry is not None:
                telemetry.record_patch(
                    "applied" if result.ok else "rolled_back"
                )

        report.revised = current
        report.reference = reference
        report.drag_after = reference.total_drag if self.verify else None
        if telemetry is not None:
            telemetry.record_cycle(report.drag_before, report.drag_after)
        return report

    @staticmethod
    def _wrap(entry):
        return PatchOutcome(entry) if isinstance(entry, Patch) else entry

    # -- the fixpoint loop -------------------------------------------------

    def run(self) -> PipelineResult:
        """§3.2: repeat the cycle on the revised program until no
        transformation applies (or ``max_cycles``)."""
        current = self.program_ast
        cycles: List[CycleReport] = []
        reference: Optional[ReferenceRun] = None
        telemetry = self.telemetry
        for index in range(self.max_cycles):
            cycle_span = (
                nullcontext()
                if telemetry is None
                else telemetry.span("optimize.cycle", category="optimize", index=index)
            )
            with cycle_span:
                report = self.run_cycle(
                    current,
                    reference=reference,
                    extra_patches=self.extra_patches if index == 0 else (),
                )
            cycles.append(report)
            current = report.revised
            # The accepted verification run already profiles `current`;
            # the next cycle plans from it instead of re-profiling.
            reference = report.reference if self.verify else None
            if not report.applied_count:
                break
        return PipelineResult(current, cycles)
