"""Patch planners: one per §3.3 transformation strategy.

A planner looks at a profile drag group (already classified into a
§3.4 lifetime pattern), joins it with the lint diagnostics that
justify the rewrite (DRAG001 for dead code, DRAG003 for lazy
allocation, DRAG002 for droppable references), and emits
:class:`~repro.transform.patch.Patch` objects — or
:class:`~repro.transform.patch.PlannedSkip` entries naming why the
site was declined. No planner touches the AST: application is
:mod:`repro.transform.apply`'s job, and the decision procedure here is
exactly the seed advisor's (same anchor walk, same lint joins, same
skip messages), so pipeline reports subsume advisor reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.array_liveness import logical_size_pairs
from repro.core.patterns import LifetimePattern
from repro.mjava import ast
from repro.transform.patch import Patch, PlannedSkip

PlanEntry = Union[Patch, PlannedSkip]


class PlanningContext:
    """Everything one planning cycle sees: the program, the shared lint
    :class:`~repro.lint.passes.AnalysisContext`, the lint findings, the
    phase-1 profile and its drag analysis — plus the cross-strategy
    dedup sets (one lazy rewrite per field, one array-clear per class)."""

    __slots__ = (
        "program_ast",
        "main_class",
        "context",
        "lint",
        "profile",
        "analysis",
        "interval_bytes",
        "top",
        "min_drag_share",
        "lazy_done",
        "arrays_done",
        "heap_done",
        "heap_cover",
    )

    def __init__(
        self,
        program_ast: ast.Program,
        main_class: str,
        context,
        lint,
        profile,
        analysis,
        interval_bytes: int,
        top: int,
        min_drag_share: float,
    ) -> None:
        self.program_ast = program_ast
        self.main_class = main_class
        self.context = context
        self.lint = lint
        self.profile = profile
        self.analysis = analysis
        self.interval_bytes = interval_bytes
        self.top = top
        self.min_drag_share = min_drag_share
        self.lazy_done: Set[Tuple[str, str]] = set()
        self.arrays_done: Set[str] = set()
        self.heap_done: Set[Tuple[str, ...]] = set()
        # Allocation-site labels the heap planner's patches pin-release;
        # plan_group uses it to explain pattern-4 coverage.
        self.heap_cover: Set[str] = set()


# -- shared frame/AST helpers (formerly Advisor private methods) ----------


def parse_frame(label: str) -> Tuple[str, str, int]:
    """'Class.method:line' -> (class, method, line)."""
    left, _, line = label.rpartition(":")
    cls, _, method = left.partition(".")
    return cls, method, int(line)


def span_of_frame(label: str):
    from repro.lint.diagnostics import SourceSpan

    try:
        cls, method, line = parse_frame(label)
    except ValueError:
        return None  # e.g. the profiler's "<unknown>" site label
    return SourceSpan(cls, method, line)


def anchor_of(profile, group) -> Optional[str]:
    """The §3.4 anchor allocation site of a drag group."""
    from repro.core.anchor import anchor_site

    return anchor_site(group, profile.program)


def ctor_assigned_field(
    program_ast: ast.Program, class_name: str, line: int
) -> Optional[str]:
    """The field assigned at ``line`` of a constructor (or field
    initializer) of ``class_name``, if any."""
    cls = program_ast.find_class(class_name)
    if cls is None:
        return None
    for ctor in cls.ctors:
        for node in ctor.body.walk():
            if isinstance(node, ast.Assign) and node.pos.line == line:
                if isinstance(node.target, ast.Name):
                    return node.target.ident
                if isinstance(node.target, ast.FieldAccess) and isinstance(
                    node.target.target, ast.This
                ):
                    return node.target.name
    for field in cls.fields:
        if field.pos.line == line and field.init is not None:
            return field.name
    return None


def local_assigned_at(
    program_ast: ast.Program, class_name: str, method_name: str, line: int
) -> Optional[str]:
    """The local variable assigned at ``line`` of a method, if any."""
    cls = program_ast.find_class(class_name)
    if cls is None:
        return None
    for method in cls.methods:
        if method.name != method_name or method.body is None:
            continue
        for node in method.body.walk():
            if node.pos.line != line:
                continue
            if isinstance(node, ast.VarDecl) and node.init is not None:
                return node.name
            if isinstance(node, ast.Assign) and isinstance(node.target, ast.Name):
                local_names = {
                    n.name for n in method.body.walk() if isinstance(n, ast.VarDecl)
                } | {p.name for p in method.params}
                if node.target.ident in local_names:
                    return node.target.ident
    return None


def insertion_lines(compiled, class_name: str, method_name: str, var: str) -> List[int]:
    """Liveness-safe lines after which ``var = null`` may go."""
    from repro.transform.assign_null import null_insertion_candidates

    cls = compiled.classes.get(class_name)
    if cls is None or method_name not in cls.methods:
        return []
    return null_insertion_candidates(cls.methods[method_name], var)


def _refs(diags) -> Tuple[str, ...]:
    return tuple(d.ref for d in diags)


# -- the strategies ---------------------------------------------------------


class Transformation:
    """The planner protocol: ``plan_program`` runs once per cycle
    (program-wide strategies), ``plan_group`` once per drag group whose
    lifetime pattern is in :attr:`patterns`."""

    name = "?"
    patterns: Sequence[LifetimePattern] = ()

    def plan_program(self, pctx: PlanningContext) -> List[PlanEntry]:
        return []

    def plan_group(
        self, pctx: PlanningContext, group, pattern: LifetimePattern
    ) -> List[PlanEntry]:
        return []


class DeadCodePlanner(Transformation):
    """§3.3.2 pattern 1: every never-used site at once, candidates from
    the lint core's interprocedural must-use analysis (DRAG001)."""

    name = "dead-code-removal"
    patterns = ()  # program-wide; ALL_NEVER_USED groups are its evidence

    def plan_program(self, pctx: PlanningContext) -> List[PlanEntry]:
        never_used = pctx.analysis.never_used_sites()
        if not never_used:
            return []
        top_sites = never_used[: pctx.top]
        drag = sum(g.total_drag for g in never_used)
        return [
            Patch(
                strategy=self.name,
                kind="remove-dead-allocations",
                params={
                    "main_class": pctx.main_class,
                    "candidates": pctx.context.interproc.dead,
                    "sites": [g.key for g in top_sites],
                },
                span=span_of_frame(str(top_sites[0].key)),
                site=top_sites[0].key,
                pattern=LifetimePattern.ALL_NEVER_USED,
                drag=drag,
                rationale=(
                    f"{len(never_used)} allocation site(s) whose objects are "
                    "all never used (§2.2 'a sure bet for code rewriting'); "
                    "removal candidates proven by the DRAG001 analyses"
                ),
                diagnostics=_refs(pctx.lint.by_rule("DRAG001")),
                replacement="delete never-used allocating stores and initializers",
                priority=0,  # schedule before per-site patches, as §3.4 does
            )
        ]


class LazyAllocPlanner(Transformation):
    """§3.3.3 pattern 2: constructor-assigned field, lazily allocated
    behind a null-check accessor (gated by a DRAG003 finding)."""

    name = "lazy-allocation"
    patterns = (LifetimePattern.MOSTLY_NEVER_USED,)

    def plan_group(
        self, pctx: PlanningContext, group, pattern: LifetimePattern
    ) -> List[PlanEntry]:
        anchor = anchor_of(pctx.profile, group)
        if anchor is None:
            return [PlannedSkip(group.key, pattern, self.name, "no application anchor frame")]
        cls_name, _method, line = parse_frame(anchor)
        field = ctor_assigned_field(pctx.program_ast, cls_name, line)
        if field is None:
            return [
                PlannedSkip(
                    group.key, pattern, self.name,
                    f"anchor {anchor} is not a ctor field assignment",
                )
            ]
        if (cls_name, field) in pctx.lazy_done:
            return []
        diags = pctx.lint.find("DRAG003", "field", cls_name, field)
        if not diags:
            return [
                PlannedSkip(
                    group.key, pattern, self.name,
                    f"{cls_name}.{field} is not a static lazy-allocation "
                    "candidate (no DRAG003 finding)",
                )
            ]
        pctx.lazy_done.add((cls_name, field))
        return [
            Patch(
                strategy=self.name,
                kind="lazy-alloc-field",
                params={
                    "class_name": cls_name,
                    "field_name": field,
                    "main_class": pctx.main_class,
                },
                span=diags[0].span,
                site=group.key,
                pattern=pattern,
                drag=group.total_drag,
                rationale=(
                    f"anchor {anchor}: mostly-never-used objects held by "
                    f"ctor-assigned field {cls_name}.{field}; DRAG003 proves "
                    "the lazy-allocation preconditions"
                ),
                diagnostics=_refs(diags[:1]),
                replacement=f"reads of {field} go through lazyInit_{field}() null-check accessor",
            )
        ]


class AssignNullPlanner(Transformation):
    """§3.3.1 pattern 3: drop a dead reference — the §5.2 logical-size
    array case first (DRAG002 array findings), else ``v = null`` after a
    liveness-proven last use of the anchor method's local."""

    name = "assign-null"
    patterns = (LifetimePattern.LARGE_DRAG,)

    def plan_group(
        self, pctx: PlanningContext, group, pattern: LifetimePattern
    ) -> List[PlanEntry]:
        # Case A: objects last used inside a class with a verified
        # logical-size (array, count) pair — clear the removed slot.
        table = pctx.context.table
        for use_group in sorted(
            group.partition_by_last_use().values(), key=lambda g: -g.total_drag
        ):
            if use_group.key[1] is None:
                continue
            use_cls, _, _ = parse_frame(use_group.key[1])
            if use_cls in pctx.arrays_done or not table.has(use_cls):
                continue
            diags = pctx.lint.find("DRAG002", "array", use_cls)
            if not diags:
                continue
            pairs = logical_size_pairs(table, use_cls)
            if pairs:
                pctx.arrays_done.add(use_cls)
                return [
                    Patch(
                        strategy=self.name,
                        kind="clear-array-slot",
                        params={"class_name": use_cls, "pairs": pairs},
                        span=diags[0].span,
                        site=group.key,
                        pattern=pattern,
                        drag=group.total_drag,
                        rationale=(
                            f"dragged objects' last use is in {use_cls}, which "
                            f"has verified logical-size pair(s) {pairs} (§5.2 "
                            "array liveness; DRAG002)"
                        ),
                        diagnostics=_refs(diags[:1]),
                        replacement="null the array slot after each logical removal",
                    )
                ]
        # Case B: the allocation is held by a local of the anchor method.
        anchor = anchor_of(pctx.profile, group)
        if anchor is None:
            return [PlannedSkip(group.key, pattern, self.name, "no anchor frame in application code")]
        a_cls, a_method, a_line = parse_frame(anchor)
        var = local_assigned_at(pctx.program_ast, a_cls, a_method, a_line)
        if var is None:
            return [
                PlannedSkip(
                    group.key, pattern, self.name,
                    f"no local variable assigned at {anchor}",
                )
            ]
        candidates = [
            line
            for line in insertion_lines(pctx.profile.program, a_cls, a_method, var)
            if line >= a_line
        ]
        if not candidates:
            return [
                PlannedSkip(
                    group.key, pattern, self.name,
                    f"no liveness-safe nulling point for {var} in {a_cls}.{a_method}",
                )
            ]
        diags = pctx.lint.find("DRAG002", "local", a_cls, a_method, var)
        span = diags[0].span if diags else span_of_frame(anchor)
        return [
            Patch(
                strategy=self.name,
                kind="assign-null-local",
                params={
                    "class_name": a_cls,
                    "method_name": a_method,
                    "var_name": var,
                    # Try the earliest liveness-safe lines in order; the
                    # applier keeps the first whose AST scope also allows it.
                    "lines": tuple(candidates[:5]),
                    "validate": True,
                },
                span=span,
                site=group.key,
                pattern=pattern,
                drag=group.total_drag,
                rationale=(
                    f"anchor {anchor}: large-drag objects held by local "
                    f"{var}; §5.1 liveness proves the slot dead after "
                    f"line(s) {list(candidates[:5])}"
                ),
                diagnostics=_refs(diags[:1]),
                replacement=f"{var} = null;",
            )
        ]


def _field_already_nulled(
    program_ast: ast.Program, class_name: str, method_name: str, var: str, field: str
) -> bool:
    """Does the method already contain ``var.field = null;``? (makes
    re-planning across pipeline cycles idempotent)."""
    cls = program_ast.find_class(class_name)
    if cls is None:
        return False
    bodies = (
        [c.body for c in cls.ctors]
        if method_name == "<init>"
        else [m.body for m in cls.methods if m.name == method_name and m.body is not None]
    )
    for body in bodies:
        for node in body.walk():
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.NullLit)
                and isinstance(node.target, ast.FieldAccess)
                and node.target.name == field
                and isinstance(node.target.target, ast.Name)
                and node.target.target.ident == var
            ):
                return True
    return False


def _field_accessible(
    program_ast: ast.Program, owner_class: str, field: str, from_class: str
) -> bool:
    """Can ``from_class`` legally write ``owner.field``? Mirrors the
    compiler's visibility check: private fields are writable only from
    their declaring class."""
    name = owner_class
    while name:
        cls = program_ast.find_class(name)
        if cls is None:
            return False
        for decl in cls.fields:
            if decl.name == field:
                return decl.mods.visibility != "private" or name == from_class
        name = cls.superclass
    return False


def _side_effect_free_store(program_ast: ast.Program, class_name: str, line: int) -> bool:
    """Is there an assignment at (class, line) whose RHS is safe to
    replace with ``null``: side-effect-free AND non-allocating (so the
    byte clock — and hence every other object's drag — is untouched)?"""
    from repro.transform.apply import _null_safe_rhs

    cls = program_ast.find_class(class_name)
    if cls is None:
        return False
    bodies = [c.body for c in cls.ctors] + [
        m.body for m in cls.methods if m.body is not None
    ]
    for body in bodies:
        for node in body.walk():
            if (
                isinstance(node, ast.Assign)
                and node.pos.line == line
                and not isinstance(node.value, ast.NullLit)
                and _null_safe_rhs(node.value)
            ):
                return True
    return False


class HeapAssignNullPlanner(Transformation):
    """§3.4 pattern 4 via heap liveness: null heap fields / container
    entries whose access paths the access-graph analysis proves dead.

    Unlike the other planners this one is evidence-driven from static
    findings (DRAG006/DRAG007), not from a profile group: the whole
    point of pattern 4 is that per-site drag alone cannot justify a
    rewrite. ``plan_group`` therefore only *explains* HIGH_VARIANCE
    groups (covered or genuinely untransformable); patches come from
    ``plan_program``."""

    name = "heap-assign-null"
    patterns = (LifetimePattern.HIGH_VARIANCE,)

    #: At most this many field-null insertions per program per cycle.
    MAX_FIELD_PATCHES = 3

    def plan_program(self, pctx: PlanningContext) -> List[PlanEntry]:
        if pctx.lint is None:
            return []
        entries: List[PlanEntry] = []
        heap = getattr(pctx.context, "heap_liveness", None)
        if heap is not None and heap.degraded:
            return []
        # -- DRAG007: var.field = null after the container's last use --
        planned = 0
        for diag in pctx.lint.by_rule("DRAG007"):
            if planned >= self.MAX_FIELD_PATCHES:
                break
            ins = diag.extra.get("insertion") or {}
            key = (
                ins.get("class_name"),
                ins.get("method_name"),
                ins.get("var_name"),
                ins.get("field_name"),
            )
            if None in key or key in pctx.heap_done or not ins.get("lines"):
                continue
            owner = ins.get("owner_class")
            if owner is None or not _field_accessible(
                pctx.program_ast, owner, key[3], key[0]
            ):
                pctx.heap_done.add(key)
                continue
            if _field_already_nulled(pctx.program_ast, *key):
                pctx.heap_done.add(key)
                continue
            pctx.heap_done.add(key)
            pctx.heap_cover.update(diag.extra.get("alt_labels", ()))
            cls_name, method_name, var, field = key
            entries.append(
                Patch(
                    strategy=self.name,
                    kind="assign-null-heap-field",
                    params={
                        "class_name": cls_name,
                        "method_name": method_name,
                        "var_name": var,
                        "field_name": field,
                        "lines": tuple(ins.get("lines", ())),
                    },
                    span=diag.span,
                    site=diag.span.label,
                    pattern=LifetimePattern.HIGH_VARIANCE,
                    drag=diag.drag or 0,
                    rationale=(
                        f"heap liveness proves every access path through "
                        f"{var}.{field} dead after line {ins.get('lines', ['?'])[0]} "
                        f"(last use {diag.extra.get('last_use', '<unknown>')}); "
                        "nulling the field releases what it pins (DRAG007)"
                    ),
                    diagnostics=_refs([diag]),
                    replacement=f"{var}.{field} = null;",
                )
            )
            planned += 1
        # -- DRAG006: rewrite dead heap stores to store null -----------
        stores: List[Tuple[str, int]] = []
        store_diags = []
        for diag in pctx.lint.by_rule("DRAG006"):
            cls_name = diag.span.class_name
            line = diag.span.line
            if ("store", cls_name, line) in pctx.heap_done:
                continue
            if not _side_effect_free_store(pctx.program_ast, cls_name, line):
                continue
            pctx.heap_done.add(("store", cls_name, line))
            pctx.heap_cover.update(diag.extra.get("alt_labels", ()))
            stores.append((cls_name, line))
            store_diags.append(diag)
        if stores:
            top = store_diags[0]
            entries.append(
                Patch(
                    strategy=self.name,
                    kind="null-dead-heap-store",
                    params={"stores": tuple(stores)},
                    span=top.span,
                    site=top.span.label,
                    pattern=LifetimePattern.HIGH_VARIANCE,
                    drag=sum(d.drag or 0 for d in store_diags),
                    rationale=(
                        f"{len(stores)} store(s) fill heap path(s) "
                        f"{sorted({d.extra.get('token', '?') for d in store_diags})} "
                        "that no live access path ever reads; storing null "
                        "keeps every side effect and allocation (DRAG006)"
                    ),
                    diagnostics=_refs(store_diags),
                    replacement="store null instead of the (still-evaluated) value",
                )
            )
        return entries

    def plan_group(
        self, pctx: PlanningContext, group, pattern: LifetimePattern
    ) -> List[PlanEntry]:
        covered = sorted(
            {frame for frame in _group_frames(group) if frame in pctx.heap_cover}
        )
        if covered:
            return [
                PlannedSkip(
                    group.key, pattern, self.name,
                    "pattern-4 drag released by heap-level patch(es) "
                    f"covering {', '.join(covered[:3])}",
                )
            ]
        return [
            PlannedSkip(
                group.key, pattern, self.name,
                "high-variance last uses and no dead heap path through "
                "the holder (§3.4 pattern 4: the exact queries cannot be "
                "predicted)",
            )
        ]


class RetainerCutPlanner(Transformation):
    """Snapshot-driven pattern 4: cut the dominating reference.

    Consumes DRAG008 (high-retained-container) findings, which carry
    the same ``insertion`` payload as DRAG007 — so the proven
    ``assign-null-heap-field`` applier does the edit. The evidence is
    *dynamic* (a dominator tree over a captured heap says exactly what
    the cut releases) rather than a static liveness proof, so these
    patches lean entirely on differential verification: stdout must be
    identical and drag non-increasing, or the pipeline rolls back.

    Not part of :func:`default_strategies` — the pipeline appends it
    only when snapshot capture is enabled (``snapshot=True``), keeping
    the static-only plan byte-identical to the Advisor's.
    """

    name = "retainer-cut"
    patterns = (LifetimePattern.HIGH_VARIANCE,)

    #: At most this many dominating-reference cuts per program per cycle.
    MAX_CUT_PATCHES = 3

    def plan_program(self, pctx: PlanningContext) -> List[PlanEntry]:
        if pctx.lint is None:
            return []
        entries: List[PlanEntry] = []
        planned = 0
        for diag in pctx.lint.by_rule("DRAG008"):
            if planned >= self.MAX_CUT_PATCHES:
                break
            ins = diag.extra.get("insertion") or {}
            key = (
                ins.get("class_name"),
                ins.get("method_name"),
                ins.get("var_name"),
                ins.get("field_name"),
            )
            if None in key or key in pctx.heap_done or not ins.get("lines"):
                continue
            owner = ins.get("owner_class")
            if owner is None or not _field_accessible(
                pctx.program_ast, owner, key[3], key[0]
            ):
                pctx.heap_done.add(key)
                continue
            if _field_already_nulled(pctx.program_ast, *key):
                pctx.heap_done.add(key)
                continue
            pctx.heap_done.add(key)
            cls_name, method_name, var, field = key
            retained = diag.extra.get("retained_bytes", 0)
            share = diag.extra.get("retained_share", 0.0)
            entries.append(
                Patch(
                    strategy=self.name,
                    kind="assign-null-heap-field",
                    params={
                        "class_name": cls_name,
                        "method_name": method_name,
                        "var_name": var,
                        "field_name": field,
                        "lines": tuple(ins.get("lines", ())),
                    },
                    span=diag.span,
                    site=diag.span.label,
                    pattern=LifetimePattern.HIGH_VARIANCE,
                    drag=diag.drag or 0,
                    rationale=(
                        f"snapshot dominator tree: {owner}.{field} retains "
                        f"{retained} bytes ({100.0 * share:.1f}% of the "
                        f"reachable heap) past {var}'s last use; cutting the "
                        "dominating reference releases the subtree (DRAG008, "
                        "differentially verified)"
                    ),
                    diagnostics=_refs([diag]),
                    replacement=f"{var}.{field} = null;",
                )
            )
            planned += 1
        return entries


def _group_frames(group) -> Tuple[str, ...]:
    key = group.key
    if isinstance(key, tuple):
        out = []
        for part in key:
            if isinstance(part, tuple):
                out.extend(str(p) for p in part)
            else:
                out.append(str(part))
        return tuple(out)
    return (str(key),)


def default_strategies() -> List[Transformation]:
    return [DeadCodePlanner(), LazyAllocPlanner(), AssignNullPlanner(), HeapAssignNullPlanner()]
