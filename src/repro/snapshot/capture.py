"""Heap snapshot capture at deep-GC safepoints.

The capture pass runs right after a deep GC — the only moments the
heap is exactly its reachable set (§2.1.1's collect-finalize-collect
makes even finalizable garbage gone) — and walks roots + heap with an
explicit worklist, MoarVM-style: every object gets a dense node index
on first sight, edges record the *reference that holds it* (field
name, array slot, or labeled root), and node 0 is a synthetic
super-root so dominator analysis has a single entry.

Capture only reads the heap. It never allocates VM objects, never
advances the byte clock, and never touches trailers, so a profile with
snapshots enabled is bit-identical to one without (the overhead bench
holds the instr/sec cost ≤10% on db).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.runtime.objects import ArrayObject, HeapObject, Instance
from repro.snapshot.codec import (
    FLAG_EXCLUDED,
    FLAG_SYNTHETIC,
    HeapSnapshot,
    SnapshotNode,
    SnapshotWriter,
)

#: Edge label for array-element references (one table entry per file,
#: not one per index — capture stays O(edges), not O(distinct labels)).
ARRAY_EDGE_LABEL = "[]"

ROOT_TYPE = "<root>"


def _iter_labeled_roots(interp) -> Iterator[Tuple[str, HeapObject]]:
    """The GC root set with provenance labels — the same sources (and
    the same liveness gating) as ``Interpreter.iter_roots`` plus the
    collector's temp roots and finalize queue, i.e. everything the mark
    phase starts from."""
    for frame in interp.frames:
        label = f"local {frame.method.qualified_name}"
        if not interp.liveness_roots or frame.method.is_native:
            for value in frame.iter_refs():
                yield label, value
            continue
        live = interp._method_liveness(frame.method)
        live_slots = live.live_slots_at(frame.pc)
        keep_this = 0 if frame.method.is_static else 1
        for slot, value in enumerate(frame.locals):
            if isinstance(value, HeapObject) and (slot < keep_this or slot in live_slots):
                yield label, value
        for value in frame.stack:
            if isinstance(value, HeapObject):
                yield label, value
    for cls_name, values in interp.statics.items():
        for field, value in values.items():
            if isinstance(value, HeapObject):
                yield f"static {cls_name}.{field}", value
    for value in interp.heap.interned.values():
        yield "interned", value
    for value in interp.heap.temp_roots:
        yield "temp", value
    for value in getattr(interp.collector, "finalize_queue", ()):
        yield "finalize-queue", value


def capture_snapshot(interp, reason: str = "deep-gc") -> HeapSnapshot:
    """Walk the heap of ``interp`` into a :class:`HeapSnapshot`."""
    program = interp.program
    site_labels: Dict[int, str] = {}

    def site_of(obj: HeapObject) -> Optional[str]:
        trailer = obj.trailer
        if trailer is None or trailer.alloc_site is None:
            return None
        site = trailer.alloc_site
        label = site_labels.get(site)
        if label is None:
            label = site_labels[site] = program.site(site).label
        return label

    snapshot = HeapSnapshot(interp.heap.clock, reason)
    root = SnapshotNode(ROOT_TYPE, None, 0, FLAG_SYNTHETIC)
    snapshot.nodes.append(root)
    index: Dict[int, int] = {}  # object handle -> node index
    worklist: List[HeapObject] = []

    def visit(obj: HeapObject) -> int:
        node_index = index.get(obj.handle)
        if node_index is None:
            node_index = index[obj.handle] = len(snapshot.nodes)
            snapshot.nodes.append(
                SnapshotNode(
                    obj.type_name(),
                    site_of(obj),
                    obj.size,
                    FLAG_EXCLUDED if obj.excluded else 0,
                )
            )
            worklist.append(obj)
        return node_index

    seen_roots = set()
    for label, obj in _iter_labeled_roots(interp):
        key = (label, obj.handle)
        if key in seen_roots:
            continue
        seen_roots.add(key)
        root.edges.append((visit(obj), label))

    while worklist:
        obj = worklist.pop()
        node = snapshot.nodes[index[obj.handle]]
        if isinstance(obj, Instance):
            for field, value in obj.fields.items():
                if isinstance(value, HeapObject):
                    node.edges.append((visit(value), field))
        elif isinstance(obj, ArrayObject):
            if obj.elem_desc == "ref":
                for value in obj.data:
                    if isinstance(value, HeapObject):
                        node.edges.append((visit(value), ARRAY_EDGE_LABEL))
    return snapshot


class SnapshotRecorder:
    """The profiler's snapshot hook: captures at each deep-GC safepoint
    and buffers in memory and/or streams to a :class:`SnapshotWriter`.

    Pass one as ``snapshotter=`` to :class:`~repro.core.profiler
    .HeapProfiler` (or through ``profile_program``): ``capture`` fires
    right after the interval deep GC in ``take_sample`` and after the
    final deep GC in ``on_program_end``. ``telemetry`` (or None, the
    zero-cost convention) wraps each capture in a ``snapshot.capture``
    span and feeds the ``repro_snapshot_*`` metrics.
    """

    def __init__(
        self,
        out: Union[str, "SnapshotWriter", None] = None,
        metadata: Optional[dict] = None,
        buffered: Optional[bool] = None,
        telemetry=None,
    ) -> None:
        if out is None or isinstance(out, SnapshotWriter):
            self.writer: Optional[SnapshotWriter] = out
            self._owns_writer = False
        else:
            self.writer = SnapshotWriter(out, metadata=metadata)
            self._owns_writer = True
        # Mirror the profiler's sink/buffer convention: with a writer
        # attached, snapshots stream out and are not kept in memory
        # unless buffered=True is passed explicitly.
        self.buffered = buffered if buffered is not None else (self.writer is None)
        self.telemetry = telemetry
        self.snapshots: List[HeapSnapshot] = []
        self.capture_count = 0
        self.node_count = 0
        self.edge_count = 0

    def capture(self, interp, reason: str = "deep-gc") -> HeapSnapshot:
        telemetry = self.telemetry
        if telemetry is None:
            snapshot = capture_snapshot(interp, reason)
        else:
            started = perf_counter()
            with telemetry.span("snapshot.capture", category="snapshot", reason=reason):
                snapshot = capture_snapshot(interp, reason)
            telemetry.record_snapshot(
                snapshot.node_count, snapshot.edge_count, perf_counter() - started
            )
        self.capture_count += 1
        self.node_count += snapshot.node_count
        self.edge_count += snapshot.edge_count
        if self.buffered:
            self.snapshots.append(snapshot)
        if self.writer is not None:
            self.writer.write(snapshot)
        return snapshot

    def close(self) -> None:
        if self._owns_writer and self.writer is not None:
            self.writer.close()

    @property
    def latest(self) -> Optional[HeapSnapshot]:
        return self.snapshots[-1] if self.snapshots else None
