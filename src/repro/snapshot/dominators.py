"""Immediate dominators and retained sizes over a heap graph.

The algorithm is Cooper–Harvey–Kennedy's iterative scheme ("A Simple,
Fast Dominance Algorithm"): process nodes in reverse postorder,
intersecting the dominator chains of each node's processed
predecessors until a fixpoint. On the near-tree-shaped graphs heap
snapshots produce it converges in one or two sweeps and needs no
auxiliary forest, which is why it wins here over Lengauer–Tarjan.

Retained size of ``v`` (the Memory-Analyzer notion): the bytes that
would become unreachable if ``v`` were removed — exactly the sum of
sizes over ``v``'s dominator-tree subtree. Because every immediate
dominator precedes its node in reverse postorder, one reverse sweep
accumulates all retained sizes in O(N).

``tests/snapshot/test_dominators.py`` pins both against the definition
directly: a naive remove-node-and-recount reachability oracle on
randomized graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def reverse_postorder(succ: Sequence[Sequence[int]], root: int = 0) -> List[int]:
    """RPO over the nodes reachable from ``root`` (iterative DFS)."""
    n = len(succ)
    visited = [False] * n
    post: List[int] = []
    # Each stack entry is (node, iterator position) — explicit so deep
    # heap chains (linked lists) don't hit the recursion limit.
    stack: List[List[int]] = [[root, 0]]
    visited[root] = True
    while stack:
        node, i = stack[-1]
        if i < len(succ[node]):
            stack[-1][1] += 1
            child = succ[node][i]
            if not visited[child]:
                visited[child] = True
                stack.append([child, 0])
        else:
            stack.pop()
            post.append(node)
    post.reverse()
    return post


def immediate_dominators(
    succ: Sequence[Sequence[int]], root: int = 0
) -> List[Optional[int]]:
    """``idom[v]`` for every node; ``idom[root] == root``; unreachable
    nodes get ``None``."""
    n = len(succ)
    order = reverse_postorder(succ, root)
    index: Dict[int, int] = {node: i for i, node in enumerate(order)}
    preds: List[List[int]] = [[] for _ in range(n)]
    for src in order:
        for dst in succ[src]:
            if dst in index:
                preds[dst].append(src)
    idom: List[Optional[int]] = [None] * n
    idom[root] = root

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            new_idom: Optional[int] = None
            for pred in preds[node]:
                if idom[pred] is None:
                    continue
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def retained_sizes(
    sizes: Sequence[int],
    idom: Sequence[Optional[int]],
    order: Sequence[int],
    root: int = 0,
) -> List[int]:
    """Per-node retained bytes: own size plus everything dominated.

    ``order`` must be the reverse postorder the idoms were computed
    over; sweeping it backwards visits every node before its immediate
    dominator, so each subtree total is final when it is added to its
    parent. Unreachable nodes retain exactly their own size.
    """
    retained = list(sizes)
    for node in reversed(order):
        if node == root:
            continue
        dom = idom[node]
        if dom is not None:
            retained[dom] += retained[node]
    return retained


class DominatorTree:
    """Dominator structure of one heap graph: idoms, children lists,
    retained sizes, and subtree iteration."""

    __slots__ = ("succ", "root", "order", "idom", "retained", "children")

    def __init__(self, succ: Sequence[Sequence[int]], sizes: Sequence[int], root: int = 0) -> None:
        self.succ = succ
        self.root = root
        self.order = reverse_postorder(succ, root)
        self.idom = immediate_dominators(succ, root)
        self.retained = retained_sizes(sizes, self.idom, self.order, root)
        self.children: List[List[int]] = [[] for _ in range(len(succ))]
        for node in self.order:
            if node == self.root:
                continue
            dom = self.idom[node]
            if dom is not None:
                self.children[dom].append(node)

    def reachable(self, node: int) -> bool:
        return self.idom[node] is not None

    def subtree(self, node: int) -> List[int]:
        """``node`` plus everything it dominates (DFS preorder)."""
        out: List[int] = []
        stack = [node]
        while stack:
            v = stack.pop()
            out.append(v)
            stack.extend(reversed(self.children[v]))
        return out

    def dominator_chain(self, node: int) -> List[int]:
        """``node``, its idom, ... up to (and including) the root."""
        chain = [node]
        while node != self.root:
            dom = self.idom[node]
            if dom is None:
                break
            chain.append(dom)
            node = dom
        return chain
