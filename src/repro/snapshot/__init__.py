"""Heap snapshots: capture at deep-GC safepoints, dominator-tree
retained sizes, retainer chains, and drag correlation (DESIGN.md §15)."""

from repro.snapshot.analyze import (
    SnapshotAnalysis,
    analyze_snapshot,
    snapshot_diff_report,
    snapshot_report,
    snapshot_summary,
)
from repro.snapshot.capture import SnapshotRecorder, capture_snapshot
from repro.snapshot.codec import (
    HeapSnapshot,
    SnapshotError,
    SnapshotFile,
    SnapshotNode,
    SnapshotWriter,
    read_snapshots,
    write_snapshots,
)
from repro.snapshot.dominators import (
    DominatorTree,
    immediate_dominators,
    retained_sizes,
    reverse_postorder,
)

__all__ = [
    "DominatorTree",
    "HeapSnapshot",
    "SnapshotAnalysis",
    "SnapshotError",
    "SnapshotFile",
    "SnapshotNode",
    "SnapshotRecorder",
    "SnapshotWriter",
    "analyze_snapshot",
    "capture_snapshot",
    "immediate_dominators",
    "read_snapshots",
    "retained_sizes",
    "reverse_postorder",
    "snapshot_diff_report",
    "snapshot_report",
    "snapshot_summary",
    "write_snapshots",
]
