"""The compact heap-snapshot codec: length-prefixed binary frames.

Layout (modeled on the v2 drag-log codec, and on MoarVM's heap
snapshot format — one shared string table, worklist-ordered
collectables)::

    MAGIC "RHS1"  VERSION(1 byte)  uvarint(len)  header-JSON
    frame*                 # type byte, uvarint(len), payload
    [END frame]            # snapshot count, at close

Frame types: ``STRING`` interns one UTF-8 string into the *file-wide*
table (ids sequential in order of appearance — type names, site
labels, field labels and root labels repeat heavily across the
snapshots of one run, so later snapshots are mostly varint-packed
integers); ``SNAP`` opens one snapshot (byte-clock time + capture
reason); ``NODE`` is one heap node with its out-edges inline (edges
name *forward* node indices — the capture pass finishes its worklist
traversal before serializing, so indices are dense and final);
``ENDSNAP`` closes a snapshot with node/edge/byte totals (the reader's
consistency check); ``END`` closes the file.

All integers are unsigned LEB128 varints. Every frame is
length-prefixed, so a reader can detect a truncated tail (crashed or
still-writing run) and, in non-strict mode, keep every snapshot whose
``ENDSNAP`` frame arrived and simply drop the torn one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.stream.codec import _read_uvarint, _write_uvarint

MAGIC = b"RHS1"
VERSION = 1

FRAME_STRING = 0x01
FRAME_SNAP = 0x02
FRAME_NODE = 0x03
FRAME_ENDSNAP = 0x04
FRAME_END = 0x05

# Node flag bits.
FLAG_EXCLUDED = 0x01   # Class objects / interned constant-pool strings
FLAG_SYNTHETIC = 0x02  # the super-root (index 0), not a heap object


class SnapshotError(ReproError):
    """Corrupt or truncated snapshot file (strict mode only)."""


class SnapshotNode:
    """One heap node: identity-free, index-addressed within a snapshot.

    ``edges`` are ``(dst_index, label)`` pairs — label is a field name
    for instance references, ``"[]"`` for array elements, and a root
    kind (``"static Cls.field"``, ``"local Cls.method"``, ...) on the
    super-root's outgoing edges.
    """

    __slots__ = ("type_name", "site_label", "size", "flags", "edges")

    def __init__(
        self,
        type_name: str,
        site_label: Optional[str],
        size: int,
        flags: int = 0,
        edges: Optional[List[Tuple[int, Optional[str]]]] = None,
    ) -> None:
        self.type_name = type_name
        self.site_label = site_label
        self.size = size
        self.flags = flags
        self.edges: List[Tuple[int, Optional[str]]] = edges if edges is not None else []

    @property
    def excluded(self) -> bool:
        return bool(self.flags & FLAG_EXCLUDED)

    @property
    def synthetic(self) -> bool:
        return bool(self.flags & FLAG_SYNTHETIC)

    def __repr__(self) -> str:
        return (
            f"<node {self.type_name} size={self.size} "
            f"edges={len(self.edges)} site={self.site_label}>"
        )


class HeapSnapshot:
    """One captured heap graph. ``nodes[0]`` is always the synthetic
    super-root whose labeled edges are the GC roots."""

    __slots__ = ("clock", "reason", "nodes")

    def __init__(self, clock: int, reason: str, nodes: Optional[List[SnapshotNode]] = None) -> None:
        self.clock = clock
        self.reason = reason
        self.nodes: List[SnapshotNode] = nodes if nodes is not None else []

    @property
    def root(self) -> SnapshotNode:
        return self.nodes[0]

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(n.edges) for n in self.nodes)

    @property
    def total_bytes(self) -> int:
        """Reachable heap bytes (the super-root weighs nothing)."""
        return sum(n.size for n in self.nodes)

    def __repr__(self) -> str:
        return (
            f"<snapshot t={self.clock} reason={self.reason} "
            f"nodes={self.node_count} edges={self.edge_count}>"
        )


class SnapshotWriter:
    """Stream snapshots into ``out`` (a path or binary file object).

    The string table is file-scoped and written lazily: an id is
    emitted the first time a string appears, so re-serializing a parsed
    file reproduces the original bytes exactly (the round-trip
    bit-identity the tests pin).
    """

    def __init__(self, out: Union[str, Path, IO[bytes]], metadata: Optional[dict] = None) -> None:
        if hasattr(out, "write"):
            self._file: IO[bytes] = out  # type: ignore[assignment]
            self._owns = False
        else:
            self._file = open(out, "wb")
            self._owns = True
        self.metadata = metadata
        self.count = 0
        self._strings: Dict[str, int] = {}
        self._closed = False
        header = {"format": "repro-heap-snapshot", "version": VERSION}
        if metadata:
            header["metadata"] = metadata
        payload = json.dumps(header).encode("utf-8")
        prefix = bytearray()
        prefix += MAGIC
        prefix.append(VERSION)
        _write_uvarint(prefix, len(payload))
        self._file.write(bytes(prefix) + payload)

    # -- frame plumbing ---------------------------------------------------

    def _frame(self, frame_type: int, payload: bytes) -> None:
        buf = bytearray()
        buf.append(frame_type)
        _write_uvarint(buf, len(payload))
        self._file.write(bytes(buf) + payload)

    def _intern(self, value: str) -> int:
        index = self._strings.get(value)
        if index is None:
            index = self._strings[value] = len(self._strings)
            self._frame(FRAME_STRING, value.encode("utf-8"))
        return index

    def _opt(self, value: Optional[str]) -> int:
        """Optional string -> id+1 (0 means absent)."""
        return 0 if value is None else self._intern(value) + 1

    # -- public API -------------------------------------------------------

    def write(self, snapshot: HeapSnapshot) -> None:
        head = bytearray()
        _write_uvarint(head, snapshot.clock)
        _write_uvarint(head, self._intern(snapshot.reason))
        self._frame(FRAME_SNAP, bytes(head))
        edges = 0
        for node in snapshot.nodes:
            buf = bytearray()
            _write_uvarint(buf, self._intern(node.type_name))
            _write_uvarint(buf, self._opt(node.site_label))
            _write_uvarint(buf, node.size)
            _write_uvarint(buf, node.flags)
            _write_uvarint(buf, len(node.edges))
            for dst, label in node.edges:
                _write_uvarint(buf, dst)
                _write_uvarint(buf, self._opt(label))
            edges += len(node.edges)
            self._frame(FRAME_NODE, bytes(buf))
        tail = bytearray()
        _write_uvarint(tail, snapshot.node_count)
        _write_uvarint(tail, edges)
        _write_uvarint(tail, snapshot.total_bytes)
        self._frame(FRAME_ENDSNAP, bytes(tail))
        self.count += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        buf = bytearray()
        _write_uvarint(buf, self.count)
        self._frame(FRAME_END, bytes(buf))
        if self._owns:
            self._file.close()

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SnapshotFile:
    """A parsed snapshot file."""

    __slots__ = ("header", "snapshots", "truncated", "complete")

    def __init__(self, header: dict, snapshots: List[HeapSnapshot], truncated: bool, complete: bool) -> None:
        self.header = header
        self.snapshots = snapshots
        self.truncated = truncated
        self.complete = complete  # END frame seen with a matching count

    @property
    def metadata(self) -> dict:
        return self.header.get("metadata", {})

    @property
    def latest(self) -> Optional[HeapSnapshot]:
        return self.snapshots[-1] if self.snapshots else None


def write_snapshots(
    path: Union[str, Path],
    snapshots: List[HeapSnapshot],
    metadata: Optional[dict] = None,
) -> None:
    with SnapshotWriter(path, metadata=metadata) as writer:
        for snapshot in snapshots:
            writer.write(snapshot)


def read_snapshots(path: Union[str, Path], strict: bool = False) -> SnapshotFile:
    """Parse a snapshot file.

    ``strict=False`` (the default, matching the v2 log reader): a
    truncated tail keeps every complete snapshot and flags
    ``truncated``; ``strict=True`` raises :class:`SnapshotError`.
    """
    with open(path, "rb") as f:
        data = f.read()
    if data[: len(MAGIC)] != MAGIC:
        raise SnapshotError(f"{path}: not a heap snapshot file (bad magic)")
    version = data[len(MAGIC)]
    if version != VERSION:
        raise SnapshotError(f"{path}: unsupported snapshot version {version}")
    pos = len(MAGIC) + 1
    try:
        header_len, pos = _read_uvarint(data, pos)
        header = json.loads(data[pos : pos + header_len].decode("utf-8"))
        pos += header_len
    except (IndexError, ValueError) as exc:
        raise SnapshotError(f"{path}: corrupt header: {exc}")

    strings: List[str] = []
    snapshots: List[HeapSnapshot] = []
    current: Optional[HeapSnapshot] = None
    truncated = False
    complete = False

    def opt(index: int) -> Optional[str]:
        return None if index == 0 else strings[index - 1]

    try:
        while pos < len(data):
            frame_type = data[pos]
            pos += 1
            length, pos = _read_uvarint(data, pos)
            if pos + length > len(data):
                raise IndexError("truncated frame payload")
            payload = data[pos : pos + length]
            pos += length
            if frame_type == FRAME_STRING:
                strings.append(payload.decode("utf-8"))
            elif frame_type == FRAME_SNAP:
                clock, p = _read_uvarint(payload, 0)
                reason_id, p = _read_uvarint(payload, p)
                current = HeapSnapshot(clock, strings[reason_id])
            elif frame_type == FRAME_NODE:
                if current is None:
                    raise SnapshotError(f"{path}: NODE frame outside a snapshot")
                type_id, p = _read_uvarint(payload, 0)
                site_id, p = _read_uvarint(payload, p)
                size, p = _read_uvarint(payload, p)
                flags, p = _read_uvarint(payload, p)
                n_edges, p = _read_uvarint(payload, p)
                edges: List[Tuple[int, Optional[str]]] = []
                for _ in range(n_edges):
                    dst, p = _read_uvarint(payload, p)
                    label_id, p = _read_uvarint(payload, p)
                    edges.append((dst, opt(label_id)))
                current.nodes.append(
                    SnapshotNode(strings[type_id], opt(site_id), size, flags, edges)
                )
            elif frame_type == FRAME_ENDSNAP:
                if current is None:
                    raise SnapshotError(f"{path}: ENDSNAP frame outside a snapshot")
                n_nodes, p = _read_uvarint(payload, 0)
                n_edges, p = _read_uvarint(payload, p)
                n_bytes, p = _read_uvarint(payload, p)
                if (
                    n_nodes != current.node_count
                    or n_edges != current.edge_count
                    or n_bytes != current.total_bytes
                ):
                    raise SnapshotError(
                        f"{path}: snapshot totals mismatch "
                        f"(declared {n_nodes}/{n_edges}/{n_bytes}B, "
                        f"parsed {current.node_count}/{current.edge_count}/"
                        f"{current.total_bytes}B)"
                    )
                snapshots.append(current)
                current = None
            elif frame_type == FRAME_END:
                declared, _p = _read_uvarint(payload, 0)
                if declared != len(snapshots):
                    raise SnapshotError(
                        f"{path}: END declares {declared} snapshot(s), parsed {len(snapshots)}"
                    )
                complete = True
                break
            else:
                raise SnapshotError(f"{path}: unknown frame type 0x{frame_type:02x}")
    except IndexError:
        # A frame (or a varint inside one) ran off the end of the file:
        # the writer died mid-frame. Keep the complete snapshots.
        if strict:
            raise SnapshotError(f"{path}: truncated snapshot file")
        truncated = True
    if current is not None:
        # SNAP opened but ENDSNAP never arrived — a torn snapshot.
        if strict:
            raise SnapshotError(f"{path}: torn snapshot (no ENDSNAP)")
        truncated = True
    if not complete:
        if strict:
            raise SnapshotError(f"{path}: missing END frame")
        truncated = True
    return SnapshotFile(header, snapshots, truncated, complete)
