"""Snapshot analysis: who keeps dragged objects alive, and at what cost.

Built on the dominator tree of one :class:`HeapSnapshot`:

* **retained size** per node — the bytes released if that one
  reference chain were cut (dominator-subtree sum);
* **per-site retained** — object-centric attribution (DJXPerf-style):
  each allocation site's objects summed by what they *retain*, not
  just what they weigh;
* **retainer chains** — the shortest root-to-node reference path,
  naming each field/root that pins the node;
* **dominating reference** — the single edge ``owner.field -> node``
  (when one exists from the immediate dominator) whose cut provably
  releases the whole retained subtree: the evidence DRAG008 and the
  RetainerCutPlanner act on.

Joining a :class:`~repro.core.analyzer.DragAnalysis` against the
subtree site sets answers the paper's pattern-4 question directly:
*this* container retains *those* dragged allocation sites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.snapshot.codec import HeapSnapshot, SnapshotFile, SnapshotNode
from repro.snapshot.dominators import DominatorTree


class SnapshotAnalysis:
    """Dominator-tree view of one snapshot."""

    def __init__(self, snapshot: HeapSnapshot) -> None:
        self.snapshot = snapshot
        nodes = snapshot.nodes
        succ: List[List[int]] = [[dst for dst, _label in n.edges] for n in nodes]
        sizes = [n.size for n in nodes]
        self.tree = DominatorTree(succ, sizes)
        self.retained = self.tree.retained

    # -- basic queries -----------------------------------------------------

    @property
    def nodes(self) -> List[SnapshotNode]:
        return self.snapshot.nodes

    @property
    def total_reachable_bytes(self) -> int:
        """Everything the root retains == reachable heap bytes."""
        return self.retained[0]

    def retained_share(self, node: int) -> float:
        total = self.total_reachable_bytes
        return self.retained[node] / total if total > 0 else 0.0

    def top_retained(self, limit: int = 10, min_edges: int = 0) -> List[int]:
        """Node indices by retained size, heaviest first (root and
        excluded nodes skipped; ``min_edges`` filters for containers)."""
        candidates = [
            i
            for i, node in enumerate(self.nodes)
            if i != 0 and not node.excluded and len(node.edges) >= min_edges
        ]
        candidates.sort(key=lambda i: (-self.retained[i], i))
        return candidates[:limit]

    def retained_by_site(self) -> Dict[str, int]:
        """Per-allocation-site retained bytes (sum over the site's
        objects; nested objects of the same site count toward their
        outermost dominator, like any per-class retained report)."""
        out: Dict[str, int] = {}
        for i, node in enumerate(self.nodes):
            if i == 0 or node.site_label is None:
                continue
            dom = self.tree.idom[i]
            if dom is None:
                continue
            # Skip nodes dominated by a same-site node: the parent's
            # retained size already includes this subtree.
            if self.nodes[dom].site_label == node.site_label:
                continue
            out[node.site_label] = out.get(node.site_label, 0) + self.retained[i]
        return out

    def dominated_site_bytes(self, node: int) -> Dict[str, int]:
        """Bytes per allocation site over ``node``'s *strict*
        dominator subtree: the sites whose objects this node pins."""
        out: Dict[str, int] = {}
        for v in self.tree.subtree(node):
            if v == node:
                continue
            label = self.nodes[v].site_label
            if label is not None:
                out[label] = out.get(label, 0) + self.nodes[v].size
        return out

    # -- retainer chains ---------------------------------------------------

    def path_from_root(self, node: int) -> List[Tuple[int, Optional[str]]]:
        """Shortest reference path root→node as ``(node_index, label
        of the edge entering it)`` pairs, excluding the root itself."""
        if node == 0:
            return []
        prev: Dict[int, Tuple[int, Optional[str]]] = {0: (-1, None)}
        queue = [0]
        head = 0
        while head < len(queue):
            src = queue[head]
            head += 1
            for dst, label in self.nodes[src].edges:
                if dst not in prev:
                    prev[dst] = (src, label)
                    if dst == node:
                        queue = []
                        break
                    queue.append(dst)
            else:
                continue
            break
        if node not in prev:
            return []
        path: List[Tuple[int, Optional[str]]] = []
        at = node
        while at != 0:
            src, label = prev[at]
            path.append((at, label))
            at = src
        path.reverse()
        return path

    def retainer_chain(self, node: int) -> str:
        """Human-readable chain: ``<root> --local Db.main--> Database
        --records--> Vector``."""
        parts = ["<root>"]
        for at, label in self.path_from_root(node):
            parts.append(f"--{label or '?'}--> {self.nodes[at].type_name}")
        return " ".join(parts)

    def dominating_reference(self, node: int) -> Optional[Tuple[int, str]]:
        """``(owner_index, edge_label)`` when the immediate dominator
        holds a *direct labeled* reference to ``node`` — the one
        reference whose cut releases the whole retained subtree."""
        dom = self.tree.idom[node]
        if dom is None or dom == node:
            return None
        for dst, label in self.nodes[dom].edges:
            if dst == node and label is not None:
                return dom, label
        return None

    # -- drag correlation --------------------------------------------------

    def pinned_drag_sites(self, node: int, drag_analysis) -> List[Tuple[str, float, int]]:
        """Sites this node retains that the profile measured drag at:
        ``(site_label, est_drag, retained_bytes_here)``, heaviest drag
        first. ``drag_analysis`` is a
        :class:`~repro.core.analyzer.DragAnalysis`."""
        own = self.nodes[node].site_label
        out: List[Tuple[str, float, int]] = []
        for label, pinned_bytes in self.dominated_site_bytes(node).items():
            if label == own:
                continue
            group = drag_analysis.by_site.get(label)
            if group is not None and group.est_drag > 0:
                out.append((label, group.est_drag, pinned_bytes))
        out.sort(key=lambda row: (-row[1], row[0]))
        return out


def analyze_snapshot(snapshot: HeapSnapshot) -> SnapshotAnalysis:
    return SnapshotAnalysis(snapshot)


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------


def _kb(n: int) -> str:
    return f"{n / 1024:.1f}KB"


def snapshot_report(
    source, drag_analysis=None, top: int = 10, which: int = -1
) -> str:
    """Text report over one snapshot of a parsed file (or a bare
    :class:`HeapSnapshot`): top retainers by dominator-tree retained
    size, their chains, and (with a drag analysis) the dragged sites
    each one pins."""
    if isinstance(source, SnapshotFile):
        if not source.snapshots:
            return "(no complete snapshots)"
        snapshot = source.snapshots[which]
        suffix = f" [{len(source.snapshots)} snapshot(s) in file" + (
            ", truncated tail]" if source.truncated else "]"
        )
    else:
        snapshot = source
        suffix = ""
    analysis = SnapshotAnalysis(snapshot)
    lines = [
        "=== Heap snapshot ===",
        (
            f"t={snapshot.clock}B reason={snapshot.reason} "
            f"nodes={snapshot.node_count} edges={snapshot.edge_count} "
            f"reachable={_kb(analysis.total_reachable_bytes)}{suffix}"
        ),
        "",
        f"--- top {top} retainers by retained size ---",
    ]
    for rank, node_index in enumerate(analysis.top_retained(top), start=1):
        node = analysis.nodes[node_index]
        retained = analysis.retained[node_index]
        lines.append(
            f"#{rank} {node.type_name}"
            + (f" @ {node.site_label}" if node.site_label else "")
        )
        lines.append(
            f"    retained {_kb(retained)} ({100.0 * analysis.retained_share(node_index):5.1f}%"
            f" of reachable)  own size {node.size}B  out-edges {len(node.edges)}"
        )
        domref = analysis.dominating_reference(node_index)
        if domref is not None:
            owner, label = domref
            lines.append(
                f"    dominating reference: {analysis.nodes[owner].type_name}"
                f".{label}"
            )
        chain = analysis.retainer_chain(node_index)
        if chain:
            lines.append(f"    chain: {chain}")
        if drag_analysis is not None:
            pinned = analysis.pinned_drag_sites(node_index, drag_analysis)
            for label, est_drag, pinned_bytes in pinned[:3]:
                lines.append(
                    f"    pins dragged site {label}: "
                    f"{_kb(pinned_bytes)} retained, drag {est_drag:.0f} B^2"
                )
    return "\n".join(lines)


def snapshot_summary(source) -> dict:
    """JSON-shaped summary (the serve ``/snapshot`` payload)."""
    if isinstance(source, SnapshotFile):
        snapshots = source.snapshots
        truncated = source.truncated
    else:
        snapshots = [source]
        truncated = False
    out = {"snapshots": len(snapshots), "truncated": truncated}
    if not snapshots:
        return out
    latest = snapshots[-1]
    analysis = SnapshotAnalysis(latest)
    out["latest"] = {
        "clock": latest.clock,
        "reason": latest.reason,
        "nodes": latest.node_count,
        "edges": latest.edge_count,
        "reachable_bytes": analysis.total_reachable_bytes,
        "top_retainers": [
            {
                "type": analysis.nodes[i].type_name,
                "site": analysis.nodes[i].site_label,
                "retained_bytes": analysis.retained[i],
                "share": round(analysis.retained_share(i), 6),
                "chain": analysis.retainer_chain(i),
            }
            for i in analysis.top_retained(5)
        ],
    }
    return out


def snapshot_diff_report(before, after, top: int = 10) -> str:
    """Per-site retained deltas between two snapshots (each a
    :class:`HeapSnapshot` or parsed :class:`SnapshotFile`, in which
    case the latest snapshot of each is compared)."""

    def latest(source) -> HeapSnapshot:
        return source.snapshots[-1] if isinstance(source, SnapshotFile) else source

    a, b = latest(before), latest(after)
    an, bn = SnapshotAnalysis(a), SnapshotAnalysis(b)
    before_sites = an.retained_by_site()
    after_sites = bn.retained_by_site()
    rows = []
    for label in set(before_sites) | set(after_sites):
        was, now = before_sites.get(label, 0), after_sites.get(label, 0)
        if was != now:
            rows.append((label, was, now))
    rows.sort(key=lambda row: (-abs(row[2] - row[1]), row[0]))
    lines = [
        "=== Snapshot diff ===",
        (
            f"t={a.clock}B -> t={b.clock}B  nodes {a.node_count} -> {b.node_count}  "
            f"reachable {_kb(an.total_reachable_bytes)} -> {_kb(bn.total_reachable_bytes)}"
        ),
        "",
        f"--- top {top} per-site retained changes ---",
    ]
    if not rows:
        lines.append("(no per-site retained changes)")
    for label, was, now in rows[:top]:
        sign = "+" if now >= was else "-"
        lines.append(
            f"  {label}: {_kb(was)} -> {_kb(now)} ({sign}{_kb(abs(now - was))})"
        )
    return "\n".join(lines)
