"""Self-contained HTML timeline dashboard (zero dependencies).

Renders a :meth:`TimelineBuilder.payload` dict as a single HTML file
with inline SVG — no JavaScript frameworks, no external assets, so the
report opens anywhere and can be archived next to the log it came
from.  Panels:

* a Figure-2-style stacked area chart (in-use bytes at the bottom,
  the drag band stacked on top — their sum is the reachable curve),
  with vertical snapshot markers at the deep-GC safepoints, optionally
  joined with PR 9 retained sizes;
* one drag-timeline strip per top site;
* the global lifetime histogram (log2 byte-clock buckets).

Element ids are stable (``series-reachable``, ``series-in_use``,
``series-drag``, ``site-strip-<i>``, ``lifetime-hist``,
``snapshot-markers``) so tests and scrapers can address the panels.
"""

from __future__ import annotations

import html as _html
from typing import List, Optional

from repro.obs.timeline import MB, format_bytes, payload_series

__all__ = ["render_html", "write_html"]

_CHART_W = 720
_CHART_H = 240
_STRIP_H = 48
_HIST_H = 160
_PAD = 8

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 820px; color: #1a1a2e; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em; }
table.stats { border-collapse: collapse; font-size: 0.85em; }
table.stats td { padding: 2px 14px 2px 0; }
.muted { color: #666; font-size: 0.8em; }
svg { background: #fafafa; border: 1px solid #ddd; }
.site-label { font-size: 0.8em; margin: 0.6em 0 0.1em; font-family: monospace; }
"""


def _scale(series: List, vmax: float, width: int, height: int) -> List[str]:
    """Map a series to ``x,y`` SVG points across the plot area."""
    n = len(series)
    plot_w = width - 2 * _PAD
    plot_h = height - 2 * _PAD
    step = plot_w / max(1, n - 1)
    points = []
    for i, v in enumerate(series):
        x = _PAD + i * step
        y = _PAD + plot_h - (plot_h * v / vmax if vmax > 0 else 0)
        points.append(f"{x:.1f},{y:.1f}")
    return points


def _area(series: List, vmax: float, width: int, height: int) -> str:
    """Closed polygon points for an area from the x-axis up to ``series``."""
    points = _scale(series, vmax, width, height)
    baseline = height - _PAD
    return " ".join(points + [f"{width - _PAD}.0,{baseline}.0", f"{_PAD}.0,{baseline}.0"])


def _band(lower: List, upper: List, vmax: float, width: int, height: int) -> str:
    """Closed polygon for the band between two stacked series."""
    top = _scale(upper, vmax, width, height)
    bottom = _scale(lower, vmax, width, height)
    return " ".join(top + list(reversed(bottom)))


def _marker_lines(payload: dict, vmax: float, snapshots) -> str:
    """Vertical snapshot-marker lines (deep-GC safepoints), each with a
    tooltip; joined with retained sizes when snapshot data is given."""
    samples = payload.get("samples") or []
    span = payload["end_time"] if payload["end_time"] is not None else payload["last_time"]
    if not samples or not span:
        return '<g id="snapshot-markers"></g>'
    retained = {}
    for snap in snapshots or []:
        time = snap.get("time")
        if time is not None:
            retained[time] = snap.get("retained_bytes")
    plot_w = _CHART_W - 2 * _PAD
    parts = ['<g id="snapshot-markers" stroke="#8888aa" stroke-dasharray="2,3">']
    for time, reachable, count in samples:
        x = _PAD + plot_w * min(time, span) / span
        tip = f"deep GC @ {format_bytes(time)}: {format_bytes(reachable)} reachable, {count} objects"
        joined = retained.get(time)
        if joined is not None:
            tip += f", {format_bytes(joined)} retained"
        parts.append(
            f'<line x1="{x:.1f}" y1="{_PAD}" x2="{x:.1f}" y2="{_CHART_H - _PAD}">'
            f"<title>{_html.escape(tip)}</title></line>"
        )
    parts.append("</g>")
    return "".join(parts)


def _figure2_svg(payload: dict, snapshots) -> str:
    bin_bytes = payload["bin_bytes"]
    reachable = [v / bin_bytes for v in payload_series(payload, "reachable")]
    in_use = [v / bin_bytes for v in payload_series(payload, "in_use")]
    vmax = max(reachable) if reachable else 0.0
    parts = [
        f'<svg id="figure2" width="{_CHART_W}" height="{_CHART_H}" '
        f'viewBox="0 0 {_CHART_W} {_CHART_H}">'
    ]
    if reachable:
        parts.append(
            f'<polygon id="series-in_use" fill="#4c72b0" fill-opacity="0.55" '
            f'points="{_area(in_use, vmax, _CHART_W, _CHART_H)}"/>'
        )
        parts.append(
            f'<polygon id="series-drag" fill="#c44e52" fill-opacity="0.55" '
            f'points="{_band(in_use, reachable, vmax, _CHART_W, _CHART_H)}"/>'
        )
        parts.append(
            f'<polyline id="series-reachable" fill="none" stroke="#1a1a2e" '
            f'stroke-width="1.2" points="{" ".join(_scale(reachable, vmax, _CHART_W, _CHART_H))}"/>'
        )
    else:
        # Keep the series ids addressable even for an empty profile.
        parts.append('<polygon id="series-in_use" points=""/>')
        parts.append('<polygon id="series-drag" points=""/>')
        parts.append('<polyline id="series-reachable" points=""/>')
    parts.append(_marker_lines(payload, vmax, snapshots))
    parts.append("</svg>")
    return "".join(parts)


def _site_strip_svg(payload: dict, site: dict, index: int) -> str:
    bin_bytes = payload["bin_bytes"]
    key = "est_values" if payload.get("sampled") else "values"
    series = [v / bin_bytes for v in site[key]]
    vmax = max(series) if series else 0.0
    points = _area(series, vmax, _CHART_W, _STRIP_H) if series else ""
    return (
        f'<svg id="site-strip-{index}" width="{_CHART_W}" height="{_STRIP_H}" '
        f'viewBox="0 0 {_CHART_W} {_STRIP_H}">'
        f'<polygon fill="#c44e52" fill-opacity="0.6" points="{points}"/>'
        "</svg>"
    )


def _histogram_svg(hist: dict) -> str:
    buckets = hist.get("buckets") or []
    counts = hist.get("est_counts") or []
    parts = [
        f'<svg id="lifetime-hist" width="{_CHART_W}" height="{_HIST_H}" '
        f'viewBox="0 0 {_CHART_W} {_HIST_H}">'
    ]
    if buckets:
        top = max(counts)
        plot_w = _CHART_W - 2 * _PAD
        plot_h = _HIST_H - 2 * _PAD - 14  # leave room for bucket labels
        slot = plot_w / len(buckets)
        bar_w = max(2.0, slot * 0.7)
        for i, (bucket, count) in enumerate(zip(buckets, counts)):
            h = plot_h * count / top if top > 0 else 0
            x = _PAD + i * slot + (slot - bar_w) / 2
            y = _PAD + plot_h - h
            label = "0" if bucket == 0 else format_bytes(1 << bucket)
            shown = int(count) if count == int(count) else round(count, 1)
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" height="{h:.1f}" '
                f'fill="#55a868"><title>&lt; {_html.escape(label)}: {shown} objects</title></rect>'
            )
            parts.append(
                f'<text x="{x + bar_w / 2:.1f}" y="{_HIST_H - _PAD:.1f}" '
                f'text-anchor="middle" font-size="8">{_html.escape(label)}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _stats_table(payload: dict) -> str:
    rate = payload.get("effective_sample_rate", 1.0)
    rows = [
        ("objects", f"{payload['objects']}"),
        ("allocated", format_bytes(payload["total_bytes"])),
        ("drag", f"{payload['est_total_drag'] / (MB * MB):.4f} MB&#178;"),
        ("bins", f"{payload['bins']} x {format_bytes(payload['bin_bytes'])}"),
        ("sites", f"{payload['site_count']}"),
    ]
    if payload.get("sampled"):
        rows.append(("effective sample rate", f"{rate:.6f}"))
    cells = "".join(f"<tr><td>{name}</td><td>{value}</td></tr>" for name, value in rows)
    return f'<table class="stats">{cells}</table>'


def render_html(
    payload: dict,
    title: str = "repro heap timeline",
    snapshots: Optional[list] = None,
) -> str:
    """Render a timeline payload as a standalone HTML document."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        _stats_table(payload),
        "<h2>Heap profile (Figure 2): in-use + drag = reachable</h2>",
        _figure2_svg(payload, snapshots),
        '<p class="muted">blue: in-use bytes; red band: drag; dashed verticals: '
        "deep-GC snapshot markers (hover for retained sizes when joined). "
        "x: bytes allocated; y: average bytes per bin.</p>",
    ]
    sites = payload.get("sites") or []
    if sites:
        parts.append("<h2>Per-site drag timelines</h2>")
        for i, site in enumerate(sites, 1):
            share = 100.0 * site["drag_share"]
            parts.append(
                f'<p class="site-label">#{site["rank"]} {_html.escape(site["site"])} '
                f"— drag {site['est_drag'] / (MB * MB):.4f} MB&#178; ({share:.1f}%), "
                f"{site['objects']} objects</p>"
            )
            parts.append(_site_strip_svg(payload, site, i))
    parts.append("<h2>Lifetime histogram</h2>")
    parts.append(_histogram_svg(payload.get("lifetime_hist") or {}))
    parts.append(
        '<p class="muted">object lifetimes over the byte-allocation clock, '
        "log2 buckets; weight-corrected counts under sampling.</p>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html(
    path,
    payload: dict,
    title: str = "repro heap timeline",
    snapshots: Optional[list] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(payload, title=title, snapshots=snapshots))
