"""Spans: where the wall time (and the byte clock) went.

A :class:`Tracer` records a tree of nested spans. Each span carries two
durations: wall time (``time.perf_counter``) and — when a byte-clock
source is bound, normally ``lambda: vm.heap.clock`` — the number of
bytes allocated while the span was open. Time in this reproduction *is*
bytes allocated (§2.1.1), so a span like ``gc.deep`` showing 40 ms of
wall and 0 B of clock is exactly the paper's point: the collector costs
real time but no logical time.

Export targets:

* :meth:`Tracer.to_chrome_trace` — the Chrome trace-event JSON format
  (``{"traceEvents": [...]}`` with complete ``"ph": "X"`` events),
  loadable in Perfetto or ``chrome://tracing``;
* :func:`render_span_tree` — an indented text report (``repro trace``),
  with same-named siblings collapsed into one aggregated line.

A disabled tracer is inert: :meth:`Tracer.span` returns a shared no-op
context manager and records nothing, so telemetry call sites outside
the hot path cost one attribute check.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional

from repro.errors import ReproError


class TraceError(ReproError):
    """A trace file could not be read or is not Chrome trace JSON."""


class Span:
    """One timed region: wall-clock interval plus byte-clock interval."""

    __slots__ = (
        "name",
        "category",
        "start_wall",
        "end_wall",
        "start_clock",
        "end_clock",
        "args",
        "children",
    )

    def __init__(
        self,
        name: str,
        category: str,
        start_wall: float,
        start_clock: Optional[int],
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start_wall = start_wall
        self.end_wall: Optional[float] = None
        self.start_clock = start_clock
        self.end_clock: Optional[int] = None
        self.args = dict(args) if args else {}
        self.children: List[Span] = []

    @property
    def wall_seconds(self) -> float:
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def clock_bytes(self) -> Optional[int]:
        """Bytes allocated while the span was open, if a clock was bound."""
        if self.start_clock is None or self.end_clock is None:
            return None
        return self.end_clock - self.start_clock

    def __repr__(self) -> str:
        return (
            f"<span {self.name} wall={self.wall_seconds * 1e3:.2f}ms"
            f"{'' if self.clock_bytes is None else f' clock={self.clock_bytes}B'}>"
        )


class _NullSpanContext:
    """The no-op context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that closes one span on exit."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.span.args.setdefault("error", exc_type.__name__)
        self.tracer._close(self.span)
        return False


class Tracer:
    """Collects a tree of spans for one tool invocation.

    ``clock_fn`` (see :meth:`bind_clock`) supplies the byte clock; spans
    opened while no clock is bound carry wall time only. The tracer is
    single-threaded by design — the VM is — so nesting is a plain stack.
    """

    def __init__(self, enabled: bool = True, clock_fn: Optional[Callable[[], int]] = None) -> None:
        self.enabled = enabled
        self.clock_fn = clock_fn
        self.epoch = time.perf_counter()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def bind_clock(self, clock_fn: Optional[Callable[[], int]]) -> None:
        """Attach the byte-clock source (normally a live VM's heap
        clock). Spans opened from now on record clock intervals too."""
        self.clock_fn = clock_fn

    def span(self, name: str, category: str = "repro", **args):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        clock = self.clock_fn() if self.clock_fn is not None else None
        span = Span(name, category, time.perf_counter(), clock, args or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end_wall = time.perf_counter()
        if span.start_clock is not None and self.clock_fn is not None:
            span.end_clock = self.clock_fn()
        # Close any children left open by a non-local exit, then pop.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # -- export ------------------------------------------------------------

    def _events(self, span: Span, out: List[dict]) -> None:
        args = dict(span.args)
        if span.clock_bytes is not None:
            args["clock_start"] = span.start_clock
            args["clock_bytes"] = span.clock_bytes
        out.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": round((span.start_wall - self.epoch) * 1e6, 3),
                "dur": round(span.wall_seconds * 1e6, 3),
                "args": args,
            }
        )
        for child in span.children:
            self._events(child, out)

    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        events: List[dict] = []
        for root in self.roots:
            self._events(root, events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"format": "repro-trace", "clock_unit": "bytes-allocated"},
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_chrome_trace(), f, indent=1)
            f.write("\n")

    def span_tree(self) -> str:
        """The indented text report over this tracer's own spans."""
        return render_span_tree(self.roots)


# ---------------------------------------------------------------------------
# reading traces back (the ``repro trace`` subcommand)
# ---------------------------------------------------------------------------


def read_chrome_trace(path: str) -> List[Span]:
    """Load a Chrome trace JSON file and rebuild the span forest.

    Accepts both the object form (``{"traceEvents": [...]}``) and the
    bare-array form. Nesting is reconstructed from interval containment
    per (pid, tid), which is exact for single-threaded complete events.
    """
    with open(path, "r", encoding="utf-8") as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: not JSON: {exc}") from exc
    events = data.get("traceEvents") if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise TraceError(f"{path}: no traceEvents array")
    spans: List[tuple] = []
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        try:
            ts = float(event["ts"])
            dur = float(event.get("dur", 0.0))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"{path}: bad complete event: {event!r}") from exc
        span = Span(
            str(event.get("name", "?")),
            str(event.get("cat", "repro")),
            ts / 1e6,
            None,
            args={
                k: v
                for k, v in (event.get("args") or {}).items()
                if k not in ("clock_start", "clock_bytes")
            },
        )
        span.end_wall = (ts + dur) / 1e6
        clock_args = event.get("args") or {}
        if "clock_bytes" in clock_args:
            span.start_clock = clock_args.get("clock_start", 0)
            span.end_clock = span.start_clock + clock_args["clock_bytes"]
        spans.append(((event.get("pid", 1), event.get("tid", 1)), ts, dur, span))
    # Sort by start ascending, duration descending: parents come before
    # their children, so a stack rebuilds the forest.
    spans.sort(key=lambda item: (item[0], item[1], -item[2]))
    roots: List[Span] = []
    stack: List[tuple] = []  # (key, end_ts, span)
    # Pop entries that cannot contain the current span: different
    # pid/tid, or an interval ending before this one does (0.005 us of
    # slack absorbs the export's microsecond rounding).
    for key, ts, dur, span in spans:
        end = ts + dur
        while stack and (stack[-1][0] != key or stack[-1][1] + 0.005 < end):
            stack.pop()
        if stack:
            stack[-1][2].children.append(span)
        else:
            roots.append(span)
        stack.append((key, end, span))
    return roots


def _format_bytes(n: int) -> str:
    return f"{n:,}B"


class _Aggregate:
    __slots__ = ("name", "count", "wall", "clock", "has_clock", "children", "first")

    def __init__(self, span: Span) -> None:
        self.name = span.name
        self.count = 0
        self.wall = 0.0
        self.clock = 0
        self.has_clock = False
        self.first = span
        self.children: "Dict[str, _Aggregate]" = {}

    def add(self, span: Span) -> None:
        self.count += 1
        self.wall += span.wall_seconds
        if span.clock_bytes is not None:
            self.has_clock = True
            self.clock += span.clock_bytes
        for child in span.children:
            agg = self.children.get(child.name)
            if agg is None:
                agg = self.children[child.name] = _Aggregate(child)
            agg.add(child)


def render_span_tree(roots: List[Span], width: int = 44) -> str:
    """Indented span-tree text. Same-named siblings collapse into one
    line with a ``xN`` multiplier and summed durations, so a trace with
    hundreds of ``gc.deep`` spans stays readable."""
    lines: List[str] = []

    def walk(agg: _Aggregate, prefix: str, is_last: bool, depth: int) -> None:
        connector = "" if depth == 0 else ("`- " if is_last else "|- ")
        label = agg.name if agg.count == 1 else f"{agg.name} x{agg.count}"
        cell = f"{prefix}{connector}{label}"
        detail = f"wall {agg.wall * 1e3:10.2f}ms"
        if agg.has_clock:
            detail += f"   clock {_format_bytes(agg.clock):>14s}"
        lines.append(f"{cell:<{width}s} {detail}")
        child_prefix = prefix if depth == 0 else prefix + ("   " if is_last else "|  ")
        kids = list(agg.children.values())
        for i, child in enumerate(kids):
            walk(child, child_prefix, i == len(kids) - 1, depth + 1)

    top: Dict[str, _Aggregate] = {}
    for root in roots:
        agg = top.get(root.name)
        if agg is None:
            agg = top[root.name] = _Aggregate(root)
        agg.add(root)
    if not top:
        return "(empty trace)"
    for agg in top.values():
        walk(agg, "", True, 0)
    return "\n".join(lines)
