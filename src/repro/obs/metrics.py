"""Labeled instruments with Prometheus exposition and JSON snapshots.

A :class:`MetricsRegistry` holds :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` instruments, each optionally labeled. The registry
is get-or-create keyed by metric name, so any layer can say
``registry.counter("repro_gc_cycles_total", ...)`` and the GC, the
profiler, and the CLI all land on the same time series.

Two export shapes, both deterministic (sorted by metric name, then by
label values) so repeated snapshots of the same state are byte-equal:

* :meth:`MetricsRegistry.exposition` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` / sample lines), what ``--metrics-out``
  writes;
* :meth:`MetricsRegistry.snapshot` — a plain JSON-able dict, what the
  live ``--metrics-json`` path and tests consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class MetricsError(ReproError):
    """Instrument misuse: type conflict, bad labels."""


DEFAULT_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    """Prometheus-style numbers: integers without a trailing ``.0``."""
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Shared labeling machinery; one child per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    def labels(self, *values, **kwvalues) -> "_Instrument":
        if kwvalues:
            if values:
                raise MetricsError(f"{self.name}: mix of positional and keyword labels")
            try:
                values = tuple(str(kwvalues[name]) for name in self.labelnames)
            except KeyError as exc:
                raise MetricsError(f"{self.name}: missing label {exc}") from exc
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected labels {list(self.labelnames)}, got {list(values)}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            self._children[values] = child
        return child

    def _make_child(self) -> "_Instrument":
        return type(self)(self.name, self.help, ())

    def _iter_series(self):
        """(labelvalues, child) pairs in sorted label order; the bare
        instrument itself when unlabeled."""
        if self.labelnames:
            for values in sorted(self._children):
                yield values, self._children[values]
        else:
            yield (), self

    # Subclasses: samples() -> [(name_suffix, extra_label_suffix, value)]

    def samples(self) -> List[Tuple[str, str, float]]:
        raise NotImplementedError

    def to_dict(self):
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help_text="", labelnames=()) -> None:
        super().__init__(name, help_text, labelnames)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"{self.name}: counters cannot decrease")
        self.value += amount

    def samples(self):
        return [("", "", self.value)]

    def to_dict(self):
        return self.value


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name, help_text="", labelnames=()) -> None:
        super().__init__(name, help_text, labelnames)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def samples(self):
        return [("", "", self.value)]

    def to_dict(self):
        return self.value


class Histogram(_Instrument):
    """Cumulative-bucket histogram (the Prometheus layout)."""

    kind = "histogram"

    def __init__(self, name, help_text="", labelnames=(), buckets=DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricsError(f"{name}: histogram needs at least one bucket")
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def _make_child(self):
        return Histogram(self.name, self.help, (), buckets=self.buckets)

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1

    def samples(self):
        out = []
        # observe() increments every bucket with value <= le, so the
        # stored counts are already cumulative, as the format requires.
        for bound, in_bucket in zip(self.buckets, self.bucket_counts):
            out.append(("_bucket", f'le="{_format_value(float(bound))}"', float(in_bucket)))
        out.append(("_bucket", 'le="+Inf"', float(self.count)))
        out.append(("_sum", "", self.sum))
        out.append(("_count", "", float(self.count)))
        return out

    def to_dict(self):
        return {
            "buckets": {
                _format_value(float(b)): c
                for b, c in zip(self.buckets, self.bucket_counts)
            },
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in one tool invocation."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise MetricsError(
                    f"{name}: already registered as {existing.kind} "
                    f"with labels {list(existing.labelnames)}"
                )
            return existing
        instrument = cls(name, help_text, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- export ------------------------------------------------------------

    def exposition(self) -> str:
        """Prometheus text format, deterministically ordered."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for labelvalues, child in instrument._iter_series():
                base = _label_suffix(instrument.labelnames, labelvalues)
                for suffix, extra, value in child.samples():
                    if extra and base:
                        label_part = base[:-1] + "," + extra + "}"
                    elif extra:
                        label_part = "{" + extra + "}"
                    else:
                        label_part = base
                    lines.append(f"{name}{suffix}{label_part} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_exposition(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.exposition())

    def snapshot(self) -> dict:
        """JSON-able state: {metric: value | {label_tuple_str: value}}."""
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.labelnames:
                series = {}
                for labelvalues, child in instrument._iter_series():
                    key = ",".join(
                        f"{n}={v}" for n, v in zip(instrument.labelnames, labelvalues)
                    )
                    series[key] = child.to_dict()
                out[name] = series
            else:
                out[name] = instrument.to_dict()
        return out


class DispatchStats:
    """Mutable counters the closure compiler binds into instrumented
    handlers. Plain ints behind ``__slots__`` — the per-call cost is one
    attribute increment, and only virtual-call handlers pay it, only
    when telemetry is enabled (see :mod:`repro.runtime.dispatch`)."""

    __slots__ = ("methods_translated", "handlers_emitted", "ic_hits", "ic_misses")

    def __init__(self) -> None:
        self.methods_translated = 0
        self.handlers_emitted = 0
        self.ic_hits = 0
        self.ic_misses = 0
