"""Unified telemetry: one tracer + one metrics registry per invocation.

The paper's contribution is measurement, so the reproduction measures
itself: a :class:`Telemetry` object travels through the engine facade
(:class:`~repro.runtime.engine.VMConfig`), the profiler, the lint
:class:`~repro.lint.passes.PassManager`, and the optimization
pipeline, collecting

* **spans** (:mod:`repro.obs.trace`) — nested wall-time + byte-clock
  regions, exported as Chrome trace JSON (``--trace``) and rendered by
  ``repro trace``;
* **metrics** (:mod:`repro.obs.metrics`) — labeled counters, gauges,
  and histograms with Prometheus text exposition (``--metrics-out``).

The zero-overhead-when-disabled invariant: everywhere a telemetry
object may be absent it is ``None``, and the hot paths (the compiled
dispatch handlers) are specialized at translation time — with no
telemetry attached the emitted closures contain *no* telemetry call
sites at all, extending PR 3's hook-specialization guarantee
(``tests/runtime/test_dispatch.py`` introspects for it). GC, lint, and
pipeline instrumentation sits on cold paths and costs one ``is None``
check per event.

Telemetry observes the byte clock but never advances it, so profiles,
stdout, instruction counts, and v1/v2 log bytes are bit-identical with
telemetry on or off (``tests/obs/`` holds both engines to it).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    DispatchStats,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    TraceError,
    Tracer,
    read_chrome_trace,
    render_span_tree,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_BIN_BYTES",
    "DispatchStats",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "TimelineBuilder",
    "TimelineSink",
    "TraceError",
    "Tracer",
    "read_chrome_trace",
    "render_html",
    "render_span_tree",
    "render_timeline_text",
    "sparkline",
    "write_html",
]

# Timeline names resolve lazily (PEP 562): repro.obs.timeline imports the
# stream package for the sink protocol, and loading that on every
# `import repro.obs` would be both wasteful and a latent cycle hazard.
_TIMELINE_EXPORTS = {
    "DEFAULT_BIN_BYTES": "repro.obs.timeline",
    "TimelineBuilder": "repro.obs.timeline",
    "TimelineSink": "repro.obs.timeline",
    "render_timeline_text": "repro.obs.timeline",
    "sparkline": "repro.obs.timeline",
    "render_html": "repro.obs.htmlreport",
    "write_html": "repro.obs.htmlreport",
}


def __getattr__(name: str):
    module_name = _TIMELINE_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

# Histogram buckets for GC pauses and lint passes: sub-millisecond to
# tens of seconds, in seconds.
PAUSE_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0)


class Telemetry:
    """The bundle every instrumented layer receives: a tracer, a
    registry, and the dispatch-stat counters the closure compiler
    binds. Construct one per tool invocation; ``None`` (not a disabled
    instance) is the convention for "telemetry off"."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.dispatch_stats = DispatchStats()

    # -- span passthrough --------------------------------------------------

    def span(self, name: str, category: str = "repro", **args):
        return self.tracer.span(name, category=category, **args)

    def bind_clock(self, clock_fn) -> None:
        self.tracer.bind_clock(clock_fn)

    # -- GC ----------------------------------------------------------------

    def record_gc(
        self,
        pause_seconds: float,
        reclaimed_bytes: int,
        live_bytes: int,
        live_objects: int,
        kind: str = "major",
    ) -> None:
        """One collection finished; ``kind`` is ``major`` or ``minor``."""
        registry = self.registry
        registry.counter(
            "repro_gc_cycles_total", "Garbage collections run", ("kind",)
        ).labels(kind=kind).inc()
        registry.histogram(
            "repro_gc_pause_seconds",
            "Stop-the-world pause per collection",
            buckets=PAUSE_BUCKETS,
        ).observe(pause_seconds)
        registry.counter(
            "repro_gc_reclaimed_bytes_total", "Bytes reclaimed by the collector"
        ).inc(reclaimed_bytes)
        registry.gauge(
            "repro_gc_live_bytes", "Heap occupancy right after the last collection"
        ).set(live_bytes)
        registry.gauge(
            "repro_gc_live_objects", "Live objects right after the last collection"
        ).set(live_objects)

    def record_deep_gc(self) -> None:
        """One §2.1.1 deep-GC cycle (collect, finalize, collect)."""
        self.registry.counter(
            "repro_gc_deep_cycles_total", "Deep-GC cycles (collect+finalize+collect)"
        ).inc()

    # -- VM / dispatch -----------------------------------------------------

    def record_run(self, vm, result) -> None:
        """Flush one finished program run into the registry."""
        registry = self.registry
        registry.counter(
            "repro_vm_instructions_total", "Bytecode instructions retired"
        ).inc(result.instructions)
        registry.counter(
            "repro_vm_allocated_bytes_total", "Bytes allocated (the byte clock)"
        ).inc(result.heap_stats.bytes_allocated)
        registry.counter(
            "repro_vm_objects_allocated_total", "Objects allocated"
        ).inc(result.heap_stats.objects_allocated)
        registry.counter(
            "repro_vm_finalizer_errors_total", "Exceptions swallowed by finalize()"
        ).inc(result.finalizer_errors)
        stats = self.dispatch_stats
        registry.counter(
            "repro_dispatch_methods_translated_total",
            "Methods translated to handler closures",
        ).inc(stats.methods_translated)
        registry.counter(
            "repro_dispatch_handlers_total", "Handler closures emitted"
        ).inc(stats.handlers_emitted)
        ic = registry.counter(
            "repro_dispatch_inline_cache_total",
            "INVOKEV inline-cache lookups",
            ("result",),
        )
        ic.labels(result="hit").inc(stats.ic_hits)
        ic.labels(result="miss").inc(stats.ic_misses)
        # The run consumed the per-run counters; zero them so a second
        # VM under the same telemetry doesn't double-report.
        stats.methods_translated = 0
        stats.handlers_emitted = 0
        stats.ic_hits = 0
        stats.ic_misses = 0

    # -- profiler ----------------------------------------------------------

    def record_profiler(self, profiler) -> None:
        registry = self.registry
        registry.counter(
            "repro_profiler_records_total", "Object trailer records written"
        ).inc(profiler.record_count)
        registry.counter(
            "repro_profiler_samples_total", "Deep-GC sample batches taken"
        ).inc(profiler.sample_count)

    # -- snapshot ----------------------------------------------------------

    def record_snapshot(self, nodes: int, edges: int, seconds: float) -> None:
        """One heap snapshot captured at a deep-GC safepoint."""
        registry = self.registry
        registry.counter(
            "repro_snapshot_captures_total", "Heap snapshots captured"
        ).inc()
        registry.counter(
            "repro_snapshot_nodes_total", "Snapshot nodes recorded"
        ).inc(nodes)
        registry.counter(
            "repro_snapshot_edges_total", "Snapshot edges recorded"
        ).inc(edges)
        registry.histogram(
            "repro_snapshot_capture_seconds",
            "Wall time per snapshot capture",
            buckets=PAUSE_BUCKETS,
        ).observe(seconds)

    # -- lint --------------------------------------------------------------

    def record_lint_pass(self, name: str, seconds: float) -> None:
        self.registry.histogram(
            "repro_lint_pass_seconds",
            "Wall time per lint/analysis pass",
            ("pass",),
            buckets=PAUSE_BUCKETS,
        ).labels(name).observe(seconds)

    def record_lint_diagnostics(self, rule_id: str, count: int) -> None:
        self.registry.counter(
            "repro_lint_diagnostics_total", "Diagnostics emitted", ("rule",)
        ).labels(rule_id).inc(count)

    # -- optimize ----------------------------------------------------------

    def record_patch(self, status: str) -> None:
        """One patch outcome: applied / rolled-back / failed / planned."""
        self.registry.counter(
            "repro_optimize_patches_total", "Optimization patches by outcome", ("outcome",)
        ).labels(status).inc()

    def record_cycle(self, drag_before: int, drag_after: Optional[int]) -> None:
        self.registry.counter(
            "repro_optimize_cycles_total", "Profile-rewrite cycles run"
        ).inc()
        self.registry.gauge(
            "repro_optimize_drag_before", "Total drag entering the last cycle"
        ).set(drag_before)
        if drag_after is not None:
            self.registry.gauge(
                "repro_optimize_drag_after", "Total drag after the last verified cycle"
            ).set(drag_after)
