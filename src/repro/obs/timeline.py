"""Streaming heap timelines: Figure 2 as a live observability surface.

The paper's core diagnostic artifact is its heap-occupancy-over-time
graphs — reachable vs in-use bytes against the byte-allocation clock,
with the gap between the two curves being drag (§4.1, Figure 2).  This
module maintains those series *incrementally*, one record at a time, in
O(bins + sites) memory, so the same numbers are available from a live
profiled run (``profile --timeline``), a tailed log, and the sharded
serve daemon (``GET /timeline``) — not just from a post-hoc batch pass
over a buffered record list.

Design constraints (all pinned by ``tests/obs/test_timeline.py``):

* **Bit-identical to batch.**  Every per-bin value is an *exact*
  space-time integral over that bin (bytes × bytes, an int), computed
  with O(1) dict updates per record: an interval [s, e) of ``size``
  bytes adds exact partial areas to its first and last bins and a
  single difference-array entry covering the full bins between them.
  Integer sums are associative, so streaming, batch recompute, and
  K-way sharded merges land on the same bits.

* **Weight-corrected under sampling.**  Each series also carries
  ``est_*`` variants accumulated in :class:`~repro.core.sampler.
  WeightedTotal` (Shewchuk expansions), so Horvitz-Thompson corrected
  timelines are exact, order-independent, and collapse to the observed
  ints at full rate — the PR 8 contract extended to every bin.

* **Associatively mergeable.** ``TimelineBuilder.merge`` is the shard
  primitive: elementwise integer/expansion sums, sample concatenation,
  max end-time.  ``prove_merge_equals_batch(..., timelines=True)``
  checks payload equality across shardings on every benchmark.

The builder deliberately applies **no record filter** (not even
``excluded``): the timeline is a log-level view, like the raw v2 log
itself, so a recompute from the same log always agrees and the batch
``curve_from_records`` curves are reproduced exactly (:meth:`curve`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.integrals import MB, HeapCurve, curve_from_events
from repro.core.sampler import WeightedTotal
from repro.core.trailer import ObjectRecord
from repro.stream.sinks import ProfileSink

__all__ = [
    "DEFAULT_BIN_BYTES",
    "KINDS",
    "BinnedSeries",
    "Log2Histogram",
    "SiteTimeline",
    "TimelineBuilder",
    "TimelineSink",
    "format_axis",
    "format_bytes",
    "payload_series",
    "render_histogram_text",
    "render_timeline_text",
    "sparkline",
]

#: One bin per 64 KB of allocation: fine enough to resolve the phase
#: structure of every bundled benchmark, coarse enough that a multi-GB
#: allocation clock stays in the tens of thousands of bins.
DEFAULT_BIN_BYTES = 64 * 1024

#: The three global series of Figure 2 (drag = reachable − in-use).
KINDS = ("reachable", "in_use", "drag")


class BinnedSeries:
    """Exact per-bin space-time integrals of one heap curve.

    Two sparse maps over bin index: ``edge`` holds the partial areas an
    interval contributes to the (at most two) bins it only partially
    covers, and ``full`` is a difference array for the run of bins it
    covers completely — ``+size·W`` at the first full bin, ``−size·W``
    one past the last — so adding a record is O(1) regardless of how
    many bins its lifetime spans.  Rendering prefix-sums ``full`` and
    adds ``edge`` per bin.  ``est_*`` mirrors both maps with
    :class:`WeightedTotal` cells for the weight-corrected estimate.
    """

    __slots__ = ("edge", "full", "est_edge", "est_full", "weighted")

    def __init__(self) -> None:
        self.edge: Dict[int, int] = {}
        self.full: Dict[int, int] = {}
        self.est_edge: Dict[int, WeightedTotal] = {}
        self.est_full: Dict[int, WeightedTotal] = {}
        # Lazily weighted: until the first weight != 1.0 contribution
        # the est tables stay empty (the observed ints ARE the
        # estimate, bit for bit), keeping the per-record hot path free
        # of WeightedTotal churn on unsampled streams.
        self.weighted = False

    def _promote(self) -> None:
        """Materialize the est tables from the (so far all weight-1.0)
        observed ints. A weight-1 area lands in ``WeightedTotal.ints``,
        so this replay is exactly what eager accumulation would hold."""
        self.weighted = True
        est_edge = self.est_edge
        for key, v in self.edge.items():
            total = WeightedTotal()
            total.ints = v
            est_edge[key] = total
        est_full = self.est_full
        for key, v in self.full.items():
            total = WeightedTotal()
            total.ints = v
            est_full[key] = total

    @staticmethod
    def _est_add(table: Dict[int, WeightedTotal], key: int, area: int, weight: float) -> None:
        total = table.get(key)
        if total is None:
            total = table[key] = WeightedTotal()
        total.add(area if weight == 1.0 else weight * area)

    def add(self, start: int, end: int, size: int, weight: float, bin_bytes: int) -> None:
        """Fold the interval ``[start, end)`` of ``size`` bytes in."""
        first = start // bin_bytes
        last = (end - 1) // bin_bytes
        edge = self.edge
        if weight == 1.0 and not self.weighted:
            # Int-only fast path: the overwhelmingly common case.
            if first == last:
                edge[first] = edge.get(first, 0) + size * (end - start)
                return
            edge[first] = edge.get(first, 0) + size * ((first + 1) * bin_bytes - start)
            edge[last] = edge.get(last, 0) + size * (end - last * bin_bytes)
            if last > first + 1:
                body = size * bin_bytes
                full = self.full
                full[first + 1] = full.get(first + 1, 0) + body
                full[last] = full.get(last, 0) - body
            return
        if not self.weighted:
            self._promote()
        if first == last:
            area = size * (end - start)
            edge[first] = edge.get(first, 0) + area
            self._est_add(self.est_edge, first, area, weight)
            return
        head = size * ((first + 1) * bin_bytes - start)
        tail = size * (end - last * bin_bytes)
        edge[first] = edge.get(first, 0) + head
        edge[last] = edge.get(last, 0) + tail
        self._est_add(self.est_edge, first, head, weight)
        self._est_add(self.est_edge, last, tail, weight)
        if last > first + 1:
            body = size * bin_bytes
            full = self.full
            full[first + 1] = full.get(first + 1, 0) + body
            full[last] = full.get(last, 0) - body
            self._est_add(self.est_full, first + 1, body, weight)
            self._est_add(self.est_full, last, -body, weight)

    def values(self, nbins: int) -> List[int]:
        """Exact observed integral per bin (bytes²), length ``nbins``."""
        out = []
        running = 0
        full = self.full
        edge = self.edge
        for b in range(nbins):
            running += full.get(b, 0)
            out.append(running + edge.get(b, 0))
        return out

    def est_values(self, nbins: int) -> List:
        """Weight-corrected integral per bin — the exact ints at full
        rate, correctly rounded floats once weighted records appear.
        Each bin value is one ``fsum`` over exact expansions, so the
        result is independent of accumulation and merge order."""
        if not self.weighted:
            return self.values(nbins)
        out = []
        running = WeightedTotal()
        est_full = self.est_full
        est_edge = self.est_edge
        for b in range(nbins):
            diff = est_full.get(b)
            if diff is not None:
                running.merge(diff)
            e = est_edge.get(b)
            if e is None:
                out.append(running.value)
            else:
                ints = running.ints + e.ints
                partials = running.partials + e.partials
                out.append(ints if not partials else math.fsum(partials + [ints]))
        return out

    def merge(self, other: "BinnedSeries") -> None:
        if other.weighted and not self.weighted:
            self._promote()
        edge = self.edge
        for key, v in other.edge.items():
            edge[key] = edge.get(key, 0) + v
        full = self.full
        for key, v in other.full.items():
            full[key] = full.get(key, 0) + v
        if not self.weighted:
            return
        if other.weighted:
            for table_name in ("est_edge", "est_full"):
                mine: Dict[int, WeightedTotal] = getattr(self, table_name)
                for key, total in getattr(other, table_name).items():
                    existing = mine.get(key)
                    if existing is None:
                        existing = mine[key] = WeightedTotal()
                    existing.merge(total)
        else:
            # The unweighted side's observed ints are its estimates.
            for table_name, source in (("est_edge", other.edge), ("est_full", other.full)):
                mine = getattr(self, table_name)
                for key, v in source.items():
                    existing = mine.get(key)
                    if existing is None:
                        existing = mine[key] = WeightedTotal()
                    existing.ints += v


class Log2Histogram:
    """Power-of-two histogram over byte-clock durations.

    Bucket ``b`` holds durations in ``[2^(b-1), 2^b)`` (bucket 0 is
    exactly zero — e.g. void objects' in-use time), via
    ``duration.bit_length()``.  Carries both the observed int count and
    the weight-corrected estimated count per bucket.
    """

    __slots__ = ("counts", "est_counts", "weighted")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.est_counts: Dict[int, WeightedTotal] = {}
        self.weighted = False

    def _promote(self) -> None:
        """Materialize est buckets from the all-weight-1.0 counts seen
        so far (a weight-1 count is an int, so the replay is exact)."""
        self.weighted = True
        est = self.est_counts
        for bucket, n in self.counts.items():
            total = WeightedTotal()
            total.ints = n
            est[bucket] = total

    def add(self, duration: int, weighted_count) -> None:
        bucket = duration.bit_length()
        counts = self.counts
        if not self.weighted:
            if weighted_count == 1:
                counts[bucket] = counts.get(bucket, 0) + 1
                return
            self._promote()
        counts[bucket] = counts.get(bucket, 0) + 1
        total = self.est_counts.get(bucket)
        if total is None:
            total = self.est_counts[bucket] = WeightedTotal()
        total.add(weighted_count)

    def merge(self, other: "Log2Histogram") -> None:
        if other.weighted and not self.weighted:
            self._promote()
        counts = self.counts
        for bucket, n in other.counts.items():
            counts[bucket] = counts.get(bucket, 0) + n
        if not self.weighted:
            return
        est = self.est_counts
        if other.weighted:
            for bucket, total in other.est_counts.items():
                existing = est.get(bucket)
                if existing is None:
                    existing = est[bucket] = WeightedTotal()
                existing.merge(total)
        else:
            for bucket, n in other.counts.items():
                existing = est.get(bucket)
                if existing is None:
                    existing = est[bucket] = WeightedTotal()
                existing.ints += n

    def payload(self) -> dict:
        buckets = sorted(self.counts)
        counts = [self.counts[b] for b in buckets]
        if not self.weighted:
            return {"buckets": buckets, "counts": counts, "est_counts": list(counts)}
        return {
            "buckets": buckets,
            "counts": counts,
            "est_counts": [self.est_counts[b].value for b in buckets],
        }


class SiteTimeline:
    """Per-allocation-site temporal profile: the site's binned drag
    series plus lifetime and drag-time histograms — the substrate the
    cold-object detector (ROADMAP) needs: creation/last-use density
    over the byte clock, attributed to sites."""

    __slots__ = (
        "label",
        "count",
        "total_bytes",
        "total_drag",
        "_est_drag",
        "drag_series",
        "lifetime_hist",
        "drag_hist",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.count = 0
        self.total_bytes = 0
        self.total_drag = 0
        # None until the first weighted contribution: at full rate the
        # observed total IS the estimate.
        self._est_drag: Optional[WeightedTotal] = None
        self.drag_series = BinnedSeries()
        self.lifetime_hist = Log2Histogram()
        self.drag_hist = Log2Histogram()

    @property
    def est_drag(self):
        est = self._est_drag
        return self.total_drag if est is None else est.value

    def merge(self, other: "SiteTimeline") -> None:
        if other.label != self.label:
            raise ValueError(f"cannot merge {other.label!r} into {self.label!r}")
        if other._est_drag is not None and self._est_drag is None:
            est = self._est_drag = WeightedTotal()
            est.ints = self.total_drag
        self.count += other.count
        self.total_bytes += other.total_bytes
        self.total_drag += other.total_drag
        if self._est_drag is not None:
            if other._est_drag is not None:
                self._est_drag.merge(other._est_drag)
            else:
                self._est_drag.ints += other.total_drag
        self.drag_series.merge(other.drag_series)
        self.lifetime_hist.merge(other.lifetime_hist)
        self.drag_hist.merge(other.drag_hist)


class TimelineBuilder:
    """Incremental, mergeable heap timeline over the byte clock.

    Feed it one :class:`ObjectRecord` at a time (:meth:`add`, or via
    :class:`TimelineSink` during a live run); it maintains the three
    global Figure-2 series, per-site drag series and histograms for
    *every* site (pruning to top-K happens only at :meth:`payload`
    time — mid-stream pruning would make merges order-dependent), the
    exact edge-event maps backing :meth:`curve`, and the deep-GC
    snapshot markers.
    """

    __slots__ = (
        "bin_bytes",
        "object_count",
        "total_bytes",
        "total_drag",
        "_est_object_count",
        "_est_total_bytes",
        "_est_total_drag",
        "sampled",
        "end_time",
        "last_time",
        "events",
        "sites",
        "samples",
        "_s_reachable",
        "_s_in_use",
        "_ev_reachable",
        "_ev_in_use",
        "_ev_drag",
    )

    def __init__(self, bin_bytes: int = DEFAULT_BIN_BYTES) -> None:
        if bin_bytes < 1:
            raise ValueError(f"bin_bytes must be >= 1, got {bin_bytes}")
        self.bin_bytes = int(bin_bytes)
        self.object_count = 0
        self.total_bytes = 0
        self.total_drag = 0
        # All three stay None until the first weighted record; the
        # observed int totals double as the estimates until then.
        self._est_object_count: Optional[WeightedTotal] = None
        self._est_total_bytes: Optional[WeightedTotal] = None
        self._est_total_drag: Optional[WeightedTotal] = None
        self.sampled = False
        self.end_time: Optional[int] = None
        self.last_time = 0
        # The global drag series and the global lifetime/drag
        # histograms are NOT maintained here: every record belongs to
        # exactly one site, so they are the associative fold of the
        # per-site ones and are derived at payload time instead of
        # being paid for on the per-record hot path.
        self._s_reachable = BinnedSeries()
        self._s_in_use = BinnedSeries()
        # Edge events as flat [t0, ±size0, t1, ±size1, ...] append
        # logs, compacted to a {time: ±bytes} map only in :meth:`curve`
        # — appends are cheaper than dict upserts on mostly-unique
        # byte-clock keys.
        self.events: Dict[str, List[int]] = {kind: [] for kind in KINDS}
        self._ev_reachable = self.events["reachable"]
        self._ev_in_use = self.events["in_use"]
        self._ev_drag = self.events["drag"]
        self.sites: Dict[str, SiteTimeline] = {}
        self.samples: List[List[int]] = []

    # -- ingestion --------------------------------------------------------

    def _materialize_est(self) -> WeightedTotal:
        """First weighted record: seed the est totals with the observed
        ints accumulated so far (exactly what eager weight-1.0
        accumulation would hold)."""
        count = WeightedTotal()
        count.ints = self.object_count
        total_bytes = WeightedTotal()
        total_bytes.ints = self.total_bytes
        total_drag = WeightedTotal()
        total_drag.ints = self.total_drag
        self._est_object_count = count
        self._est_total_bytes = total_bytes
        self._est_total_drag = total_drag
        return count

    def add(self, record: ObjectRecord) -> None:
        # Hot path: one call per reclaimed object during a live run.
        # Raw fields are read once and every derived quantity (interval
        # endpoints, drag, lifetime, weighted_*) is computed locally —
        # the ObjectRecord properties recompute on each access, which
        # profiles as the dominant cost when done per kind.
        size = record.size
        weight = record.weight
        creation = record.creation_time
        last_use = record.last_use_time
        collection = record.collection_time
        never_used = last_use == 0
        drag_start = creation if never_used else last_use
        drag_time = collection - drag_start
        if drag_time < 0:
            drag_time = 0
        drag = size * drag_time
        lifetime = collection - creation
        if lifetime < 0:
            lifetime = 0
        est_count = self._est_object_count
        if weight != 1.0 and est_count is None:
            est_count = self._materialize_est()
        self.object_count += 1
        self.total_bytes += size
        self.total_drag += drag
        if est_count is None:
            weighted_count = 1
            weighted_drag = drag
        elif weight == 1.0:
            weighted_count = 1
            weighted_drag = drag
            est_count.ints += 1
            self._est_total_bytes.ints += size
            self._est_total_drag.ints += drag
        else:
            self.sampled = True
            weighted_count = weight
            weighted_drag = weight * drag
            est_count.add(weight)
            self._est_total_bytes.add(weight * size)
            self._est_total_drag.add(weighted_drag)
        if collection > self.last_time:
            self.last_time = collection
        bin_bytes = self.bin_bytes
        fast = weight == 1.0
        # Inlined _interval(record, kind) for the three global kinds,
        # with the int-only BinnedSeries fast path unrolled in place
        # (the method call itself is measurable at this call rate; the
        # weighted/promoted path still delegates).  The arithmetic is
        # pinned against BinnedSeries.add by the conservation asserts
        # in tests/obs/test_timeline.py: per-series bin sums must equal
        # independently-computed exact space-time totals.
        if collection > creation:
            s = self._s_reachable
            if fast and not s.weighted:
                first = creation // bin_bytes
                last = (collection - 1) // bin_bytes
                edge = s.edge
                if first == last:
                    edge[first] = edge.get(first, 0) + size * (collection - creation)
                else:
                    edge[first] = edge.get(first, 0) + size * ((first + 1) * bin_bytes - creation)
                    edge[last] = edge.get(last, 0) + size * (collection - last * bin_bytes)
                    if last > first + 1:
                        body = size * bin_bytes
                        full = s.full
                        full[first + 1] = full.get(first + 1, 0) + body
                        full[last] = full.get(last, 0) - body
            else:
                s.add(creation, collection, size, weight, bin_bytes)
            self._ev_reachable.extend((creation, size, collection, -size))
        if not never_used and last_use > creation:
            s = self._s_in_use
            if fast and not s.weighted:
                first = creation // bin_bytes
                last = (last_use - 1) // bin_bytes
                edge = s.edge
                if first == last:
                    edge[first] = edge.get(first, 0) + size * (last_use - creation)
                else:
                    edge[first] = edge.get(first, 0) + size * ((first + 1) * bin_bytes - creation)
                    edge[last] = edge.get(last, 0) + size * (last_use - last * bin_bytes)
                    if last > first + 1:
                        body = size * bin_bytes
                        full = s.full
                        full[first + 1] = full.get(first + 1, 0) + body
                        full[last] = full.get(last, 0) - body
            else:
                s.add(creation, last_use, size, weight, bin_bytes)
            self._ev_in_use.extend((creation, size, last_use, -size))
        label = record.site_label
        site = self.sites.get(label)
        if site is None:
            site = self.sites[label] = SiteTimeline(label)
        # Per-site fold, inlined: this loop is the only writer —
        # SiteTimeline itself only knows how to merge.
        est = site._est_drag
        if not fast and est is None:
            est = site._est_drag = WeightedTotal()
            est.ints = site.total_drag
        site.count += 1
        site.total_bytes += size
        site.total_drag += drag
        if est is not None:
            if fast:
                est.ints += drag
            else:
                est.add(weighted_drag)
        hist = site.lifetime_hist
        if fast and not hist.weighted:
            bucket = lifetime.bit_length()
            counts = hist.counts
            counts[bucket] = counts.get(bucket, 0) + 1
        else:
            hist.add(lifetime, weighted_count)
        hist = site.drag_hist
        if fast and not hist.weighted:
            bucket = drag_time.bit_length()
            counts = hist.counts
            counts[bucket] = counts.get(bucket, 0) + 1
        else:
            hist.add(drag_time, weighted_count)
        if collection > drag_start:
            s = site.drag_series
            if fast and not s.weighted:
                first = drag_start // bin_bytes
                last = (collection - 1) // bin_bytes
                edge = s.edge
                if first == last:
                    edge[first] = edge.get(first, 0) + size * (collection - drag_start)
                else:
                    edge[first] = edge.get(first, 0) + size * ((first + 1) * bin_bytes - drag_start)
                    edge[last] = edge.get(last, 0) + size * (collection - last * bin_bytes)
                    if last > first + 1:
                        body = size * bin_bytes
                        full = s.full
                        full[first + 1] = full.get(first + 1, 0) + body
                        full[last] = full.get(last, 0) - body
            else:
                s.add(drag_start, collection, size, weight, bin_bytes)
            self._ev_drag.extend((drag_start, size, collection, -size))

    def add_marker(self, time: int, reachable_bytes: int, object_count: int) -> None:
        """Record one deep-GC safepoint marker (a heap sample)."""
        self.samples.append([time, reachable_bytes, object_count])
        if time > self.last_time:
            self.last_time = time

    def add_sample(self, sample) -> None:
        self.add_marker(sample.time, sample.reachable_bytes, sample.object_count)

    def note_end(self, end_time: Optional[int]) -> None:
        if end_time is None:
            return
        if self.end_time is None or end_time > self.end_time:
            self.end_time = end_time
        if end_time > self.last_time:
            self.last_time = end_time

    def consume(self, records) -> "TimelineBuilder":
        for record in records:
            self.add(record)
        return self

    # -- merge (the shard primitive) --------------------------------------

    def empty_like(self) -> "TimelineBuilder":
        return TimelineBuilder(bin_bytes=self.bin_bytes)

    def merge(self, other: "TimelineBuilder") -> "TimelineBuilder":
        if other.bin_bytes != self.bin_bytes:
            raise ValueError(
                f"cannot merge timelines with bin_bytes {other.bin_bytes} != {self.bin_bytes}"
            )
        if other._est_object_count is not None and self._est_object_count is None:
            self._materialize_est()
        self.object_count += other.object_count
        self.total_bytes += other.total_bytes
        self.total_drag += other.total_drag
        est_count = self._est_object_count
        if est_count is not None:
            if other._est_object_count is not None:
                est_count.merge(other._est_object_count)
                self._est_total_bytes.merge(other._est_total_bytes)
                self._est_total_drag.merge(other._est_total_drag)
            else:
                est_count.ints += other.object_count
                self._est_total_bytes.ints += other.total_bytes
                self._est_total_drag.ints += other.total_drag
        self.sampled = self.sampled or other.sampled
        self._s_reachable.merge(other._s_reachable)
        self._s_in_use.merge(other._s_in_use)
        for kind in KINDS:
            self.events[kind].extend(other.events[kind])
        for label, theirs in other.sites.items():
            mine = self.sites.get(label)
            if mine is None:
                mine = self.sites[label] = SiteTimeline(label)
            mine.merge(theirs)
        self.samples.extend(other.samples)
        self.note_end(other.end_time)
        if other.last_time > self.last_time:
            self.last_time = other.last_time
        return self

    # -- views ------------------------------------------------------------

    @property
    def span(self) -> int:
        """Byte-clock extent of the timeline (declared end when known)."""
        return self.end_time if self.end_time is not None else self.last_time

    def bin_count(self) -> int:
        span = self.span
        if span <= 0:
            return 0
        return (span + self.bin_bytes - 1) // self.bin_bytes

    def curve(self, kind: str = "reachable") -> HeapCurve:
        """The *exact* batch heap curve — bit-identical to
        ``curve_from_records(records, kind)`` over the same records
        (same event times, same prefix sums), kept so Figure-2 plots
        can come straight off the streaming builder."""
        log = self.events[kind]
        events: Dict[int, int] = {}
        for i in range(0, len(log), 2):
            t = log[i]
            events[t] = events.get(t, 0) + log[i + 1]
        return curve_from_events(events)

    def _fold_sites(self, attr: str, empty):
        """Global view of a per-site accumulator: the associative fold
        over every site (each record lands in exactly one site, and the
        cells are int sums / Shewchuk expansions, so the fold equals
        what eager global accumulation would have produced)."""
        for site in self.sites.values():
            empty.merge(getattr(site, attr))
        return empty

    @property
    def est_object_count(self):
        est = self._est_object_count
        return self.object_count if est is None else est.value

    @property
    def est_total_bytes(self):
        est = self._est_total_bytes
        return self.total_bytes if est is None else est.value

    @property
    def est_total_drag(self):
        est = self._est_total_drag
        return self.total_drag if est is None else est.value

    @property
    def effective_sample_rate(self) -> float:
        est = self.est_total_bytes
        return self.total_bytes / est if est > 0 else 1.0

    def payload(self, top: Optional[int] = 5, include_samples: bool = True) -> dict:
        """JSON-ready timeline: the payload served by ``GET /timeline``
        and compared verbatim in the merge-equals-batch proof.  Every
        field is a deterministic function of the record *set* (plus
        markers when ``include_samples``), never of arrival order."""
        nbins = self.bin_count()
        by_kind = {
            "reachable": self._s_reachable,
            "in_use": self._s_in_use,
            "drag": self._fold_sites("drag_series", BinnedSeries()),
        }
        series = {}
        for kind in KINDS:
            s = by_kind[kind]
            series[kind] = {
                "values": s.values(nbins),
                "est_values": s.est_values(nbins),
            }
        ranked = sorted(self.sites.values(), key=lambda s: (-s.est_drag, s.label))
        if top is not None:
            ranked = ranked[:top]
        est_total_drag = self.est_total_drag
        sites = []
        for rank, site in enumerate(ranked, 1):
            sites.append(
                {
                    "rank": rank,
                    "site": site.label,
                    "objects": site.count,
                    "bytes": site.total_bytes,
                    "drag": site.total_drag,
                    "est_drag": site.est_drag,
                    "drag_share": (
                        site.est_drag / est_total_drag if est_total_drag > 0 else 0.0
                    ),
                    "values": site.drag_series.values(nbins),
                    "est_values": site.drag_series.est_values(nbins),
                    "lifetime_hist": site.lifetime_hist.payload(),
                    "drag_hist": site.drag_hist.payload(),
                }
            )
        est_total_bytes = self.est_total_bytes
        out = {
            "bin_bytes": self.bin_bytes,
            "bins": nbins,
            "end_time": self.end_time,
            "last_time": self.last_time,
            "objects": self.object_count,
            "est_objects": self.est_object_count,
            "total_bytes": self.total_bytes,
            "est_total_bytes": est_total_bytes,
            "total_drag": self.total_drag,
            "est_total_drag": est_total_drag,
            "sampled": self.sampled,
            "effective_sample_rate": (
                self.total_bytes / est_total_bytes if est_total_bytes > 0 else 1.0
            ),
            "series": series,
            "site_count": len(self.sites),
            "sites": sites,
            "lifetime_hist": self._fold_sites("lifetime_hist", Log2Histogram()).payload(),
            "drag_hist": self._fold_sites("drag_hist", Log2Histogram()).payload(),
        }
        if include_samples:
            out["samples"] = sorted(self.samples)
        return out


class TimelineSink(ProfileSink):
    """Attach a :class:`TimelineBuilder` to a live profiled run."""

    def __init__(
        self,
        builder: Optional[TimelineBuilder] = None,
        bin_bytes: int = DEFAULT_BIN_BYTES,
    ) -> None:
        self.builder = builder if builder is not None else TimelineBuilder(bin_bytes=bin_bytes)

    def on_record(self, record) -> None:
        self.builder.add(record)

    def on_sample(self, sample) -> None:
        self.builder.add_sample(sample)

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        self.builder.note_end(end_time)


# -- text rendering (shared by `repro timeline`, watch --follow, and the
#    example chart scripts) ------------------------------------------------

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60, vmax=None) -> str:
    """Render a numeric series as a unicode sparkline of ``width``
    columns (peak-preserving: each column shows the max of its bin
    range, so narrow spikes survive downsampling)."""
    n = len(values)
    if n == 0:
        return ""
    if width <= 0:
        width = n
    cols = min(width, n)
    peaks = []
    for col in range(cols):
        lo = col * n // cols
        hi = max(lo + 1, (col + 1) * n // cols)
        peaks.append(max(values[lo:hi]))
    top = max(peaks) if vmax is None else vmax
    if top <= 0:
        return SPARK_CHARS[0] * cols
    out = []
    levels = len(SPARK_CHARS)
    for peak in peaks:
        if peak <= 0:
            out.append(SPARK_CHARS[0])
        else:
            out.append(SPARK_CHARS[min(levels - 1, int(peak * levels / top))])
    return "".join(out)


def format_bytes(n) -> str:
    if n >= MB:
        return f"{n / MB:.1f} MB"
    if n >= 1024:
        return f"{n / 1024.0:.1f} KB"
    return f"{int(n)} B"


def format_axis(t_max, v_max) -> str:
    """The shared x/y axis caption (byte clock vs heap bytes) — also
    used by :func:`repro.core.report.heap_profile_chart`."""
    return f"0 .. {t_max / MB:.1f} MB allocated   (y max {v_max / MB:.2f} MB)"


def payload_series(payload: dict, kind: str) -> list:
    """The preferred display series for ``kind``: weight-corrected
    (``est_values``) when the stream was sampled, observed otherwise
    (they are identical at full rate)."""
    entry = payload["series"][kind]
    return entry["est_values"] if payload.get("sampled") else entry["values"]


def _site_series(payload: dict, site: dict) -> list:
    return site["est_values"] if payload.get("sampled") else site["values"]


def render_histogram_text(hist: dict, width: int = 40) -> List[str]:
    """Rows of a :class:`Log2Histogram` payload as text bars."""
    buckets = hist["buckets"]
    if not buckets:
        return ["  (empty)"]
    counts = hist["est_counts"]
    top = max(counts)
    lines = []
    for bucket, count in zip(buckets, counts):
        if bucket == 0:
            label = f"{'0':>10} .. {'0':<10}"
        else:
            label = f"{format_bytes(1 << (bucket - 1)):>10} .. {format_bytes(1 << bucket):<10}"
        bar = "#" * max(1, int(count * width / top)) if top > 0 and count > 0 else ""
        shown = int(count) if count == int(count) else round(count, 1)
        lines.append(f"  {label} |{bar} {shown}")
    return lines


def render_timeline_text(
    payload: dict,
    width: int = 60,
    top: Optional[int] = None,
    histogram: bool = True,
) -> str:
    """Text dashboard for a timeline payload: global sparkline rows on
    a common scale, the shared axis caption, snapshot-marker count,
    top-site drag strips, and the global lifetime histogram."""
    bins = payload["bins"]
    bin_bytes = payload["bin_bytes"]
    span = payload["end_time"] if payload["end_time"] is not None else payload["last_time"]
    lines = [f"=== heap timeline: {bins} bins x {format_bytes(bin_bytes)} ==="]
    if bins == 0:
        lines.append("(empty timeline)")
        return "\n".join(lines)
    rows = [(kind.replace("_", "-"), payload_series(payload, kind)) for kind in KINDS]
    # One common y scale so reachable/in-use/drag heights are comparable
    # (per-bin integrals divided by bin width == average bytes per bin).
    vmax = max(max(series) for _, series in rows)
    for name, series in rows:
        spark = sparkline(series, width=width, vmax=vmax)
        peak = max(series) / bin_bytes
        lines.append(f"{name:<9} {spark}  peak {format_bytes(peak)}")
    lines.append(f"{'':9} {format_axis(span, vmax / bin_bytes)}")
    if payload.get("sampled"):
        rate = payload.get("effective_sample_rate", 1.0)
        lines.append(
            f"[sampled] effective rate {rate:.6f} — series are weight-corrected estimates"
        )
    samples = payload.get("samples")
    if samples is not None:
        lines.append(f"snapshot markers: {len(samples)} deep-GC samples")
    sites = payload.get("sites") or []
    if top is not None:
        sites = sites[:top]
    if sites:
        lines.append("top sites by drag:")
        for site in sites:
            spark = sparkline(_site_series(payload, site), width=width)
            drag_mb2 = site["est_drag"] / (MB * MB)
            share = 100.0 * site["drag_share"]
            lines.append(
                f"  #{site['rank']} {site['site']:<28} {spark}"
                f"  drag {drag_mb2:.4f} MB^2 ({share:.1f}%)"
            )
    if histogram and payload.get("lifetime_hist"):
        lines.append("lifetime histogram (byte-clock):")
        lines.extend(render_histogram_text(payload["lifetime_hist"]))
    return "\n".join(lines)
