"""Constructor purity for dead-code removal and lazy allocation.

§3.3.2: removing an allocation also removes its constructor call, so
"we must guarantee that the constructor is the only code that references
the object and that the constructor has no influence on the rest of the
program, e.g., it does not update other objects or static variables and
it cannot throw an exception for which there may be a handler".

§3.3.3 adds, for lazy allocation: "the constructor may not depend on
program state, e.g., it must have no parameters or parameters that are
constant and it may not read program state (for example, access a
static variable)".

This analysis works on the AST (it reasons about *which object* a write
targets, which the stack bytecode obscures). It is deliberately strict:
anything it cannot prove harmless makes the constructor impure.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.mjava import ast
from repro.mjava.sema import ClassTable


class PurityResult:
    """Outcome of analysing one constructor."""

    __slots__ = ("class_name", "pure", "reads_statics", "reasons")

    def __init__(self, class_name: str, pure: bool, reads_statics: bool, reasons: List[str]) -> None:
        self.class_name = class_name
        self.pure = pure
        self.reads_statics = reads_statics
        self.reasons = reasons

    @property
    def removal_safe(self) -> bool:
        """Safe to delete a ``new C(...)`` whose result is never used
        (modulo the program-wide exception-handler check)."""
        return self.pure

    @property
    def lazy_safe(self) -> bool:
        """Safe to postpone a ``new C(...)`` to first use: pure and
        independent of mutable program state."""
        return self.pure and not self.reads_statics

    def __repr__(self) -> str:
        return f"<purity {self.class_name} pure={self.pure} reads_statics={self.reads_statics}>"


class _CtorAnalyzer:
    def __init__(self, table: ClassTable, class_name: str, in_progress: Set[str]) -> None:
        self.table = table
        self.info = table.get(class_name)
        self.in_progress = in_progress
        self.reasons: List[str] = []
        self.reads_statics = False
        self.locals: Set[str] = set()

    def fail(self, reason: str, pos=None) -> None:
        where = f" at {pos}" if pos else ""
        self.reasons.append(reason + where)

    # -- entry ---------------------------------------------------------------

    def run(self) -> PurityResult:
        # Superclass constructor must be pure too.
        if self.info.super_name is not None:
            sup = ctor_purity(self.table, self.info.super_name, _in_progress=self.in_progress)
            if not sup.pure:
                self.fail(f"superclass constructor {self.info.super_name} is impure")
            self.reads_statics |= sup.reads_statics
        for field in self.info.decl.fields:
            if not field.mods.static and field.init is not None:
                self.check_expr(field.init)
        ctor = self.info.ctor
        if ctor is not None:
            self.locals.update(p.name for p in ctor.params)
            for stmt in ctor.body.stmts:
                self.check_stmt(stmt)
        return PurityResult(
            self.info.name,
            pure=not self.reasons,
            reads_statics=self.reads_statics,
            reasons=self.reasons,
        )

    # -- helpers ---------------------------------------------------------------

    def _is_own_field(self, name: str) -> bool:
        return self.table.resolve_field(self.info.name, name) is not None

    def _is_local(self, name: str) -> bool:
        return name in self.locals

    # -- statements ---------------------------------------------------------------

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self.check_stmt(inner)
        elif isinstance(stmt, ast.VarDecl):
            self.locals.add(stmt.name)
            if stmt.init is not None:
                self.check_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            self.check_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond)
            self.check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.check_stmt(stmt.otherwise)
        elif isinstance(stmt, (ast.While,)):
            self.check_expr(stmt.cond)
            self.check_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.check_expr(stmt.cond)
            if stmt.update is not None:
                self.check_stmt(stmt.update)
            self.check_stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_expr(stmt.value)
        elif isinstance(stmt, ast.SuperCall):
            for arg in stmt.args:
                self.check_expr(arg)
        elif isinstance(stmt, ast.Throw):
            self.fail("constructor throws explicitly", stmt.pos)
        elif isinstance(stmt, ast.Try):
            self.fail("constructor contains try/catch", stmt.pos)
        elif isinstance(stmt, ast.Synchronized):
            self.fail("constructor synchronizes", stmt.pos)
        elif isinstance(stmt, ast.ExprStmt):
            # A bare expression statement is only pure if the expression
            # is (e.g. `new Pure();`); method calls are rejected there.
            self.check_expr(stmt.expr)
        else:
            self.fail(f"unsupported statement {type(stmt).__name__}", stmt.pos)

    def check_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            if self._is_local(target.ident):
                pass
            elif self._is_own_field(target.ident):
                resolved = self.table.resolve_field(self.info.name, target.ident)
                if resolved[1].mods.static:
                    self.fail(f"writes static field {target.ident}", stmt.pos)
            else:
                self.fail(f"writes unknown name {target.ident}", stmt.pos)
        elif isinstance(target, ast.FieldAccess):
            if not isinstance(target.target, ast.This):
                self.fail("writes a field of another object", stmt.pos)
        elif isinstance(target, ast.Index):
            # Writes into arrays the constructor itself can see via a
            # local or its own fields; such arrays are construction-fresh
            # in every pattern we accept.
            array = target.array
            ok = (
                isinstance(array, ast.Name)
                and (self._is_local(array.ident) or self._is_own_field(array.ident))
            ) or (isinstance(array, ast.FieldAccess) and isinstance(array.target, ast.This))
            if not ok:
                self.fail("writes into a foreign array", stmt.pos)
            self.check_expr(target.index)
        else:
            self.fail("unsupported assignment target", stmt.pos)
        self.check_expr(stmt.value)

    # -- expressions ----------------------------------------------------------------

    def check_expr(self, expr: ast.Expr) -> None:
        if isinstance(
            expr,
            (ast.IntLit, ast.CharLit, ast.BoolLit, ast.StringLit, ast.NullLit, ast.This),
        ):
            return
        if isinstance(expr, ast.Name):
            if self._is_local(expr.ident):
                return
            resolved = self.table.resolve_field(self.info.name, expr.ident)
            if resolved is not None:
                if resolved[1].mods.static:
                    self.reads_statics = True
                return
            self.fail(f"reads unknown name {expr.ident}", expr.pos)
            return
        if isinstance(expr, ast.FieldAccess):
            if isinstance(expr.target, ast.This):
                return
            if isinstance(expr.target, ast.Name) and self.table.has(expr.target.ident) \
                    and not self._is_local(expr.target.ident) \
                    and not self._is_own_field(expr.target.ident):
                self.reads_statics = True  # static field read
                return
            # arr.length is harmless
            if expr.name == "length":
                self.check_expr(expr.target)
                return
            self.fail("reads a field of another object", expr.pos)
            return
        if isinstance(expr, ast.Index):
            self.check_expr(expr.array)
            self.check_expr(expr.index)
            return
        if isinstance(expr, (ast.Unary,)):
            self.check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self.check_expr(expr.left)
            self.check_expr(expr.right)
            return
        if isinstance(expr, (ast.Cast,)):
            self.check_expr(expr.value)
            return
        if isinstance(expr, ast.InstanceOf):
            self.check_expr(expr.value)
            return
        if isinstance(expr, ast.New):
            nested = ctor_purity(self.table, expr.class_name, _in_progress=self.in_progress)
            if not nested.pure:
                self.fail(f"allocates impure {expr.class_name}", expr.pos)
            self.reads_statics |= nested.reads_statics
            for arg in expr.args:
                self.check_expr(arg)
            return
        if isinstance(expr, ast.NewArray):
            self.check_expr(expr.length)
            return
        if isinstance(expr, (ast.Call, ast.SuperMethodCall)):
            self.fail("calls a method", expr.pos)
            return
        self.fail(f"unsupported expression {type(expr).__name__}", expr.pos)


def ctor_purity(
    table: ClassTable,
    class_name: str,
    _in_progress: Optional[Set[str]] = None,
) -> PurityResult:
    """Analyze the constructor of ``class_name`` (recursing into the
    constructors it invokes, with cycle protection)."""
    in_progress = _in_progress if _in_progress is not None else set()
    if class_name in in_progress:
        # Recursive construction: assume pure at the back-edge; a real
        # impurity elsewhere still fails the analysis.
        return PurityResult(class_name, pure=True, reads_statics=False, reasons=[])
    in_progress.add(class_name)
    try:
        return _CtorAnalyzer(table, class_name, in_progress).run()
    finally:
        in_progress.discard(class_name)
