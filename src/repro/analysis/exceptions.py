"""Exception analysis (§5.5).

"The precise exception model of Java requires careful analysis in order
to enable the movement of code or the removal of code. Our
transformations involve code removal, thus the removed code must be
analyzed for the exceptions that it can throw. Then, the rest of the
code must be analyzed to verify that none of these exceptions could be
caught by an exception handler."

``ThrownExceptions`` computes, per method, the set of mini-Java
exception classes that may escape it — implicit VM exceptions (NPE,
bounds, arithmetic, class-cast, OOM) plus explicit throws — propagated
over the call graph, with covering catch clauses subtracted at each
call site. The special token ``ANY`` marks throws whose type could not
be bounded.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Set

from repro.analysis.callgraph import CallGraph, MethodKey
from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod, CompiledProgram

ANY = "<any-throwable>"

_IMPLICIT = {
    Op.GETFIELD: ("NullPointerException",),
    Op.PUTFIELD: ("NullPointerException",),
    Op.ARRAYLEN: ("NullPointerException",),
    Op.MONENTER: ("NullPointerException",),
    Op.MONEXIT: ("NullPointerException",),
    Op.ALOAD: ("NullPointerException", "IndexOutOfBoundsException"),
    Op.ASTORE: ("NullPointerException", "IndexOutOfBoundsException"),
    Op.DIV: ("ArithmeticException",),
    Op.MOD: ("ArithmeticException",),
    Op.CHECKCAST: ("ClassCastException",),
    Op.NEWARRAY: ("IndexOutOfBoundsException", "OutOfMemoryError"),
    Op.NEWINIT: ("OutOfMemoryError",),
    Op.TOSTR: ("OutOfMemoryError",),
    Op.CONCAT: ("OutOfMemoryError", "NullPointerException"),
    Op.CONST_STRING: ("OutOfMemoryError",),
}

_CALL_OPS = (Op.INVOKEV, Op.INVOKESTATIC, Op.INVOKESUPER, Op.NEWINIT, Op.SUPERINIT)


class ThrownExceptions:
    """May-throw sets per method over a call graph."""

    def __init__(self, program: CompiledProgram, callgraph: Optional[CallGraph] = None) -> None:
        self.program = program
        self.callgraph = callgraph or CallGraph(program)
        self.may_throw: Dict[MethodKey, FrozenSet[str]] = {}
        self._solve()

    # -- local facts -----------------------------------------------------------

    def _explicit_throw_types(self, method: CompiledMethod) -> Set[str]:
        """Bound the types a THROW in this method can raise: throwables
        allocated here plus exception classes of this method's own
        handlers (rethrow); ANY if a THROW exists but nothing bounds it."""
        has_throw = any(i.op == Op.THROW for i in method.code)
        if not has_throw:
            return set()
        types: Set[str] = set()
        for instr in method.code:
            if instr.op == Op.NEWINIT and self.program.is_subclass(
                instr.args[0], "Throwable"
            ):
                types.add(instr.args[0])
        for entry in method.exception_table:
            if entry.kind == "catch":
                types.add(entry.exc_class)
        return types or {ANY}

    def _escapes(self, method: CompiledMethod, pc: int, raised: Set[str]) -> Set[str]:
        """Subtract exceptions caught by handlers covering ``pc``."""
        remaining = set(raised)
        for entry in method.exception_table:
            if entry.kind != "catch" or not entry.covers(pc):
                continue
            remaining = {
                e
                for e in remaining
                if e == ANY and entry.exc_class != "Throwable"
                or (e != ANY and not self.program.is_subclass(e, entry.exc_class))
            }
        return remaining

    def _method_of(self, key: MethodKey) -> Optional[CompiledMethod]:
        cls = self.program.classes.get(key[0])
        if cls is None:
            return None
        if key[1] == "<init>":
            return cls.ctor
        if key[1] == "<clinit>":
            return cls.clinit
        return cls.methods.get(key[1])

    def _compute(self, key: MethodKey) -> FrozenSet[str]:
        method = self._method_of(key)
        if method is None or method.is_native:
            # Natives can raise the usual VM exceptions.
            return frozenset({"NullPointerException", "IndexOutOfBoundsException"})
        explicit = self._explicit_throw_types(method)
        out: Set[str] = set()
        for pc, instr in enumerate(method.code):
            raised: Set[str] = set(_IMPLICIT.get(instr.op, ()))
            if instr.op == Op.THROW:
                raised |= explicit
            if instr.op in _CALL_OPS:
                if instr.op == Op.INVOKEV:
                    name, argc = instr.args
                    targets = [
                        t for t in self.callgraph._virtual_targets(name, argc)
                    ]
                elif instr.op in (Op.NEWINIT, Op.SUPERINIT):
                    targets = [(instr.args[0], "<init>")]
                else:
                    cls_name, name, _ = instr.args
                    target = self.callgraph._static_target(cls_name, name)
                    targets = [target] if target else []
                for target in targets:
                    raised |= self.may_throw.get(target, frozenset())
            out |= self._escapes(method, pc, raised)
        return frozenset(out)

    def _solve(self) -> None:
        keys = list(self.callgraph.reachable)
        for key in keys:
            self.may_throw[key] = frozenset()
        worklist = deque(keys)
        in_list = set(keys)
        while worklist:
            key = worklist.popleft()
            in_list.discard(key)
            new = self._compute(key)
            if new != self.may_throw.get(key):
                self.may_throw[key] = new
                for caller in self.callgraph.callers_of(*key):
                    if caller not in in_list:
                        in_list.add(caller)
                        worklist.append(caller)

    # -- queries ------------------------------------------------------------------

    def of(self, class_name: str, method_name: str) -> FrozenSet[str]:
        return self.may_throw.get((class_name, method_name), frozenset())

    def program_has_handler_for(self, exc_class: str, include_library: bool = True) -> bool:
        """§3.3.2/§3.3.3 safety check: is there *any* handler in the
        program that could catch ``exc_class``? (For lazy allocation the
        paper checked there were no handlers for OutOfMemoryError.)"""
        for cls in self.program.classes.values():
            if cls.is_library and not include_library:
                continue
            methods = list(cls.methods.values())
            if cls.ctor is not None:
                methods.append(cls.ctor)
            if cls.clinit is not None:
                methods.append(cls.clinit)
            for method in methods:
                if method.is_native:
                    continue
                for entry in method.exception_table:
                    if entry.kind != "catch":
                        continue
                    if self.program.is_subclass(exc_class, entry.exc_class):
                        return True
        return False
