"""Instruction-level control-flow graphs over compiled bytecode.

Successors include fall-through, jump targets, and exception edges (an
instruction inside a protected region may transfer to the handler).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod

_BRANCH_OPS = {Op.JUMP, Op.JIF, Op.JIT}
_TERMINAL_OPS = {Op.RET, Op.RETV, Op.THROW}

# Ops that can raise a mini-Java exception and therefore have edges to
# covering handlers.
_MAY_THROW = {
    Op.GETFIELD,
    Op.PUTFIELD,
    Op.ALOAD,
    Op.ASTORE,
    Op.ARRAYLEN,
    Op.INVOKEV,
    Op.INVOKESTATIC,
    Op.INVOKESUPER,
    Op.NEWINIT,
    Op.SUPERINIT,
    Op.NEWARRAY,
    Op.DIV,
    Op.MOD,
    Op.CHECKCAST,
    Op.THROW,
    Op.MONENTER,
    Op.MONEXIT,
    Op.TOSTR,
    Op.CONCAT,
    Op.CONST_STRING,
}


class ControlFlowGraph:
    """Per-instruction successor/predecessor sets for one method."""

    def __init__(self, method: CompiledMethod) -> None:
        self.method = method
        n = len(method.code)
        self.succs: List[Set[int]] = [set() for _ in range(n)]
        self.preds: List[Set[int]] = [set() for _ in range(n)]
        self.exits: List[int] = []
        self.handler_entries: Dict[int, int] = {}  # handler pc -> var slot
        self._build()

    def _build(self) -> None:
        code = self.method.code
        n = len(code)
        for pc, instr in enumerate(code):
            op = instr.op
            if op == Op.JUMP:
                self._edge(pc, instr.args[0])
            elif op in (Op.JIF, Op.JIT):
                self._edge(pc, instr.args[0])
                if pc + 1 < n:
                    self._edge(pc, pc + 1)
            elif op in _TERMINAL_OPS:
                self.exits.append(pc)
            else:
                if pc + 1 < n:
                    self._edge(pc, pc + 1)
            if op in _MAY_THROW:
                for entry in self.method.exception_table:
                    if entry.kind == "catch" and entry.covers(pc):
                        self._edge(pc, entry.handler)
        for entry in self.method.exception_table:
            if entry.kind == "catch":
                self.handler_entries[entry.handler] = entry.var_slot

    def _edge(self, src: int, dst: int) -> None:
        if 0 <= dst < len(self.succs):
            self.succs[src].add(dst)
            self.preds[dst].add(src)

    def __len__(self) -> int:
        return len(self.succs)


def build_cfg(method: CompiledMethod) -> ControlFlowGraph:
    """Build the instruction-level CFG for one compiled method."""
    return ControlFlowGraph(method)
