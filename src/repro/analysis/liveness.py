"""Liveness analysis for local (reference) variables (§5.1, §5.3).

"Identifying program locations where a reference has no future use,
i.e., it is set before being used on every execution path. This
information can be passed to GC, as done in Agesen et al., so that the
root set is reduced at runtime. Alternatively, the program can be
transformed to assign null to dead references."

The analysis runs per method on the bytecode CFG (Agesen-style
method-at-a-time granularity, §5.3). Both consumers are implemented:

* :meth:`LivenessResult.dead_after` feeds the assign-null transformation
  (and the report of last-use points);
* :meth:`LivenessResult.live_slots_at` feeds the liveness-aided GC
  ablation (dead locals dropped from the root set).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow import solve_backward
from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod


class LivenessResult:
    """Live slot sets before/after every instruction of one method."""

    def __init__(self, method: CompiledMethod, cfg: ControlFlowGraph,
                 live_in: List[FrozenSet[int]], live_out: List[FrozenSet[int]]) -> None:
        self.method = method
        self.cfg = cfg
        self.live_in = live_in
        self.live_out = live_out

    def live_slots_at(self, pc: int) -> FrozenSet[int]:
        """Slots live immediately before executing ``pc``."""
        if 0 <= pc < len(self.live_in):
            return self.live_in[pc]
        return frozenset()

    def dead_after(self, pc: int, slot: int) -> bool:
        """Is ``slot`` dead immediately after ``pc`` executes?"""
        return slot not in self.live_out[pc]

    def last_use_points(self, slot: int) -> List[int]:
        """PCs that read ``slot`` while it is dead afterwards — the
        points where "a reference becomes no longer used"."""
        out = []
        for pc, instr in enumerate(self.method.code):
            if instr.op == Op.LOAD and instr.args[0] == slot:
                if slot not in self.live_out[pc]:
                    out.append(pc)
        return out

    def is_ref_slot(self, slot: int) -> bool:
        return self.method.slot_types[slot] == "ref"

    def slot_named(self, name: str) -> Optional[int]:
        try:
            return self.method.slot_names.index(name)
        except ValueError:
            return None


def _gen_kill_factory(method: CompiledMethod, cfg: ControlFlowGraph):
    def gen_kill(pc: int) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        instr = method.code[pc]
        if instr.op == Op.LOAD:
            return frozenset((instr.args[0],)), frozenset()
        if instr.op == Op.STORE:
            return frozenset(), frozenset((instr.args[0],))
        return frozenset(), frozenset()

    return gen_kill


def liveness(
    method: CompiledMethod,
    cfg: Optional[ControlFlowGraph] = None,
    order: str = "rpo",
) -> LivenessResult:
    """Compute live local slots for one method. ``order`` selects the
    worklist seeding (see :mod:`repro.analysis.dataflow`); the fixpoint
    is identical either way."""
    cfg = cfg or build_cfg(method)
    live_in, live_out = solve_backward(cfg, _gen_kill_factory(method, cfg), order=order)
    # Note: a catch handler's exception slot is written via the
    # exception table (not a STORE), so its liveness leaks conservatively
    # into the protected region. That is safe for both consumers: the
    # assign-null transform never targets catch slots, and for GC-root
    # filtering over-approximating liveness is always sound.
    return LivenessResult(method, cfg, live_in, live_out)
