"""Usage analysis (§5.1): fields that are set but never used.

"Finding variables that are set using side-effect free expressions, but
never used. This helps to find assignment statements that can be safely
eliminated." The paper's flagship example is java.util.Locale's table
of static variables assigned newly allocated objects that a given
program never reads.

The analysis scans bytecode reads/writes, scoped by visibility (§3.3.1):
a private field is only visible inside its declaring class, so only that
class's code is scanned; package/protected/public fields require the
whole program (we have a single "package"). Static field accesses carry
their declaring class in the bytecode; instance field accesses are
matched by name, which is exact because field shadowing is rejected at
compile time and name collisions across unrelated classes only make the
analysis more conservative.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod, CompiledProgram

FieldKey = Tuple[str, str]  # (declaring class, field name)


class FieldUsage:
    """Read/write facts for every field in a program."""

    def __init__(self, program: CompiledProgram, reachable_methods=None) -> None:
        self.program = program
        # Instance-field reads/writes by *name* (declaring class unknown
        # at the access), static ones by exact (class, name).
        self.instance_reads: Dict[str, List[CompiledMethod]] = {}
        self.instance_writes: Dict[str, List[CompiledMethod]] = {}
        self.static_reads: Dict[FieldKey, List[CompiledMethod]] = {}
        self.static_writes: Dict[FieldKey, List[CompiledMethod]] = {}
        methods = (
            list(reachable_methods) if reachable_methods is not None
            else program.all_methods()
        )
        for method in methods:
            if method.is_native:
                continue
            for instr in method.code:
                if instr.op == Op.GETFIELD:
                    self.instance_reads.setdefault(instr.args[0], []).append(method)
                elif instr.op == Op.PUTFIELD:
                    self.instance_writes.setdefault(instr.args[0], []).append(method)
                elif instr.op == Op.GETSTATIC:
                    key = (self._canonical_static(*instr.args), instr.args[1])
                    self.static_reads.setdefault(key, []).append(method)
                elif instr.op == Op.PUTSTATIC:
                    key = (self._canonical_static(*instr.args), instr.args[1])
                    self.static_writes.setdefault(key, []).append(method)

    def _canonical_static(self, class_name: str, field: str) -> str:
        """Resolve a static access to the declaring class."""
        current = class_name
        while current is not None:
            cls = self.program.classes.get(current)
            if cls is None:
                return class_name
            if field in cls.static_descriptors:
                return current
            current = cls.super_name
        return class_name

    # -- queries ------------------------------------------------------------

    def _scope_classes(self, declaring: str, visibility: str) -> Set[str]:
        if visibility == "private":
            return {declaring}
        return set(self.program.classes)

    def is_instance_field_read(self, declaring: str, field: str) -> bool:
        """Is the field read anywhere it is visible? For a private field
        only the declaring class can read it, so reads of a same-named
        field elsewhere do not count."""
        mods = self.program.classes[declaring].field_mods.get(field)
        scope = self._scope_classes(declaring, getattr(mods, "visibility", "package"))
        return any(m.class_name in scope for m in self.instance_reads.get(field, []))

    def is_static_field_read(self, declaring: str, field: str) -> bool:
        return bool(self.static_reads.get((declaring, field)))

    def written_never_read_statics(self) -> List[FieldKey]:
        """Static fields assigned (e.g. in <clinit>) but never read —
        the Locale pattern; their initializing assignments are dead."""
        out = []
        for name, cls in sorted(self.program.classes.items()):
            for field in cls.static_fields:
                key = (name, field)
                if self.static_writes.get(key) and not self.static_reads.get(key):
                    out.append(key)
        return out

    def written_never_read_instance_fields(self) -> List[FieldKey]:
        """Instance fields written but never read anywhere in scope."""
        out = []
        for name, cls in sorted(self.program.classes.items()):
            for field, declaring in cls.layout.declaring.items():
                if declaring != name:
                    continue  # report at the declaring class only
                if self.instance_writes.get(field) and not self.is_instance_field_read(
                    name, field
                ):
                    out.append((name, field))
        return out


def field_usage(program: CompiledProgram, reachable_methods=None) -> FieldUsage:
    """Run usage analysis; optionally restricted to call-graph-reachable
    methods (§5.4 — "(R)" rows of Table 5)."""
    return FieldUsage(program, reachable_methods)
