"""Indirect-usage analysis (§5.1).

"The main idea is that an object is never-used if none of its
references is ever dereferenced." The paper's example: a string in
javac assigned to an instance field; the field is never used *except
for assigning its value to other reference variables*, and those
variables are never used either — so the allocation can be removed.

We find fields whose every read feeds a *dead copy*: a bytecode
``GETFIELD f`` (or ``GETSTATIC``) immediately consumed by a store into
a local that is never subsequently loaded, or into another field that
is itself written-but-never-read. Any other read (argument passing,
receiver of a call, return, comparison, ...) counts as a potential
dereference and disqualifies the field.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.usage import FieldUsage, FieldKey
from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod, CompiledProgram


def _slot_ever_loaded(method: CompiledMethod, slot: int) -> bool:
    return any(i.op == Op.LOAD and i.args == (slot,) for i in method.code)


def _read_is_dead_copy(
    method: CompiledMethod,
    pc: int,
    dead_fields: Set[str],
    dead_statics: Set[FieldKey],
) -> bool:
    """Does the field read at ``pc`` only feed an unused variable?"""
    if pc + 1 >= len(method.code):
        return False
    nxt = method.code[pc + 1]
    if nxt.op == Op.STORE:
        return not _slot_ever_loaded(method, nxt.args[0])
    if nxt.op == Op.PUTFIELD:
        return nxt.args[0] in dead_fields
    if nxt.op == Op.PUTSTATIC:
        return (nxt.args[0], nxt.args[1]) in dead_statics
    return False


def indirectly_unused_fields(
    program: CompiledProgram,
    usage: FieldUsage = None,
) -> List[FieldKey]:
    """Fields that are written but only ever read into unused variables.

    Runs to a fixpoint: discovering that field g is (indirectly) unused
    can make a copy ``f -> g`` dead, which can make f unused too.
    """
    usage = usage or FieldUsage(program)
    # Start from directly-unused fields.
    dead_statics: Set[FieldKey] = set(usage.written_never_read_statics())
    dead_instance: Set[FieldKey] = set(usage.written_never_read_instance_fields())

    methods = [m for m in program.all_methods() if not m.is_native]

    def instance_candidates() -> List[FieldKey]:
        out = []
        for name, cls in program.classes.items():
            for field, declaring in cls.layout.declaring.items():
                if declaring == name and usage.instance_writes.get(field):
                    out.append((name, field))
        return out

    changed = True
    while changed:
        changed = False
        dead_names = {f for (_, f) in dead_instance}
        for key in instance_candidates():
            if key in dead_instance:
                continue
            _, field = key
            reads = []
            for method in methods:
                for pc, instr in enumerate(method.code):
                    if instr.op == Op.GETFIELD and instr.args[0] == field:
                        reads.append((method, pc))
            if not reads:
                continue  # handled by direct usage analysis
            if all(
                _read_is_dead_copy(m, pc, dead_names, dead_statics) for m, pc in reads
            ):
                dead_instance.add(key)
                changed = True
        for name, cls in program.classes.items():
            for field in cls.static_fields:
                key = (name, field)
                if key in dead_statics or not usage.static_writes.get(key):
                    continue
                reads = []
                for method in methods:
                    for pc, instr in enumerate(method.code):
                        if instr.op == Op.GETSTATIC and (
                            usage._canonical_static(*instr.args),
                            instr.args[1],
                        ) == key:
                            reads.append((method, pc))
                if not reads:
                    continue
                dead_names = {f for (_, f) in dead_instance}
                if all(
                    _read_is_dead_copy(m, pc, dead_names, dead_statics)
                    for m, pc in reads
                ):
                    dead_statics.add(key)
                    changed = True

    direct = set(usage.written_never_read_instance_fields()) | set(
        usage.written_never_read_statics()
    )
    indirect = (dead_instance | dead_statics) - direct
    return sorted(indirect)
