"""A small worklist dataflow framework over instruction-level CFGs.

Facts are frozensets; transfer functions are per-instruction gen/kill.
Both directions use union as the merge operator (may analyses), which is
all the Section-5 analyses need.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, FrozenSet, List, Tuple

from repro.analysis.cfg import ControlFlowGraph

GenKill = Tuple[FrozenSet, FrozenSet]  # (gen, kill)

EMPTY: FrozenSet = frozenset()


def solve_backward(
    cfg: ControlFlowGraph,
    gen_kill: Callable[[int], GenKill],
    boundary: FrozenSet = EMPTY,
) -> Tuple[List[FrozenSet], List[FrozenSet]]:
    """Backward may-analysis: returns (in_facts, out_facts) per pc.

    out[pc] = union of in[s] for s in succs(pc)   (boundary at exits)
    in[pc]  = gen(pc) | (out[pc] - kill(pc))
    """
    n = len(cfg)
    ins: List[FrozenSet] = [EMPTY] * n
    outs: List[FrozenSet] = [EMPTY] * n
    worklist = deque(range(n - 1, -1, -1))
    queued = [True] * n
    while worklist:
        pc = worklist.popleft()
        queued[pc] = False
        out = boundary if not cfg.succs[pc] else EMPTY
        for succ in cfg.succs[pc]:
            out = out | ins[succ]
        gen, kill = gen_kill(pc)
        new_in = gen | (out - kill)
        outs[pc] = out
        if new_in != ins[pc]:
            ins[pc] = new_in
            for pred in cfg.preds[pc]:
                if not queued[pred]:
                    queued[pred] = True
                    worklist.append(pred)
    return ins, outs


def solve_forward(
    cfg: ControlFlowGraph,
    gen_kill: Callable[[int], GenKill],
    entry: FrozenSet = EMPTY,
) -> Tuple[List[FrozenSet], List[FrozenSet]]:
    """Forward may-analysis: returns (in_facts, out_facts) per pc."""
    n = len(cfg)
    ins: List[FrozenSet] = [EMPTY] * n
    outs: List[FrozenSet] = [EMPTY] * n
    if n == 0:
        return ins, outs
    worklist = deque(range(n))
    queued = [True] * n
    while worklist:
        pc = worklist.popleft()
        queued[pc] = False
        in_fact = entry if pc == 0 else EMPTY
        for pred in cfg.preds[pc]:
            in_fact = in_fact | outs[pred]
        gen, kill = gen_kill(pc)
        new_out = gen | (in_fact - kill)
        ins[pc] = in_fact
        if new_out != outs[pc]:
            outs[pc] = new_out
            for succ in cfg.succs[pc]:
                if not queued[succ]:
                    queued[succ] = True
                    worklist.append(succ)
    return ins, outs
