"""A small worklist dataflow framework over instruction-level CFGs.

Facts are frozensets; transfer functions are per-instruction gen/kill.
Two merge operators are provided:

* **may** (union, BOTTOM = empty set) — :func:`solve_backward` /
  :func:`solve_forward`; what the Section-5 analyses (liveness, usage)
  need.
* **must** (intersection, TOP = a caller-supplied universe) —
  :func:`solve_backward_must` / :func:`solve_forward_must`; what the
  interprocedural "definitely used on all paths" facts of
  :mod:`repro.lint.interproc` need.

Worklists are seeded in reverse-postorder (forward) / postorder
(backward) so that facts flow in roughly topological order and each
node is usually visited O(loop-nesting) times instead of O(n).
``order="linear"`` seeds in raw instruction order regardless of
direction — the naive chaotic-iteration baseline that
``benchmarks/bench_lint_overhead.py`` measures against (for backward
analyses it is drastically worse; the previous hand-rolled reversed-pc
seeding was a special case of postorder that the DFS now formalizes
and keeps robust under irregular layouts). The fixpoint is unique
either way — order only changes how fast it is reached.

:data:`stats` records the inner-loop iteration count of the most
recent solve, for benchmarking.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.analysis.cfg import ControlFlowGraph

GenKill = Tuple[FrozenSet, FrozenSet]  # (gen, kill)

EMPTY: FrozenSet = frozenset()


class SolverStats:
    """Iteration counters for the most recent solver call (cumulative
    totals are kept as well so a batch of solves can be measured)."""

    __slots__ = ("last_iterations", "total_iterations")

    def __init__(self) -> None:
        self.last_iterations = 0
        self.total_iterations = 0

    def _record(self, iterations: int) -> None:
        self.last_iterations = iterations
        self.total_iterations += iterations

    def reset(self) -> None:
        self.last_iterations = 0
        self.total_iterations = 0


stats = SolverStats()


def _postorder(cfg: ControlFlowGraph) -> List[int]:
    """DFS postorder over successor edges from the entry (pc 0);
    unreachable pcs are appended afterwards so every node is seeded."""
    n = len(cfg)
    seen = [False] * n
    order: List[int] = []
    if n == 0:
        return order
    # Iterative DFS with an explicit stack of (node, child-iterator).
    stack: List[Tuple[int, List[int]]] = [(0, sorted(cfg.succs[0]))]
    seen[0] = True
    while stack:
        node, children = stack[-1]
        advanced = False
        while children:
            child = children.pop()
            if not seen[child]:
                seen[child] = True
                stack.append((child, sorted(cfg.succs[child])))
                advanced = True
                break
        if not advanced and stack and stack[-1][0] == node and not children:
            order.append(node)
            stack.pop()
    for pc in range(n):
        if not seen[pc]:
            order.append(pc)
    return order


def _seed_order(cfg: ControlFlowGraph, direction: str, order: str) -> List[int]:
    n = len(cfg)
    if order == "linear":
        return list(range(n))
    post = _postorder(cfg)
    if direction == "forward":
        return list(reversed(post))  # reverse postorder
    return post  # postorder: nodes near the exits first


def solve_backward(
    cfg: ControlFlowGraph,
    gen_kill: Callable[[int], GenKill],
    boundary: FrozenSet = EMPTY,
    order: str = "rpo",
) -> Tuple[List[FrozenSet], List[FrozenSet]]:
    """Backward may-analysis: returns (in_facts, out_facts) per pc.

    out[pc] = union of in[s] for s in succs(pc)   (boundary at exits)
    in[pc]  = gen(pc) | (out[pc] - kill(pc))
    """
    n = len(cfg)
    ins: List[FrozenSet] = [EMPTY] * n
    outs: List[FrozenSet] = [EMPTY] * n
    worklist = deque(_seed_order(cfg, "backward", order))
    queued = [True] * n
    iterations = 0
    while worklist:
        pc = worklist.popleft()
        queued[pc] = False
        iterations += 1
        out = boundary if not cfg.succs[pc] else EMPTY
        for succ in cfg.succs[pc]:
            out = out | ins[succ]
        gen, kill = gen_kill(pc)
        new_in = gen | (out - kill)
        outs[pc] = out
        if new_in != ins[pc]:
            ins[pc] = new_in
            for pred in cfg.preds[pc]:
                if not queued[pred]:
                    queued[pred] = True
                    worklist.append(pred)
    stats._record(iterations)
    return ins, outs


def solve_forward(
    cfg: ControlFlowGraph,
    gen_kill: Callable[[int], GenKill],
    entry: FrozenSet = EMPTY,
    order: str = "rpo",
) -> Tuple[List[FrozenSet], List[FrozenSet]]:
    """Forward may-analysis: returns (in_facts, out_facts) per pc."""
    n = len(cfg)
    ins: List[FrozenSet] = [EMPTY] * n
    outs: List[FrozenSet] = [EMPTY] * n
    if n == 0:
        return ins, outs
    worklist = deque(_seed_order(cfg, "forward", order))
    queued = [True] * n
    iterations = 0
    while worklist:
        pc = worklist.popleft()
        queued[pc] = False
        iterations += 1
        in_fact = entry if pc == 0 else EMPTY
        for pred in cfg.preds[pc]:
            in_fact = in_fact | outs[pred]
        gen, kill = gen_kill(pc)
        new_out = gen | (in_fact - kill)
        ins[pc] = in_fact
        if new_out != outs[pc]:
            outs[pc] = new_out
            for succ in cfg.succs[pc]:
                if not queued[succ]:
                    queued[succ] = True
                    worklist.append(succ)
    stats._record(iterations)
    return ins, outs


def solve_forward_must(
    cfg: ControlFlowGraph,
    gen_kill: Callable[[int], GenKill],
    universe: FrozenSet,
    entry: FrozenSet = EMPTY,
    order: str = "rpo",
) -> Tuple[List[FrozenSet], List[FrozenSet]]:
    """Forward must-analysis (intersection merge, TOP initialization).

    in[0]  = entry ∩ (∩ out[p] for p in preds(0))    (back edges into
             the entry still constrain it)
    in[pc] = ∩ out[p] for p in preds(pc)             (TOP if no preds)
    out[pc] = gen(pc) | (in[pc] - kill(pc))

    Facts start at TOP (``universe``) and shrink monotonically, so the
    solver converges to the greatest fixpoint — "definitely holds on
    every path reaching pc". Unreachable pcs keep TOP, which is the
    conventional (vacuous) verdict for code that never runs.
    """
    n = len(cfg)
    ins: List[FrozenSet] = [universe] * n
    outs: List[FrozenSet] = [universe] * n
    if n == 0:
        return ins, outs
    worklist = deque(_seed_order(cfg, "forward", order))
    queued = [True] * n
    iterations = 0
    while worklist:
        pc = worklist.popleft()
        queued[pc] = False
        iterations += 1
        if pc == 0:
            in_fact = entry
            for pred in cfg.preds[pc]:
                in_fact = in_fact & outs[pred]
        elif cfg.preds[pc]:
            in_fact = universe
            for pred in cfg.preds[pc]:
                in_fact = in_fact & outs[pred]
        else:
            in_fact = universe  # unreachable: stays TOP
        gen, kill = gen_kill(pc)
        new_out = gen | (in_fact - kill)
        ins[pc] = in_fact
        if new_out != outs[pc]:
            outs[pc] = new_out
            for succ in cfg.succs[pc]:
                if not queued[succ]:
                    queued[succ] = True
                    worklist.append(succ)
    stats._record(iterations)
    return ins, outs


def solve_backward_must(
    cfg: ControlFlowGraph,
    gen_kill: Callable[[int], GenKill],
    universe: FrozenSet,
    boundary: FrozenSet = EMPTY,
    order: str = "rpo",
) -> Tuple[List[FrozenSet], List[FrozenSet]]:
    """Backward must-analysis (intersection merge, TOP initialization).

    out[pc] = ∩ in[s] for s in succs(pc)   (``boundary`` at exits)
    in[pc]  = gen(pc) | (out[pc] - kill(pc))

    The backward dual of :func:`solve_forward_must`: "definitely holds
    on every path from pc to an exit" — e.g. a reference that is
    overwritten on all paths before any further use.
    """
    n = len(cfg)
    ins: List[FrozenSet] = [universe] * n
    outs: List[FrozenSet] = [universe] * n
    if n == 0:
        return ins, outs
    worklist = deque(_seed_order(cfg, "backward", order))
    queued = [True] * n
    iterations = 0
    while worklist:
        pc = worklist.popleft()
        queued[pc] = False
        iterations += 1
        if not cfg.succs[pc]:
            out = boundary
        else:
            out = universe
            for succ in cfg.succs[pc]:
                out = out & ins[succ]
        gen, kill = gen_kill(pc)
        new_in = gen | (out - kill)
        outs[pc] = out
        if new_in != ins[pc]:
            ins[pc] = new_in
            for pred in cfg.preds[pc]:
                if not queued[pred]:
                    queued[pred] = True
                    worklist.append(pred)
    stats._record(iterations)
    return ins, outs
