"""Interprocedural access-graph heap liveness analysis.

DRAG001–005 stop at locals and whole arrays: a reference that stays
*live* (a container keeps it) but whose contents are never consulted
again — the paper's §3.4 "pattern 4" — is invisible to them. This
module proves deadness *through* the heap:

1. A whole-program **abstract interpretation** over the compiled
   bytecode assigns every value an atom set — allocation sites
   ``("site", id)``, classes ``("cls", name)``, heap-token provenance
   ``("fld", token)`` / ``("reg", region)`` — and iterates per-method
   abstract stacks plus global field contents / parameter / return
   summaries to a fixpoint. Virtual dispatch is **type-refined**: a
   receiver's atoms resolve calls to the classes actually flowing
   there, falling back to CHA (class-hierarchy analysis over name and
   arity) only when a receiver is statically unknown — that fallback
   and the recursion-tolerant monotone summaries are the sound
   widening at megamorphic/recursive sites.
2. **Tier A (DRAG006)**: a heap token (field ``f``, static ``C.f`` or
   array-element region ``t[]``) is *observably live* iff a value read
   out of it reaches a real use (receiver dereference, identity
   comparison, instanceof/cast, native output, …), directly or through
   copies into other live tokens. Tokens written but never observably
   live are dead heap paths: their stores can be nulled.
3. **Tier B (DRAG007)**: a backward may-analysis per method (gen =
   direct token reads plus callee ``may_read`` summaries) joined with
   a call-graph ``future-after-return`` fixpoint yields, per program
   point, which tokens still have a future use. A container field
   whose access paths all die before the container does gets an
   ``owner.field = null`` insertion point after its last use.

Soundness escape hatch: anything the interpreter cannot summarize — an
unknown native, an array load from a statically unknown reference, an
ill-formed abstract stack — degrades the whole analysis to TOP: no
verdict is emitted and a ``lint --explain``-visible note says why.
Pinning structure is reported as bounded
:class:`~repro.analysis.access_graph.AccessGraph` paths ("who keeps
dragged objects alive"), which the planner and advisor surface.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.analysis.access_graph import AccessGraph
from repro.analysis.dataflow import solve_backward
from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod, CompiledProgram

MethodKey = Tuple[str, str]  # (declaring class, method name)

EMPTY: FrozenSet = frozenset()

UNKNOWN = ("unknown",)
EXTERN = ("extern",)  # the VM-made String[] argv and its strings
OPAQUE = ("opaque",)  # native-allocated primitive arrays (toCharArray)

#: Token wildcard: "every token" (TOP for future/read sets).
ANY = "*"

#: Refined call sites with more targets than this get a widening note.
MEGAMORPHIC_LIMIT = 6

_ARITH2 = {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
           Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE}
_ARITH1 = {Op.NEG, Op.NOT, Op.CAST_CHAR}

# Whitelisted native semantics: (class, method) -> result kind.
# "prim" pushes nothing heap-ish, "string"/"chararray" push references,
# "void" pushes nothing. Every whitelisted native marks its reference
# arguments as really used; String-class natives additionally read the
# String internals (chars/count and the chars element region).
_NATIVES = {
    ("Object", "hashCode"): "prim",
    ("Object", "equals"): "prim",
    ("Object", "toString"): "string",
    ("String", "length"): "prim",
    ("String", "charAt"): "prim",
    ("String", "equals"): "prim",
    ("String", "compareTo"): "prim",
    ("String", "indexOf"): "prim",
    ("String", "hashCode"): "prim",
    ("String", "substring"): "string",
    ("String", "concat"): "string",
    ("String", "valueOf"): "string",
    ("String", "toCharArray"): "chararray",
    ("System", "println"): "void",
    ("System", "printInt"): "prim",
    ("System", "arraycopy"): "void",
    ("System", "allocatedBytes"): "prim",
    ("System", "gc"): "void",
    ("Math", "isqrt"): "prim",
}

#: Natives whose array-typed arguments have their element regions read.
_ARRAY_READING_NATIVES = {("String", "valueOf")}


class HeapWrite(NamedTuple):
    """One store into a heap token, with the abstract value stored."""

    token: str
    class_name: str
    method_name: str
    line: int
    value_atoms: FrozenSet


class DeadHeapStore(NamedTuple):
    """A DRAG006 verdict: one store site filling a dead heap path."""

    token: str
    class_name: str
    method_name: str
    line: int
    value_classes: Tuple[str, ...]
    pinned_labels: Tuple[str, ...]
    explain: str


class DroppableEntry(NamedTuple):
    """A DRAG007 verdict: ``var.field = null`` is safe after ``lines``."""

    class_name: str  # method owning the insertion point
    method_name: str
    var_name: str
    owner_class: str  # class of the local (declares/owns ``field``)
    field: str
    lines: Tuple[int, ...]
    last_use: str
    pinned_labels: Tuple[str, ...]
    explain: str


class _MethodInfo:
    """Per-pc facts of one interpreted method (final fixpoint sweep)."""

    __slots__ = ("reads", "targets", "lines")

    def __init__(self, n: int) -> None:
        self.reads: List[FrozenSet[str]] = [EMPTY] * n
        self.targets: List[Tuple[MethodKey, ...]] = [()] * n
        self.lines: List[int] = [0] * n


class _Degraded(Exception):
    """Raised when the analysis must give up (soundness escape hatch)."""


class HeapLivenessAnalysis:
    """Whole-program heap liveness over a compiled program.

    ``cfg_for`` is a callable mapping :class:`CompiledMethod` to its
    CFG (the lint :class:`AnalysisContext` provides a cached one).
    """

    def __init__(self, compiled: CompiledProgram, cfg_for) -> None:
        self.compiled = compiled
        self._cfg_for = cfg_for
        self.notes: List[str] = []
        self._note_set: Set[str] = set()
        self.degraded = False

        # -- phase-1 monotone global state --------------------------------
        self._field_contents: Dict[str, FrozenSet] = {}
        self._region_contents: Dict[tuple, FrozenSet] = {}
        self._param_vals: Dict[Tuple[MethodKey, int], FrozenSet] = {}
        self._ret_vals: Dict[MethodKey, FrozenSet] = {}
        self._uf: Dict[tuple, tuple] = {}
        self._methods: Dict[MethodKey, CompiledMethod] = {}
        self._order: List[MethodKey] = []
        self._changed = False
        self._cha: Dict[Tuple[str, int], Tuple[MethodKey, ...]] = {}

        # -- recorded events (final sweep) --------------------------------
        self.method_info: Dict[MethodKey, _MethodInfo] = {}
        self.writes: Dict[str, List[HeapWrite]] = {}
        self.read_tokens: Set[str] = set()
        self.reads_at: Dict[str, List[Tuple[MethodKey, int]]] = {}
        self._copy_edges: Dict[str, Set[str]] = {}
        self._used_fields: Set[str] = set()
        self._used_regions: Set[tuple] = set()
        self.live_tokens: Set[str] = set()
        self.contents_of: Dict[str, FrozenSet] = {}
        self._region_names: Dict[tuple, str] = {}
        self.may_read: Dict[MethodKey, Optional[FrozenSet[str]]] = {}
        self._future_after: Dict[MethodKey, FrozenSet[str]] = {}
        self._local_flows: Dict[MethodKey, Tuple[List[FrozenSet], List[FrozenSet]]] = {}

        try:
            self._run()
        except _Degraded:
            self.degraded = True

    # -- notes / degradation ------------------------------------------------

    def _note(self, text: str) -> None:
        if text not in self._note_set:
            self._note_set.add(text)
            self.notes.append(text)

    def _degrade(self, reason: str) -> None:
        self._note(f"degraded to TOP: {reason}; no heap-deadness verdicts emitted")
        raise _Degraded(reason)

    # -- region union-find --------------------------------------------------

    def _find(self, key: tuple) -> tuple:
        parent = self._uf.setdefault(key, key)
        if parent == key:
            return key
        root = self._find(parent)
        self._uf[key] = root
        return root

    def _union(self, a: tuple, b: tuple) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        self._uf[rb] = ra
        self._changed = True
        merged = self._region_contents.pop(rb, EMPTY)
        if merged:
            self._region_contents[ra] = self._region_contents.get(ra, EMPTY) | merged

    def _region_name(self, key: tuple) -> Optional[str]:
        rep = self._find(key)
        name = self._region_names.get(rep)
        if name is None and rep[0] == "tok":
            # Key first materialized in the recording pass (e.g. the
            # String internals token): name it directly.
            name = rep[1] + "[]"
            self._region_names[rep] = name
        return name

    # -- atom helpers -------------------------------------------------------

    def _grow(self, mapping, key, atoms: FrozenSet) -> None:
        if not atoms:
            return
        old = mapping.get(key, EMPTY)
        new = old | atoms
        if new != old:
            mapping[key] = new
            self._changed = True

    def _is_array_site(self, sid: int) -> bool:
        created = self.compiled.site(sid).created
        return created not in self.compiled.classes

    def _site_class(self, sid: int) -> str:
        created = self.compiled.site(sid).created
        return created if created in self.compiled.classes else "Object"

    def _region_keys_of_value(self, atoms: FrozenSet) -> List[tuple]:
        """UF keys of the element regions of the arrays ``atoms`` may be."""
        keys = []
        for atom in atoms:
            kind = atom[0]
            if kind == "site" and self._is_array_site(atom[1]):
                keys.append(("site", atom[1]))
            elif kind == "fld":
                keys.append(("tok", atom[1]))
            elif kind == "reg":
                keys.append(atom[1])
        return keys

    # -- method resolution --------------------------------------------------

    def _method(self, class_name: str, name: str) -> Optional[CompiledMethod]:
        cls = self.compiled.classes.get(class_name)
        if cls is None:
            return None
        if name == "<init>":
            return cls.ctor
        if name == "<clinit>":
            return cls.clinit
        return self.compiled.lookup_method(class_name, name)

    def _reach(self, method: CompiledMethod) -> MethodKey:
        key = (method.class_name, method.name)
        if key not in self._methods:
            self._methods[key] = method
            self._order.append(key)
            self._changed = True
        return key

    def _cha_family(self, name: str, argc: int) -> Tuple[MethodKey, ...]:
        fam = self._cha.get((name, argc))
        if fam is None:
            out = []
            for cls in self.compiled.classes.values():
                m = cls.methods.get(name)
                if m is not None and not m.is_static and m.param_count == argc:
                    out.append((m.class_name, m.name))
            fam = tuple(sorted(set(out)))
            self._cha[(name, argc)] = fam
        return fam

    def _virtual_targets(
        self, name: str, argc: int, receiver: FrozenSet
    ) -> Tuple[List[CompiledMethod], bool]:
        """Type-refined dispatch; returns (targets, used_cha_widening)."""
        classes: Set[str] = set()
        widen = False
        for atom in receiver:
            kind = atom[0]
            if kind == "site":
                classes.add(self._site_class(atom[1]))
            elif kind == "cls":
                classes.add(atom[1])
            elif kind in ("unknown", "extern", "opaque"):
                widen = True
        if widen or not classes:
            # Receiver statically unknown (or only provenance atoms):
            # widen to the full CHA family — the sound TOP of dispatch.
            widen = True
            keys = self._cha_family(name, argc)
        else:
            keys = []
            for cls_name in sorted(classes):
                m = self.compiled.lookup_method(cls_name, name)
                if m is not None and not m.is_static and m.param_count == argc:
                    keys.append((m.class_name, m.name))
            keys = tuple(sorted(set(keys)))
        targets = []
        for cls_name, mname in keys:
            m = self._method(cls_name, mname)
            if m is not None:
                targets.append(m)
        if len(targets) > MEGAMORPHIC_LIMIT:
            self._note(
                f"megamorphic call {name}/{argc}: {len(targets)} targets; "
                "widened to the CHA family"
            )
        return targets, widen

    # -- the driver ---------------------------------------------------------

    def _run(self) -> None:
        program = self.compiled
        main_cls = program.main_class
        roots: List[MethodKey] = []
        if main_cls:
            main = self._method(main_cls, "main")
            if main is not None:
                key = self._reach(main)
                # argv: an extern array whose elements are Strings.
                self._grow(self._param_vals, (key, 0), frozenset([EXTERN]))
                roots.append(key)
        for cls_name in program.clinit_order:
            cls = program.classes.get(cls_name)
            if cls is not None and cls.clinit is not None:
                roots.append(self._reach(cls.clinit))

        # Phase 1: iterate all reachable methods until the global state
        # (contents, summaries, regions, reachability) stops changing.
        for _ in range(200):
            self._changed = False
            index = 0
            while index < len(self._order):
                key = self._order[index]
                index += 1
                self._run_method(key, record=False)
            if not self._changed:
                break
        else:  # pragma: no cover - termination guard
            self._degrade("abstract interpretation did not converge")

        # Phase 2: the state is a fixpoint; one recording sweep collects
        # per-pc reads/targets, write events, copies, and real uses with
        # final (stable) region names.
        self._name_regions()
        for key in self._order:
            self._run_method(key, record=True)
        for rep in self._read_region_set:
            name = self._region_name(rep)
            if name is not None:
                self.read_tokens.add(name)
        self.live_tokens = self._solve_live()
        self.contents_of = dict(self._field_contents)
        for rep, atoms in self._region_contents.items():
            name = self._region_names.get(self._find(rep))
            if name is not None:
                self.contents_of[name] = self.contents_of.get(name, EMPTY) | atoms
        self._solve_summaries()

    _read_region_set: Set[tuple]

    def _name_regions(self) -> None:
        groups: Dict[tuple, List[tuple]] = {}
        for key in list(self._uf):
            groups.setdefault(self._find(key), []).append(key)
        names: Dict[tuple, str] = {}
        for rep, members in groups.items():
            toks = sorted(k[1] for k in members if k[0] == "tok")
            if toks:
                names[rep] = toks[0] + "[]"
                continue
            sids = sorted(k[1] for k in members if k[0] == "site")
            if sids:
                names[rep] = "@" + self.compiled.site(sids[0]).label + "[]"
            elif any(k == ("extern",) for k in members):
                names[rep] = "<extern>[]"
            else:
                names[rep] = "<opaque>[]"
        self._region_names = names
        self._read_region_set = set()

    # -- per-method interpretation ------------------------------------------

    def _run_method(self, mkey: MethodKey, record: bool) -> None:
        method = self._methods[mkey]
        if method.is_native or not method.code:
            return
        cfg = self._cfg_for(method)
        code = method.code
        nparams = method.param_count + (0 if method.is_static else 1)
        entry_locals = tuple(
            self._param_vals.get((mkey, slot), EMPTY) if slot < nparams else EMPTY
            for slot in range(method.nlocals)
        )
        states: Dict[int, Tuple[tuple, tuple]] = {0: ((), entry_locals)}
        work = deque([0])
        queued = {0}
        while work:
            pc = work.popleft()
            queued.discard(pc)
            stack, locals_ = states[pc]
            post = self._transfer(mkey, method, pc, stack, locals_, record=False)
            if post is None:
                continue  # terminal instruction
            new_stack, new_locals = post
            for succ in cfg.succs[pc]:
                if succ in cfg.handler_entries:
                    slot = cfg.handler_entries[succ]
                    hloc = list(locals_)
                    if 0 <= slot < len(hloc):
                        hloc[slot] = hloc[slot] | frozenset([UNKNOWN])
                    target = ((), tuple(hloc))
                else:
                    target = (new_stack, new_locals)
                old = states.get(succ)
                if old is None:
                    states[succ] = target
                elif old != target:
                    if len(old[0]) != len(target[0]):
                        self._degrade(
                            f"inconsistent abstract stack depth at "
                            f"{method.qualified_name}:{code[succ].line}"
                        )
                    merged = (
                        tuple(a | b for a, b in zip(old[0], target[0])),
                        tuple(a | b for a, b in zip(old[1], target[1])),
                    )
                    if merged == old:
                        continue
                    states[succ] = merged
                else:
                    continue
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
        if record:
            info = _MethodInfo(len(code))
            self._info = info
            for pc in sorted(states):
                stack, locals_ = states[pc]
                self._transfer(mkey, method, pc, stack, locals_, record=True)
                info.lines[pc] = code[pc].line
            self.method_info[mkey] = info
            self._info = None

    # -- recording helpers (active only in the final sweep) -----------------

    _info: Optional[_MethodInfo] = None

    def _mark_used(self, atoms: FrozenSet, record: bool) -> None:
        if not record:
            return
        for atom in atoms:
            if atom[0] == "fld":
                self._used_fields.add(atom[1])
            elif atom[0] == "reg":
                self._used_regions.add(self._find(atom[1]))

    def _record_read(self, mkey, token: str, line: int, pc: int) -> None:
        self.read_tokens.add(token)
        self.reads_at.setdefault(token, []).append((mkey, line))
        info = self._info
        if info is not None:
            info.reads[pc] = info.reads[pc] | frozenset([token])

    def _record_region_read(self, mkey, rep: tuple, line: int, pc: int) -> None:
        self._read_region_set.add(self._find(rep))
        name = self._region_name(rep)
        if name is not None:
            self._record_read(mkey, name, line, pc)

    def _record_write(self, token: str, mkey, line: int, atoms: FrozenSet) -> None:
        self.writes.setdefault(token, []).append(
            HeapWrite(token, mkey[0], mkey[1], line, atoms)
        )

    def _record_copies(self, value: FrozenSet, dst_token: str) -> None:
        for atom in value:
            if atom[0] == "fld":
                self._copy_edges.setdefault(atom[1], set()).add(dst_token)
            elif atom[0] == "reg":
                name = self._region_names.get(self._find(atom[1]))
                if name is not None:
                    self._copy_edges.setdefault(name, set()).add(dst_token)

    def _record_target(self, pc: int, targets: Sequence[CompiledMethod]) -> None:
        info = self._info
        if info is not None:
            keys = tuple(sorted({(m.class_name, m.name) for m in targets}))
            info.targets[pc] = info.targets[pc] + keys

    # -- the transfer function ----------------------------------------------

    def _transfer(self, mkey, method, pc, stack, locals_, record):
        """Abstract effect of ``code[pc]``; returns (stack, locals) for
        normal successors or None for terminal instructions."""
        instr = method.code[pc]
        op = instr.op
        line = instr.line
        S = list(stack)
        L = locals_

        def pop(k=1):
            if k == 0:
                return []
            if len(S) < k:
                self._degrade(
                    f"abstract stack underflow at {method.qualified_name}:{line}"
                )
            vals = S[-k:]
            del S[-k:]
            return vals

        if op == Op.CONST or op == Op.CONST_NULL:
            S.append(EMPTY)
        elif op == Op.CONST_STRING:
            S.append(frozenset([("site", instr.site)]))
        elif op == Op.LOAD:
            S.append(L[instr.args[0]])
        elif op == Op.STORE:
            (v,) = pop()
            slot = instr.args[0]
            if L[slot] != L[slot] | v:
                L = L[:slot] + (L[slot] | v,) + L[slot + 1:]
        elif op == Op.POP:
            pop()
        elif op == Op.DUP:
            if not S:
                self._degrade(f"DUP on empty stack at {method.qualified_name}:{line}")
            S.append(S[-1])
        elif op == Op.NEWINIT:
            cls_name, argc = instr.args
            args = pop(argc)
            this = frozenset([("site", instr.site)])
            ctor = self._method(cls_name, "<init>")
            if ctor is not None:
                self._call(ctor, this, args, pc, record)
            fin = self.compiled.lookup_method(cls_name, "finalize")
            if fin is not None and not fin.is_native and fin.param_count == 0:
                # Finalizers run from the collector: analysis roots.
                fk = self._reach(fin)
                self._grow(self._param_vals, (fk, 0), this)
            S.append(this)
        elif op == Op.SUPERINIT:
            cls_name, argc = instr.args
            args = pop(argc)
            ctor = self._method(cls_name, "<init>")
            if ctor is not None:
                self._call(ctor, L[0], args, pc, record)
        elif op == Op.NEWARRAY:
            pop()
            self._find(("site", instr.site))  # materialize the region
            S.append(frozenset([("site", instr.site)]))
        elif op == Op.GETFIELD:
            (obj,) = pop()
            self._mark_used(obj, record)
            token = instr.args[0]
            if record:
                self._record_read(mkey, token, line, pc)
            S.append(self._field_contents.get(token, EMPTY) | frozenset([("fld", token)]))
        elif op == Op.PUTFIELD:
            v, = pop()
            (obj,) = pop()
            self._mark_used(obj, record)
            token = instr.args[0]
            self._store_token(token, v, mkey, line, record)
        elif op == Op.GETSTATIC:
            cls_name, field = instr.args
            token = f"{cls_name}.{field}"
            if record:
                self._record_read(mkey, token, line, pc)
            S.append(self._field_contents.get(token, EMPTY) | frozenset([("fld", token)]))
        elif op == Op.PUTSTATIC:
            (v,) = pop()
            cls_name, field = instr.args
            self._store_token(f"{cls_name}.{field}", v, mkey, line, record)
        elif op == Op.ALOAD:
            _idx, = pop()
            (arr,) = pop()
            self._mark_used(arr, record)
            out = EMPTY
            for atom in arr:
                if atom[0] in ("unknown", "cls"):
                    self._degrade(
                        f"array load from statically unknown reference at "
                        f"{method.qualified_name}:{line}"
                    )
            for key in self._region_keys_of_value(arr):
                rep = self._find(key)
                if record:
                    self._record_region_read(mkey, rep, line, pc)
                out = out | self._region_contents.get(rep, EMPTY)
                out = out | frozenset([("reg", rep)])
            if EXTERN in arr:
                out = out | frozenset([("cls", "String")])
            S.append(out)
        elif op == Op.ASTORE:
            (v,) = pop()
            _idx, = pop()
            (arr,) = pop()
            self._mark_used(arr, record)
            keys = self._region_keys_of_value(arr)
            if (UNKNOWN in arr or EXTERN in arr) and v:
                # Write into an unlocalizable array: the value escapes.
                self._mark_used(v, record)
                self._note(
                    f"array store through statically unknown reference at "
                    f"{method.qualified_name}:{line}; stored value widened to live"
                )
            for key in keys:
                rep = self._find(key)
                self._grow(self._region_contents, rep, v)
                for vkey in self._region_keys_of_value(v):
                    self._union(rep, vkey)
                if record:
                    name = self._region_names.get(self._find(rep))
                    if name is not None:
                        self._record_write(name, mkey, line, v)
                        self._record_copies(v, name)
        elif op == Op.ARRAYLEN:
            (arr,) = pop()
            self._mark_used(arr, record)
            S.append(EMPTY)
        elif op == Op.CHECKCAST:
            # Peek: the cast observes the value's type (it can throw),
            # so the value counts as really used — but nulling a dead
            # store never *introduces* a throw, so pass-through atoms.
            if S:
                self._mark_used(S[-1], record)
        elif op == Op.INSTANCEOF:
            (obj,) = pop()
            self._mark_used(obj, record)
            S.append(EMPTY)
        elif op == Op.INVOKEV:
            name, argc = instr.args
            args = pop(argc)
            (receiver,) = pop()
            self._mark_used(receiver, record)
            targets, _ = self._virtual_targets(name, argc, receiver)
            pushed = self._invoke(mkey, method, pc, line, receiver, args,
                                  targets, name, argc, record)
            if pushed is not None:
                S.append(pushed)
        elif op == Op.INVOKESTATIC:
            cls_name, name, argc = instr.args
            args = pop(argc)
            if (cls_name, name) == ("System", "arraycopy"):
                self._arraycopy(args, record)
                target = None
            else:
                target = self.compiled.lookup_method(cls_name, name)
            if target is not None:
                pushed = self._invoke(mkey, method, pc, line, None, args,
                                      [target], name, argc, record)
                if pushed is not None:
                    S.append(pushed)
        elif op == Op.INVOKESUPER:
            cls_name, name, argc = instr.args
            args = pop(argc)
            receiver = L[0] if L else EMPTY
            target = self.compiled.lookup_method(cls_name, name)
            if target is not None:
                pushed = self._invoke(mkey, method, pc, line, receiver, args,
                                      [target], name, argc, record)
                if pushed is not None:
                    S.append(pushed)
        elif op == Op.RET:
            return None
        elif op == Op.RETV:
            (v,) = pop()
            self._grow(self._ret_vals, mkey, v)
            return None
        elif op in _ARITH2:
            pop(2)
            S.append(EMPTY)
        elif op in _ARITH1:
            pop()
            S.append(EMPTY)
        elif op in (Op.REFEQ, Op.REFNE):
            a, b = pop(2)
            self._mark_used(a, record)
            self._mark_used(b, record)
            S.append(EMPTY)
        elif op == Op.TOSTR:
            (v,) = pop()
            out = frozenset([("site", instr.site)])
            if instr.args[0] == "ref":
                self._mark_used(v, record)
                targets, _ = self._virtual_targets("toString", 0, v)
                user = [t for t in targets if not t.is_native]
                if user:
                    ret = self._invoke(mkey, method, pc, line, v, (), user,
                                       "toString", 0, record)
                    if ret:
                        out = out | ret
            S.append(out)
        elif op == Op.CONCAT:
            a, b = pop(2)
            self._mark_used(a, record)
            self._mark_used(b, record)
            if record:
                self._read_string_internals(mkey, line, pc)
            S.append(frozenset([("site", instr.site)]))
        elif op == Op.JUMP:
            pass
        elif op in (Op.JIF, Op.JIT):
            pop()
        elif op == Op.THROW:
            (v,) = pop()
            self._mark_used(v, record)
            return (tuple(S), L)  # handler successors only
        elif op in (Op.MONENTER, Op.MONEXIT):
            (v,) = pop()
            self._mark_used(v, record)
        else:  # pragma: no cover - exhaustive over the ISA
            self._degrade(f"unmodeled opcode {op} at {method.qualified_name}:{line}")
        return (tuple(S), L)

    # -- calls ---------------------------------------------------------------

    def _store_token(self, token, value, mkey, line, record) -> None:
        self._grow(self._field_contents, token, value)
        for vkey in self._region_keys_of_value(value):
            self._union(("tok", token), vkey)
        if record:
            self._record_write(token, mkey, line, value)
            self._record_copies(value, token)

    def _call(self, target: CompiledMethod, receiver, args, pc, record) -> None:
        """Flow receiver/args into a non-native target's parameters."""
        tk = self._reach(target)
        base = 0
        if not target.is_static:
            if receiver is not None:
                self._grow(self._param_vals, (tk, 0), receiver)
            base = 1
        for i, atoms in enumerate(args):
            self._grow(self._param_vals, (tk, base + i), atoms)
        if record:
            self._record_target(pc, [target])

    def _invoke(self, mkey, method, pc, line, receiver, args, targets,
                name, argc, record) -> Optional[FrozenSet]:
        """Dispatch to ``targets``; returns pushed atoms or None (void)."""
        if not targets:
            # A call with no resolvable target cannot execute (receiver
            # is null on every path) — but the stack shape must still
            # follow the declared family.
            fam = self._cha_family(name, argc)
            if not fam:
                return EMPTY  # assume a value; merge degrades if wrong
            m = self._method(*fam[0])
            return EMPTY if (m and m.return_descriptor != "void") else None
        returns = {t.return_descriptor != "void" for t in targets}
        if len(returns) > 1:
            self._degrade(
                f"call family {name}/{argc} mixes void and value returns "
                f"at {method.qualified_name}:{line}"
            )
        out = EMPTY
        for target in targets:
            if target.is_native:
                pushed = self._native(mkey, line, pc, target, receiver, args, record)
                if pushed is not None:
                    out = out | pushed
            else:
                self._call(target, receiver, args, pc, record)
                out = out | self._ret_vals.get((target.class_name, target.name), EMPTY)
        return out if returns == {True} else None

    def _native(self, mkey, line, pc, target, receiver, args, record):
        key = (target.class_name, target.name)
        kind = _NATIVES.get(key)
        if kind is None:
            self._degrade(f"unmodeled native {target.qualified_name}")
        if receiver is not None:
            self._mark_used(receiver, record)
        for atoms in args:
            self._mark_used(atoms, record)
        if target.class_name in ("String", "Object") or key == ("System", "println"):
            if record:
                self._read_string_internals(mkey, line, pc)
        if key in _ARRAY_READING_NATIVES and record:
            for atoms in args:
                for rkey in self._region_keys_of_value(atoms):
                    self._record_region_read(mkey, self._find(rkey), line, pc)
        if kind == "string":
            return frozenset([("cls", "String")])
        if kind == "chararray":
            return frozenset([OPAQUE])
        if kind == "prim":
            return EMPTY
        return None  # void

    def _read_string_internals(self, mkey, line, pc) -> None:
        """String content observation: chars/count plus the chars region."""
        self._record_read(mkey, "chars", line, pc)
        self._record_read(mkey, "count", line, pc)
        rep = self._find(("tok", "chars"))
        self._record_region_read(mkey, rep, line, pc)

    def _arraycopy(self, args, record) -> None:
        if len(args) != 5:
            return
        src, _sp, dst, _dp, _n = args
        self._mark_used(src, record)
        self._mark_used(dst, record)
        src_keys = self._region_keys_of_value(src)
        dst_keys = self._region_keys_of_value(dst)
        # Element copy: merging the regions over-approximates "contents
        # of src flow into dst" (sound; ensureCapacity-style copies are
        # same-region anyway).
        for skey in src_keys:
            for dkey in dst_keys:
                self._union(skey, dkey)

    # -- Tier A: observable token liveness ------------------------------------

    #: Tokens the VM itself observes outside any modeled bytecode:
    #: uncaught-exception reporting reads Throwable.message, and the
    #: runtime prints String internals. Never declared dead.
    VM_OBSERVED_TOKENS = frozenset(["message", "chars", "count"])

    def _solve_live(self) -> Set[str]:
        live = set(self._used_fields) | set(self.VM_OBSERVED_TOKENS)
        for rep in self._used_regions:
            name = self._region_names.get(self._find(rep))
            if name is not None:
                live.add(name)
        changed = True
        while changed:
            changed = False
            for src, dsts in self._copy_edges.items():
                if src not in live and any(d in live for d in dsts):
                    live.add(src)
                    changed = True
        return live

    def dead_heap_stores(self) -> List[DeadHeapStore]:
        """DRAG006: stores into heap tokens no live path ever reads."""
        if self.degraded:
            return []
        out = []
        for token in sorted(self.writes):
            if token in self.live_tokens:
                continue
            events = [w for w in self.writes[token]
                      if any(a[0] in ("site", "cls") for a in w.value_atoms)]
            if not events:
                continue
            pinned = self.pinned_site_labels(token)
            paths = self.pinning_graph(token).paths(limit=3)
            for w in sorted(set(events), key=lambda w: (w.class_name, w.line)):
                classes = tuple(sorted({
                    self._site_class(a[1]) if a[0] == "site" else a[1]
                    for a in w.value_atoms if a[0] in ("site", "cls")
                }))
                explain = (
                    f"no observable read of heap path {token!r} anywhere in "
                    f"the refined call graph ({len(self.method_info)} methods "
                    "interpreted); the store only pins "
                    + (", ".join(pinned[:4]) if pinned else "its operand")
                    + (f"; pinning paths: {'; '.join(paths)}" if paths else "")
                )
                out.append(DeadHeapStore(
                    token, w.class_name, w.method_name, w.line, classes,
                    tuple(pinned), explain,
                ))
        return out

    # -- Tier B: future-use per program point --------------------------------

    def _gen_sets(self, mkey: MethodKey) -> List[FrozenSet[str]]:
        info = self.method_info[mkey]
        gens: List[FrozenSet[str]] = []
        for pc in range(len(info.reads)):
            gen = info.reads[pc]
            for tkey in info.targets[pc]:
                summary = self.may_read.get(tkey, EMPTY)
                if summary is None:
                    gen = gen | frozenset([ANY])
                else:
                    gen = gen | summary
            gens.append(gen)
        return gens

    def _solve_summaries(self) -> None:
        """``may_read`` per method, local backward flows, and the
        future-after-return fixpoint over the refined call graph."""
        if self.degraded:
            return
        # may_read: monotone fixpoint (recursion-safe on the finite
        # token lattice; a recursive cycle just iterates to its join).
        for key in self._order:
            info = self.method_info.get(key)
            reads = EMPTY
            if info is not None:
                for r in info.reads:
                    reads = reads | r
            self.may_read[key] = reads
        changed = True
        while changed:
            changed = False
            for key in self._order:
                info = self.method_info.get(key)
                if info is None:
                    continue
                cur = self.may_read[key]
                if cur is None:
                    continue
                new = cur
                for targets in info.targets:
                    for tkey in targets:
                        summary = self.may_read.get(tkey, EMPTY)
                        if summary is None:
                            new = new | frozenset([ANY])
                        else:
                            new = new | summary
                if new != cur:
                    self.may_read[key] = new
                    changed = True
        # Local backward flows (gen = reads + callee summaries).
        callers: Dict[MethodKey, List[Tuple[MethodKey, int]]] = {}
        for key in self._order:
            info = self.method_info.get(key)
            if info is None:
                continue
            method = self._methods[key]
            cfg = self._cfg_for(method)
            gens = self._gen_sets(key)
            ins, outs = solve_backward(cfg, lambda pc: (gens[pc], EMPTY))
            self._local_flows[key] = (ins, outs)
            for pc, targets in enumerate(info.targets):
                for tkey in targets:
                    callers.setdefault(tkey, []).append((key, pc))
        # future-after-return: what still runs once a method returns.
        top = frozenset([ANY])
        future: Dict[MethodKey, FrozenSet[str]] = {}
        for key in self._order:
            method = self._methods[key]
            if method.name in ("<clinit>", "finalize"):
                future[key] = top  # runs before main / from the collector
            else:
                future[key] = EMPTY
        changed = True
        while changed:
            changed = False
            for key in self._order:
                cur = future[key]
                new = cur
                for caller, pc in callers.get(key, ()):
                    flows = self._local_flows.get(caller)
                    if flows is None:
                        new = new | top
                        continue
                    new = new | flows[1][pc] | future[caller]
                if new != cur:
                    future[key] = new
                    changed = True
        self._future_after = future

    def droppable_entries(self) -> List[DroppableEntry]:
        """DRAG007: ``var.field = null`` insertion points — container
        entries whose access paths die before the container does."""
        if self.degraded:
            return []
        out = []
        for mkey in self._order:
            method = self._methods[mkey]
            cls = self.compiled.classes.get(mkey[0])
            if cls is None or cls.is_library or method.is_native:
                continue
            if method.name in ("<init>", "<clinit>"):
                continue
            info = self.method_info.get(mkey)
            flows = self._local_flows.get(mkey)
            if info is None or flows is None:
                continue
            fut_ret = self._future_after.get(mkey, frozenset([ANY]))
            if ANY in fut_ret:
                continue
            code = method.code
            cfg = self._cfg_for(method)
            doms = _dominators(cfg)
            nparams = method.param_count + (0 if method.is_static else 1)
            stores: Dict[int, List[int]] = {}
            for pc, instr in enumerate(code):
                if instr.op == Op.STORE and instr.args[0] >= nparams:
                    stores.setdefault(instr.args[0], []).append(pc)
            ins = flows[0]
            for slot, pcs in sorted(stores.items()):
                if len(pcs) != 1:
                    continue
                s = pcs[0]
                if s == 0 or code[s - 1].op != Op.NEWINIT:
                    continue
                owner = code[s - 1].args[0]
                owner_cls = self.compiled.classes.get(owner)
                if owner_cls is None:
                    continue
                var = (method.slot_names[slot]
                       if slot < len(method.slot_names) else None)
                if not var:
                    continue
                ref_fields = sorted(
                    f for f, d in owner_cls.layout.descriptors.items() if d == "ref"
                )
                for field in ref_fields:
                    entry = self._droppable_field(
                        mkey, method, cfg, doms, info, ins, fut_ret,
                        s, var, owner, field,
                    )
                    if entry is not None:
                        out.append(entry)
        return out

    def _droppable_field(self, mkey, method, cfg, doms, info, ins, fut_ret,
                         store_pc, var, owner, field) -> Optional[DroppableEntry]:
        if field in fut_ret or ANY in fut_ret:
            return None  # some caller continuation may still read it
        if field not in self.read_tokens:
            return None  # write-only: DRAG001/DRAG006 territory
        atoms = self.contents_of.get(field, EMPTY)
        if not any(a[0] in ("site", "cls") for a in atoms):
            return None  # nothing heap-ish pinned through it
        code = method.code
        store_line = code[store_pc].line
        by_line: Dict[int, List[int]] = {}
        for pc in range(len(code)):
            if info.lines[pc] or pc in (0,):
                by_line.setdefault(code[pc].line, []).append(pc)
        candidates = []
        for line in sorted(by_line):
            if line < store_line or line <= 0:
                continue
            pcs = by_line[line]
            if not all(store_pc in doms[pc] for pc in pcs):
                continue  # the owner local may be unassigned here
            safe = True
            for pc in pcs:
                for succ in cfg.succs[pc]:
                    if code[succ].line == line:
                        continue
                    fut = ins[succ]
                    if field in fut or ANY in fut:
                        safe = False
                        break
                if not safe:
                    break
            if safe:
                candidates.append(line)
        if not candidates:
            return None
        reads = self.reads_at.get(field, [])
        local_reads = [ln for k, ln in reads if k == mkey and ln <= candidates[0]]
        if local_reads:
            last_use = f"{mkey[0]}.{mkey[1]}:{max(local_reads)}"
        elif reads:
            rk, rline = max(reads, key=lambda r: (r[0] == mkey, r[1]))
            last_use = f"{rk[0]}.{rk[1]}:{rline}"
        else:
            last_use = "<none>"
        pinned = self.pinned_site_labels(field)
        paths = self.pinning_graph(field, root=f"{var}.{field}").paths(limit=3)
        explain = (
            f"pattern 4 (§3.4): {var} stays live but every access path "
            f"through {owner}.{field} is dead after line {candidates[0]} "
            f"(last use {last_use}; nothing in {mkey[0]}.{mkey[1]}'s "
            "continuation or any caller reads it)"
            + (f"; pins {', '.join(pinned[:4])}" if pinned else "")
            + (f"; pinning paths: {'; '.join(paths)}" if paths else "")
        )
        return DroppableEntry(
            mkey[0], mkey[1], var, owner, field, tuple(candidates[:5]),
            last_use, tuple(pinned), explain,
        )

    # -- pinning structure ----------------------------------------------------

    def pinning_graph(self, token: str, root: Optional[str] = None) -> AccessGraph:
        """Bounded access graph of what ``token`` transitively pins."""
        graph = AccessGraph.empty(root or token)
        frontier: List[Tuple[AccessGraph, str]] = [(graph, token)]
        seen_tokens: Set[str] = set()
        result = graph
        while frontier:
            prefix, tok = frontier.pop()
            if tok in seen_tokens:
                continue
            seen_tokens.add(tok)
            for atom in sorted(self.contents_of.get(tok, EMPTY)):
                if atom[0] == "site":
                    sid = atom[1]
                    site = self.compiled.site(sid)
                    ext = prefix.extend(f"{site.created}@{site.label}", sid)
                    result = result.union(ext)
                    created = site.created
                    if created in self.compiled.classes:
                        layout = self.compiled.classes[created].layout
                        for g in sorted(layout.descriptors):
                            if layout.descriptors[g] == "ref" and g in self.contents_of:
                                frontier.append((ext.extend(g), g))
                                result = result.union(ext.extend(g))
                    else:
                        name = self._region_names.get(self._find(("site", sid)))
                        if name is not None and name in self.contents_of:
                            frontier.append((ext.extend(name), name))
                            result = result.union(ext.extend(name))
                elif atom[0] == "cls":
                    ext = prefix.extend(atom[1])
                    result = result.union(ext)
        return result

    def pinned_site_labels(self, token: str) -> List[str]:
        """Labels of allocation sites transitively pinned via ``token``."""
        out: List[str] = []
        seen_sites: Set[int] = set()
        seen_tokens: Set[str] = set()
        work = [token]
        while work:
            tok = work.pop()
            if tok in seen_tokens:
                continue
            seen_tokens.add(tok)
            for atom in sorted(self.contents_of.get(tok, EMPTY)):
                if atom[0] != "site" or atom[1] in seen_sites:
                    continue
                sid = atom[1]
                seen_sites.add(sid)
                site = self.compiled.site(sid)
                if site.label not in out:
                    out.append(site.label)
                created = site.created
                if created in self.compiled.classes:
                    layout = self.compiled.classes[created].layout
                    for g in sorted(layout.descriptors):
                        if layout.descriptors[g] == "ref":
                            work.append(g)
                else:
                    name = self._region_names.get(self._find(("site", sid)))
                    if name is not None:
                        work.append(name)
        return out


def _dominators(cfg) -> List[Set[int]]:
    """Per-pc dominator sets (iterative may-intersection dataflow)."""
    n = len(cfg)
    full = set(range(n))
    doms: List[Set[int]] = [{0}] + [set(full) for _ in range(max(0, n - 1))]
    changed = True
    while changed:
        changed = False
        for pc in range(1, n):
            preds = cfg.preds[pc]
            if preds:
                new = set.intersection(*(doms[p] for p in preds))
            else:
                new = set(full)  # unreachable: vacuous
            new.add(pc)
            if new != doms[pc]:
                doms[pc] = new
                changed = True
    return doms
