"""Class-hierarchy graph — the first kind of information JAN provided
(§3.2): used "for accelerating source browsing, e.g., locating
overloaded methods", and by CHA to bound virtual-call targets."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.mjava.sema import ClassTable


class ClassHierarchy:
    """Parent/children view over a class table."""

    def __init__(self, table: ClassTable) -> None:
        self.table = table
        self.children: Dict[str, List[str]] = {name: [] for name in table.classes}
        for name, info in table.classes.items():
            if info.super_name is not None:
                self.children[info.super_name].append(name)
        for kids in self.children.values():
            kids.sort()

    def parent(self, name: str) -> Optional[str]:
        return self.table.get(name).super_name

    def ancestors(self, name: str) -> List[str]:
        return self.table.superclass_chain(name)[1:]

    def subtree(self, name: str) -> Set[str]:
        """``name`` and all its transitive subclasses."""
        out: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self.children.get(current, ()))
        return out

    def roots(self) -> List[str]:
        return sorted(
            name for name, info in self.table.classes.items() if info.super_name is None
        )

    def overriders_of(self, class_name: str, method_name: str) -> List[str]:
        """Subclasses that override ``method_name`` — the virtual-call
        target set CHA uses."""
        out = []
        for sub in sorted(self.subtree(class_name)):
            if sub != class_name and method_name in self.table.get(sub).methods:
                out.append(sub)
        return out

    def defining_class(self, class_name: str, method_name: str) -> Optional[str]:
        resolved = self.table.resolve_method(class_name, method_name)
        return resolved[0].name if resolved else None
