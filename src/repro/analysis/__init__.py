"""Static analyses (§5) that justify the space-saving transformations.

The paper identifies the analyses an optimizing compiler would need to
automate its manual rewrites:

* usage analysis — variables/fields set but never used (§5.1),
* indirect-usage analysis — objects none of whose references is ever
  dereferenced (§5.1),
* liveness analysis for locals, and the harder array-element liveness
  (§5.1, §5.2),
* minimal code insertion for lazy allocation (§5.1),
* call-graph dependence — unreachable methods invalidate "possible
  uses" (§5.4),
* exception analysis — removed code must not throw exceptions the
  program could catch (§5.5),

plus the class-hierarchy and call-graph information the authors got
from JAN (§3.2).
"""

from repro.analysis.cfg import ControlFlowGraph, build_cfg
from repro.analysis.dataflow import solve_backward, solve_forward
from repro.analysis.liveness import LivenessResult, liveness
from repro.analysis.usage import FieldUsage, field_usage
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.hierarchy import ClassHierarchy
from repro.analysis.exceptions import ThrownExceptions
from repro.analysis.purity import ctor_purity, PurityResult
from repro.analysis.array_liveness import logical_size_pairs, removal_points
from repro.analysis.indirect_usage import indirectly_unused_fields
from repro.analysis.lazy_points import FirstUseSite, first_use_sites

__all__ = [
    "ControlFlowGraph",
    "build_cfg",
    "solve_backward",
    "solve_forward",
    "LivenessResult",
    "liveness",
    "FieldUsage",
    "field_usage",
    "CallGraph",
    "build_call_graph",
    "ClassHierarchy",
    "ThrownExceptions",
    "ctor_purity",
    "PurityResult",
    "logical_size_pairs",
    "removal_points",
    "indirectly_unused_fields",
    "FirstUseSite",
    "first_use_sites",
]
