"""Minimal code insertion for lazy allocation (§5.1).

"Minimal code insertion: this analysis helps to determine where lazy
allocation could be used. ... At first, possible references to that
object are identified using alias analysis. Then, possible uses of a
reference are identified using use-def chains. Finally, the code for
lazy allocating the object is inserted before every possible use."

Our variant works on the field level the jack rewrite needs: for a
candidate field it enumerates every *possible first use* — each read of
the field in its visibility scope — which are exactly the program
points the null-check-then-allocate test must guard. The transformation
in :mod:`repro.transform.lazy_alloc` factors all of them through one
accessor (a simple but safe instance of PRE-style placement: the checks
are inserted at use sites rather than hoisted, trading a test per use
for correctness on all paths).
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.mjava import ast
from repro.mjava.sema import ClassTable


class FirstUseSite(NamedTuple):
    """A possible first use of a lazily-allocated field."""

    class_name: str
    member: str  # method name or "<init>"
    line: int
    kind: str  # 'name' (bare f) or 'this-field' (this.f) or 'field-access'


def _reads_in_member(class_name: str, member_name: str, body: ast.Block, field: str):
    out: List[FirstUseSite] = []

    def note(expr: ast.Expr, kind: str) -> None:
        out.append(FirstUseSite(class_name, member_name, expr.pos.line, kind))

    def scan_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Name) and expr.ident == field:
            note(expr, "name")
            return
        if isinstance(expr, ast.FieldAccess) and expr.name == field:
            if isinstance(expr.target, ast.This):
                note(expr, "this-field")
            else:
                note(expr, "field-access")
            scan_expr(expr.target)
            return
        for name in expr._fields:
            value = getattr(expr, name)
            if isinstance(value, ast.Expr):
                scan_expr(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Expr):
                        scan_expr(item)

    def scan_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            # a plain write "f = ..." is not a use; reads in the RHS and
            # inside compound targets are
            target = stmt.target
            if isinstance(target, ast.Index):
                scan_expr(target.array)
                scan_expr(target.index)
            elif isinstance(target, ast.FieldAccess):
                scan_expr(target.target)
            scan_expr(stmt.value)
            return
        for name in stmt._fields:
            value = getattr(stmt, name)
            if isinstance(value, ast.Expr):
                scan_expr(value)
            elif isinstance(value, ast.Stmt):
                scan_stmt(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Stmt):
                        scan_stmt(item)
                    elif isinstance(item, ast.Expr):
                        scan_expr(item)
                    elif isinstance(item, ast.CatchClause):
                        scan_stmt(item.body)

    scan_stmt(body)
    return out


def first_use_sites(table: ClassTable, class_name: str, field: str) -> List[FirstUseSite]:
    """Every possible first use of ``class_name.field``, scanning the
    field's visibility scope (private → declaring class only; otherwise
    every class, reads through any receiver counted by field name)."""
    info = table.get(class_name)
    decl = info.fields.get(field)
    if decl is None:
        return []
    if decl.mods.visibility == "private":
        scope = [info.decl]
    else:
        scope = [c.decl for c in table.classes.values()]
    out: List[FirstUseSite] = []
    for cls in scope:
        members = [("<init>", ctor.body) for ctor in cls.ctors]
        members += [(m.name, m.body) for m in cls.methods if m.body is not None]
        for member_name, body in members:
            for site in _reads_in_member(cls.name, member_name, body, field):
                # only name-reads bind to this field in foreign classes
                # when the class actually inherits it
                if site.kind == "name" and cls.name != class_name:
                    resolved = table.resolve_field(cls.name, field)
                    if resolved is None or resolved[0].name != class_name:
                        continue
                out.append(site)
    return out
