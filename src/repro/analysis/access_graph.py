"""Bounded access graphs for heap reference analysis.

The liveness of a heap *access path* (``db.index.buckets[].value``)
cannot be tracked path-by-path: loops build unboundedly long paths.
Khedker/Sanyal/Karkare's access graphs bound the representation by
summarizing paths as a rooted graph whose nodes are keyed by
``(label, allocation_site)`` — every occurrence of a field (or array
region) at the same allocation site maps to the *same* node, so a
path that grows around a loop folds into a cycle and the graph stops
growing. That merge is the widening: the graph over-approximates the
set of represented paths, which is the safe direction for liveness.

Three lattice operations are provided, matching the paper's algebra:

* :meth:`AccessGraph.union` — join at control-flow merges;
* :meth:`AccessGraph.extend` — append one field edge to every current
  frontier (the transfer function of ``x.f``);
* :meth:`AccessGraph.factorize` — split the graph at every node with a
  given label into (prefix reaching it, suffix subgraph hanging off
  it), the "remainder graph" used when a prefix is overwritten.

Graphs are immutable; all operations return new graphs, and equality
is structural so fixpoint loops can test convergence directly.
:meth:`paths` enumerates representative root-to-frontier paths with
cycles cut (marked ``…``) — the human-readable pinning paths that
``repro lint --explain`` prints.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, NamedTuple, Optional, Tuple

#: The synthetic root of every access graph (the variable/anchor the
#: paths hang off); never merged with field nodes.
ROOT = "<root>"


class AGNode(NamedTuple):
    """One access-graph node: a field/region label qualified by the
    allocation site of the object it was observed on (``None`` when
    the site is statically unknown — all unknown occurrences merge)."""

    label: str
    site: Optional[int] = None

    def pretty(self) -> str:
        if self.site is None:
            return self.label
        return f"{self.label}@{self.site}"


Edge = Tuple[object, AGNode]  # src is ROOT or an AGNode


class AccessGraph:
    """An immutable, bounded access graph rooted at ``root``.

    ``frontier`` marks the nodes live paths currently end at (the
    paper's "final" nodes); ``extend`` grows edges out of them.
    """

    __slots__ = ("root", "_edges", "_frontier", "_hash")

    def __init__(
        self,
        root: str,
        edges: Iterable[Edge] = (),
        frontier: Iterable[AGNode] = (),
    ) -> None:
        self.root = root
        self._edges: FrozenSet[Edge] = frozenset(edges)
        self._frontier: FrozenSet[AGNode] = frozenset(frontier)
        self._hash = hash((root, self._edges, self._frontier))

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls, root: str) -> "AccessGraph":
        """The graph representing only the root itself (no heap path)."""
        return cls(root)

    # -- basic views --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._edges

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    @property
    def frontier(self) -> FrozenSet[AGNode]:
        return self._frontier

    @property
    def nodes(self) -> FrozenSet[AGNode]:
        out = set()
        for src, dst in self._edges:
            if src is not ROOT:
                out.add(src)
            out.add(dst)
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.nodes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AccessGraph)
            and self.root == other.root
            and self._edges == other._edges
            and self._frontier == other._frontier
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"<access-graph {self.root} nodes={len(self)} edges={len(self._edges)}>"

    # -- lattice operations -------------------------------------------------

    def union(self, other: "AccessGraph") -> "AccessGraph":
        """Join: all paths of either graph (control-flow merge)."""
        if self.root != other.root:
            raise ValueError(f"union of different roots {self.root!r}/{other.root!r}")
        return AccessGraph(
            self.root,
            self._edges | other._edges,
            self._frontier | other._frontier,
        )

    def extend(self, label: str, site: Optional[int] = None) -> "AccessGraph":
        """Append ``.label`` to every represented path.

        The new node is keyed ``(label, site)``; if it already exists
        the edge lands on the existing node — this merge is what keeps
        repeated extension around a loop bounded.
        """
        node = AGNode(label, site)
        sources: Iterable[object] = self._frontier if self._frontier else (ROOT,)
        new_edges = {(src, node) for src in sources}
        return AccessGraph(self.root, self._edges | new_edges, (node,))

    def factorize(self, label: str) -> Tuple["AccessGraph", List["AccessGraph"]]:
        """Split at every node labeled ``label``: returns the prefix
        graph (paths not passing beyond such nodes, with those nodes as
        the new frontier) and one remainder graph per split node
        (rooted at the node, containing everything reachable from it)."""
        split = sorted(n for n in self.nodes if n.label == label)
        prefix_edges = set()
        reached = set()
        # Prefix: BFS from the root that stops *at* split nodes.
        work = [ROOT]
        seen = {ROOT}
        while work:
            src = work.pop()
            for edge_src, dst in self._edges:
                if edge_src != src:
                    continue
                prefix_edges.add((edge_src, dst))
                reached.add(dst)
                if dst.label == label:
                    continue
                if dst not in seen:
                    seen.add(dst)
                    work.append(dst)
        prefix = AccessGraph(
            self.root,
            prefix_edges,
            [n for n in reached if n.label == label],
        )
        remainders = []
        for node in split:
            sub_edges = set()
            work = [node]
            seen2 = {node}
            while work:
                src = work.pop()
                for edge_src, dst in self._edges:
                    if edge_src != src:
                        continue
                    # Re-root so the split node becomes the remainder's
                    # ROOT: the remainder is a well-formed graph whose
                    # paths hang off ``node.pretty()``.
                    sub_edges.add((ROOT if edge_src == node else edge_src, dst))
                    if dst not in seen2:
                        seen2.add(dst)
                        work.append(dst)
            sub_nodes = {dst for _, dst in sub_edges}
            sub_frontier = self._frontier & sub_nodes
            if not sub_frontier:
                has_out = {s for s, _ in sub_edges}
                sub_frontier = {n for n in sub_nodes if n not in has_out}
            remainders.append(AccessGraph(node.pretty(), sub_edges, sub_frontier))
        return prefix, remainders

    # -- path enumeration ---------------------------------------------------

    def paths(self, limit: int = 8, max_len: int = 12) -> List[str]:
        """Representative root-to-frontier paths, cycles cut with ``…``.

        Deterministic (sorted edge order) and bounded: at most
        ``limit`` paths of at most ``max_len`` segments each.
        """
        succs = {}
        for src, dst in sorted(self._edges, key=lambda e: (str(e[0]), e[1])):
            succs.setdefault(src, []).append(dst)
        out: List[str] = []

        def walk(node, trail, labels):
            if len(out) >= limit:
                return
            at_end = node is not ROOT and (
                node in self._frontier or not succs.get(node)
            )
            if at_end and labels:
                out.append(self.root + "." + ".".join(labels))
                if node in self._frontier:
                    return
            if len(labels) >= max_len:
                out.append(self.root + "." + ".".join(labels) + "…")
                return
            for nxt in succs.get(node, ()):
                if nxt in trail:
                    out.append(self.root + "." + ".".join(labels + [nxt.label, "…"]))
                    continue
                walk(nxt, trail | {nxt}, labels + [nxt.label])

        walk(ROOT, frozenset(), [])
        if not out and self.is_empty:
            out.append(self.root)
        # Dedup while preserving order (cycle cuts can repeat).
        seen = set()
        deduped = []
        for p in out:
            if p not in seen:
                seen.add(p)
                deduped.append(p)
        return deduped[:limit]
