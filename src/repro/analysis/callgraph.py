"""Call graph construction and reachable-method analysis (§5.4).

"The call graph shows the methods that are never called (unreachable
methods) and can be used to reduce the set of possible targets for a
virtual call site."

We use CHA-flavoured resolution on bytecode: a virtual invoke of ``m``
from a site dispatches to every non-static method named ``m`` (mini-Java
has no overloading, so name+arity identifies the method family); static
and super invokes resolve exactly. Reachability starts from ``main``,
every ``<clinit>``, and every finalizer of an instantiated class.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod, CompiledProgram

MethodKey = Tuple[str, str]  # (class, method name)


class CallGraph:
    """Edges between methods plus the reachable set."""

    def __init__(self, program: CompiledProgram) -> None:
        self.program = program
        self.edges: Dict[MethodKey, Set[MethodKey]] = {}
        self.reachable: Set[MethodKey] = set()
        self._build()

    # -- resolution ---------------------------------------------------------

    def _virtual_targets(self, name: str, argc: int) -> List[MethodKey]:
        out = []
        for cls_name, cls in self.program.classes.items():
            method = cls.methods.get(name)
            if method is not None and not method.is_static and method.param_count == argc:
                out.append((cls_name, name))
        return out

    def _static_target(self, class_name: str, name: str) -> Optional[MethodKey]:
        method = self.program.lookup_method(class_name, name)
        if method is None:
            return None
        return (method.class_name, method.name)

    def _method(self, key: MethodKey) -> Optional[CompiledMethod]:
        cls = self.program.classes.get(key[0])
        if cls is None:
            return None
        if key[1] == "<init>":
            return cls.ctor
        if key[1] == "<clinit>":
            return cls.clinit
        return cls.methods.get(key[1])

    def _callees(self, method: CompiledMethod) -> Set[MethodKey]:
        out: Set[MethodKey] = set()
        for instr in method.code:
            op = instr.op
            if op == Op.INVOKEV:
                name, argc = instr.args
                out.update(self._virtual_targets(name, argc))
            elif op in (Op.INVOKESTATIC, Op.INVOKESUPER):
                cls_name, name, _ = instr.args
                target = self._static_target(cls_name, name)
                if target is not None:
                    out.add(target)
            elif op == Op.NEWINIT:
                cls_name, _ = instr.args
                out.add((cls_name, "<init>"))
            elif op == Op.SUPERINIT:
                cls_name, _ = instr.args
                out.add((cls_name, "<init>"))
        return out

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        roots: List[MethodKey] = []
        if self.program.main_class:
            roots.append((self.program.main_class, "main"))
        for name, cls in self.program.classes.items():
            if cls.clinit is not None:
                roots.append((name, "<clinit>"))
        worklist = deque(roots)
        self.reachable.update(roots)
        while worklist:
            key = worklist.popleft()
            method = self._method(key)
            if method is None or method.is_native:
                continue
            callees = self._callees(method)
            # Instantiating a class with a finalizer makes the finalizer
            # reachable (the collector calls it).
            for target_cls, target_name in list(callees):
                if target_name == "<init>":
                    fin = self.program.classes[target_cls].methods.get("finalize")
                    if fin is not None:
                        callees.add((target_cls, "finalize"))
            self.edges[key] = callees
            for callee in callees:
                if callee not in self.reachable:
                    self.reachable.add(callee)
                    worklist.append(callee)

    # -- queries --------------------------------------------------------------

    def is_reachable(self, class_name: str, method_name: str) -> bool:
        return (class_name, method_name) in self.reachable

    def unreachable_methods(self, include_library: bool = False) -> List[MethodKey]:
        """Declared methods never called from main/<clinit> — the §5.4
        information that invalidates "possible uses" in dead code."""
        out = []
        for name, cls in sorted(self.program.classes.items()):
            if cls.is_library and not include_library:
                continue
            for method_name in sorted(cls.methods):
                if (name, method_name) not in self.reachable:
                    out.append((name, method_name))
        return out

    def reachable_compiled_methods(self) -> List[CompiledMethod]:
        out = []
        for key in self.reachable:
            method = self._method(key)
            if method is not None:
                out.append(method)
        return out

    def callees_of(self, class_name: str, method_name: str) -> Set[MethodKey]:
        return self.edges.get((class_name, method_name), set())

    def callers_of(self, class_name: str, method_name: str) -> Set[MethodKey]:
        target = (class_name, method_name)
        return {src for src, dsts in self.edges.items() if target in dsts}


def build_call_graph(program: CompiledProgram) -> CallGraph:
    return CallGraph(program)
