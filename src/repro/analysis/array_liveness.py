"""Array-element liveness (§5.2), after Shaham/Kolodner/Sagiv [24].

"In jess a dynamic vector-like array of references is maintained. After
removing the logically last element from this array, that element has no
future use. ... Array liveness analysis can detect this case."

Full array liveness is interprocedural and subscript-sensitive; this
module implements the *logical-size pattern* that covers the vector-like
containers the paper (and [24]) found in practice:

* a class holds a reference-array field ``data`` and an int field
  ``count``;
* every read ``data[e]`` inside the class is bounded by ``count`` —
  either ``e`` is a loop variable with guard ``e < count``, an index
  checked against ``count`` before the access, or ``count``/
  ``count - 1`` itself;
* then elements at indices ``>= count`` are dead, and every statement
  that decrements ``count`` is a *removal point* where ``data[count] =
  null`` can be inserted.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mjava import ast
from repro.mjava.sema import ClassInfo, ClassTable


def _names_in(expr: ast.Expr) -> List[str]:
    out = []
    for node in expr.walk():
        if isinstance(node, ast.Name):
            out.append(node.ident)
    return out


def _is_field_name(expr: ast.Expr, field: str) -> bool:
    return (isinstance(expr, ast.Name) and expr.ident == field) or (
        isinstance(expr, ast.FieldAccess)
        and isinstance(expr.target, ast.This)
        and expr.name == field
    )


class _ReadScanner:
    """Collects reads ``data[e]`` of one array field in one method body,
    along with whether each is bounded by the size field."""

    def __init__(self, array_field: str, size_field: str) -> None:
        self.array_field = array_field
        self.size_field = size_field
        self.unbounded: List[ast.Index] = []
        # names known (syntactically) to be < size_field in scope
        self._bounded_names: List[set] = [set()]

    def _guard_bounds(self, cond: ast.Expr, names: set) -> None:
        """Extract facts of the form ``x < count`` / ``x <= count - 1``
        / ``count > x`` from a condition (conjunctions only)."""
        if isinstance(cond, ast.Binary):
            if cond.op == "&&":
                self._guard_bounds(cond.left, names)
                self._guard_bounds(cond.right, names)
                return
            if cond.op in ("<", "<="):
                lhs, rhs = cond.left, cond.right
            elif cond.op in (">", ">="):
                lhs, rhs = cond.right, cond.left
            else:
                return
            bound_ok = _is_field_name(rhs, self.size_field) and cond.op in ("<", ">")
            bound_ok = bound_ok or (
                isinstance(rhs, ast.Binary)
                and rhs.op == "-"
                and _is_field_name(rhs.left, self.size_field)
            )
            if bound_ok and isinstance(lhs, ast.Name):
                names.add(lhs.ident)

    def _negated_guard_bounds(self, cond: ast.Expr, names: set) -> None:
        """Extract facts that hold *after* an early-exit guard
        ``if (cond) { throw/return; }``: the negation of every term of
        an ``||``-chain holds, so a term ``x >= count`` (or
        ``count <= x``) yields ``x < count`` afterwards."""
        if isinstance(cond, ast.Binary):
            if cond.op == "||":
                self._negated_guard_bounds(cond.left, names)
                self._negated_guard_bounds(cond.right, names)
                return
            if cond.op == ">=" and _is_field_name(cond.right, self.size_field):
                if isinstance(cond.left, ast.Name):
                    names.add(cond.left.ident)
            elif cond.op == "<=" and _is_field_name(cond.left, self.size_field):
                if isinstance(cond.right, ast.Name):
                    names.add(cond.right.ident)

    @staticmethod
    def _always_exits(stmt: ast.Stmt) -> bool:
        if isinstance(stmt, (ast.Throw, ast.Return, ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Block) and stmt.stmts:
            return _ReadScanner._always_exits(stmt.stmts[-1])
        return False

    def _index_is_bounded(self, index: ast.Expr) -> bool:
        # count or count-1 themselves
        if _is_field_name(index, self.size_field):
            return True
        if (
            isinstance(index, ast.Binary)
            and index.op == "-"
            and _is_field_name(index.left, self.size_field)
        ):
            return True
        if isinstance(index, ast.Name):
            return any(index.ident in scope for scope in self._bounded_names)
        return False

    def scan_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            # Early-exit guards establish bounds for the rest of the
            # block: `if (i >= count) { throw ...; } ... data[i] ...`.
            pushed = 0
            for inner in stmt.stmts:
                self.scan_stmt(inner)
                if (
                    isinstance(inner, ast.If)
                    and inner.otherwise is None
                    and self._always_exits(inner.then)
                ):
                    names = set()
                    self._negated_guard_bounds(inner.cond, names)
                    if names:
                        self._bounded_names.append(names)
                        pushed += 1
            for _ in range(pushed):
                self._bounded_names.pop()
        elif isinstance(stmt, ast.If):
            names = set()
            self._guard_bounds(stmt.cond, names)
            self.scan_expr(stmt.cond)
            self._bounded_names.append(names)
            self.scan_stmt(stmt.then)
            self._bounded_names.pop()
            if stmt.otherwise is not None:
                self.scan_stmt(stmt.otherwise)
        elif isinstance(stmt, (ast.While,)):
            names = set()
            self._guard_bounds(stmt.cond, names)
            self.scan_expr(stmt.cond)
            self._bounded_names.append(names)
            self.scan_stmt(stmt.body)
            self._bounded_names.pop()
        elif isinstance(stmt, ast.For):
            names = set()
            if stmt.cond is not None:
                self._guard_bounds(stmt.cond, names)
                self.scan_expr(stmt.cond)
            if stmt.init is not None:
                self.scan_stmt(stmt.init)
            self._bounded_names.append(names)
            self.scan_stmt(stmt.body)
            if stmt.update is not None:
                self.scan_stmt(stmt.update)
            self._bounded_names.pop()
        elif isinstance(stmt, ast.Assign):
            # A write data[e] = v does not *read* the element; only the
            # index and value expressions are scanned.
            if isinstance(stmt.target, ast.Index):
                self.scan_expr(stmt.target.index)
            else:
                self.scan_expr_children_only(stmt.target)
            self.scan_expr(stmt.value)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self.scan_expr(stmt.init)
        elif isinstance(stmt, ast.ExprStmt):
            self.scan_expr(stmt.expr)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.scan_expr(stmt.value)
        elif isinstance(stmt, ast.Throw):
            self.scan_expr(stmt.value)
        elif isinstance(stmt, ast.Try):
            self.scan_stmt(stmt.body)
            for clause in stmt.catches:
                self.scan_stmt(clause.body)
        elif isinstance(stmt, ast.Synchronized):
            self.scan_expr(stmt.monitor)
            self.scan_stmt(stmt.body)
        elif isinstance(stmt, ast.SuperCall):
            for arg in stmt.args:
                self.scan_expr(arg)

    def scan_expr_children_only(self, expr: ast.Expr) -> None:
        for child in expr.children():
            if isinstance(child, ast.Expr):
                self.scan_expr(child)

    def scan_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Index) and _is_field_name(expr.array, self.array_field):
            if not self._index_is_bounded(expr.index):
                self.unbounded.append(expr)
            self.scan_expr(expr.index)
            return
        self.scan_expr_children_only(expr)


def _decrements_of(info: ClassInfo, size_field: str):
    """(method_name, Assign) pairs where ``size_field`` is decremented."""
    out = []
    members = [("<init>", info.ctor)] if info.ctor else []
    members += [(m.name, m) for m in info.methods.values()]
    for name, member in members:
        body = member.body if member is not None else None
        if body is None:
            continue
        for node in body.walk():
            if (
                isinstance(node, ast.Assign)
                and _is_field_name(node.target, size_field)
                and isinstance(node.value, ast.Binary)
                and node.value.op == "-"
                and _is_field_name(node.value.left, size_field)
            ):
                out.append((name, node))
    return out


def logical_size_pairs(table: ClassTable, class_name: str) -> List[Tuple[str, str]]:
    """Detect (array_field, size_field) logical-size pairs in a class:
    a private reference-array field whose in-class reads are all bounded
    by an int field that the class decrements somewhere (removal)."""
    info = table.get(class_name)
    array_fields = [
        f.name
        for f in info.decl.fields
        if isinstance(f.type, ast.ArrayType)
        and f.type.element.is_reference()
        and not f.mods.static
    ]
    int_fields = [
        f.name
        for f in info.decl.fields
        if f.type == ast.INT and not f.mods.static
    ]
    pairs = []
    for array_field in array_fields:
        for size_field in int_fields:
            if not _decrements_of(info, size_field):
                continue
            scanner = _ReadScanner(array_field, size_field)
            members = ([info.ctor] if info.ctor else []) + list(info.methods.values())
            for member in members:
                if member.body is not None:
                    scanner.scan_stmt(member.body)
            if not scanner.unbounded:
                pairs.append((array_field, size_field))
    return pairs


def removal_points(table: ClassTable, class_name: str, pair: Tuple[str, str]):
    """Statements after which ``array[size] = null`` should be inserted:
    every decrement of the size field (unless the very next statement
    already nulls the slot). Returns (method_name, Assign) pairs."""
    array_field, size_field = pair
    info = table.get(class_name)
    return _decrements_of(info, size_field)
