"""repro — a reproduction of "Heap Profiling for Space-Efficient Java"
(Shaham, Kolodner, Sagiv; PLDI 2001).

The package provides, end to end:

* a mini-Java language with a compiler and virtual machine
  (:mod:`repro.mjava`, :mod:`repro.runtime`) standing in for the
  paper's instrumented Sun JVM 1.2;
* the two-phase drag profiler — the paper's contribution
  (:mod:`repro.core`);
* the Section-5 static analyses (:mod:`repro.analysis`);
* the three drag-reducing transformations and a profile-driven
  automatic optimizer (:mod:`repro.transform`);
* the nine benchmark programs and the harness regenerating every table
  and figure of the evaluation (:mod:`repro.benchmarks`).

Quickstart::

    from repro import profile_source, DragAnalysis, drag_report

    result = profile_source(source, "Main", interval_bytes=100 * 1024)
    analysis = DragAnalysis(result.records)
    print(drag_report(analysis, top=10, program=result.program))
"""

from repro.core import (
    DragAnalysis,
    HeapProfiler,
    LifetimePattern,
    ObjectRecord,
    ProfileResult,
    classify_group,
    curve_from_records,
    drag_report,
    integral_mb2,
    iter_log,
    profile_program,
    profile_source,
    read_log,
    savings,
    write_log,
)
from repro.stream import StreamingDragAnalysis, watch_log
from repro.mjava.compiler import compile_program
from repro.mjava.parser import parse_program
from repro.mjava.pretty import pretty_print
from repro.runtime.compiled import CompiledInterpreter
from repro.runtime.engine import Engine, VMConfig, create_vm, run_program
from repro.runtime.interpreter import Interpreter
from repro.runtime.library import link
from repro.transform import (
    assign_null_to_local,
    clear_array_slot_on_remove,
    lazy_allocate_field,
    optimize,
    remove_dead_allocations,
)

__version__ = "1.0.0"

__all__ = [
    "DragAnalysis",
    "HeapProfiler",
    "LifetimePattern",
    "ObjectRecord",
    "ProfileResult",
    "classify_group",
    "curve_from_records",
    "drag_report",
    "integral_mb2",
    "profile_program",
    "profile_source",
    "read_log",
    "iter_log",
    "savings",
    "write_log",
    "StreamingDragAnalysis",
    "watch_log",
    "compile_program",
    "parse_program",
    "pretty_print",
    "Interpreter",
    "CompiledInterpreter",
    "Engine",
    "VMConfig",
    "create_vm",
    "run_program",
    "link",
    "assign_null_to_local",
    "clear_array_slot_on_remove",
    "lazy_allocate_field",
    "optimize",
    "remove_dead_allocations",
    "__version__",
]
