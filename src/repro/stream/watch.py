"""``repro watch``: tail a growing profile log and summarize it live.

Works on both formats: v2 logs are tailed frame-by-frame with
:class:`~repro.stream.codec.V2TailReader`; v1 JSONL logs are tailed
line-by-line (a partial final line stays pending until the writer
finishes it). Each poll folds the new records into a
:class:`~repro.stream.aggregate.StreamingDragAnalysis` — memory stays
O(sites) no matter how large the log grows — and refreshes a top-K
drag summary, optionally flushing a machine-readable JSON snapshot.

``repro watch --follow HOST:PORT`` (:func:`follow_server`) is the same
loop pointed at a serve daemon instead of a file: each poll GETs
/summary and /rankings and renders the merged-across-all-clients view,
feeding the identical ``repro_live_*`` gauge names so dashboards don't
care whether they scrape a file tail or the service.
"""

from __future__ import annotations

import json
import sys
import time as _time
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import ProfileError
from repro.core.trailer import ObjectRecord
from repro.core.integrals import MB
from repro.stream.aggregate import StreamingDragAnalysis
from repro.stream.codec import MAGIC, V2TailReader
from repro.stream.live import snapshot, update_registry, write_metrics_json


class _V1Tail:
    """Incremental reader for a (possibly still growing) v1 JSONL log."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.metadata: dict = {}
        self.end_time: Optional[int] = None
        self.finalizer_errors: Optional[int] = None
        self.ended = False
        self._offset = 0
        self._pending = b""
        self._header_done = False

    def _take_line(self) -> Optional[str]:
        newline = self._pending.find(b"\n")
        if newline < 0:
            return None
        line = self._pending[:newline].decode("utf-8")
        self._pending = self._pending[newline + 1 :]
        return line

    def poll(self) -> List[Tuple[str, object]]:
        with open(self.path, "rb") as f:
            if self._header_done and not self.ended:
                # The streaming writer patches end_time into the padded
                # header at close; re-read line 1 to notice the finish.
                first = f.readline()
                try:
                    header = json.loads(first)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    header = {}
                if header.get("end_time") is not None:
                    self.end_time = header["end_time"]
                    self.finalizer_errors = header.get("finalizer_errors")
            f.seek(self._offset)
            chunk = f.read()
        self._offset += len(chunk)
        self._pending += chunk
        events: List[Tuple[str, object]] = []
        while True:
            line = self._take_line()
            if line is None:
                break
            if not self._header_done:
                try:
                    header = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ProfileError(f"{self.path}: bad log header: {exc}") from exc
                if header.get("format") != "repro-drag-log":
                    raise ProfileError(f"{self.path}: not a repro-drag-log file")
                self.metadata = header.get("metadata") or {}
                self.end_time = header.get("end_time")
                self.finalizer_errors = header.get("finalizer_errors")
                self._header_done = True
                continue
            if not line.strip():
                continue
            try:
                record = ObjectRecord.from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ProfileError(f"{self.path}: bad record: {exc}") from exc
            events.append(("record", record))
        if self.end_time is not None and not self.ended:
            self.ended = True
            events.append(("end", self.end_time))
        return events


def _open_tail(path: Path):
    with open(path, "rb") as f:
        head = f.read(len(MAGIC))
    if head == MAGIC:
        return V2TailReader(path)
    return _V1Tail(path)


def _mb2(bytes2: int) -> float:
    return bytes2 / (MB * MB)


def render_summary(
    path,
    analysis: StreamingDragAnalysis,
    last_sample,
    sample_count: int,
    top: int,
    finished: bool,
    finalizer_errors: Optional[int] = None,
) -> str:
    """One refresh of the watch display."""
    state = "finished" if finished else "live"
    lines = [f"=== repro watch {path} ({state}) ==="]
    lines.append(
        f"records {analysis.object_count}"
        f"   drag-so-far {_mb2(analysis.total_drag):.4f} MB^2"
        f"   logged bytes {analysis.total_bytes}"
    )
    if analysis.sampled:
        lines.append(
            f"byte-sampled: effective rate {analysis.effective_sample_rate:.6f}"
            f"   est records {analysis.est_object_count:.1f}"
            f"   est drag {_mb2(analysis.est_total_drag):.4f} MB^2"
        )
    if finalizer_errors:
        lines.append(f"finalizer errors: {finalizer_errors} (swallowed)")
    if last_sample is not None:
        lines.append(
            f"heap @ t={last_sample.time}: {last_sample.reachable_bytes} B reachable"
            f" in {last_sample.object_count} objects"
            f"   deep-GC samples {sample_count}"
        )
    groups = analysis.sorted_sites(top)
    if groups:
        lines.append(f"top {len(groups)} sites by drag:")
        for rank, stats in enumerate(groups, start=1):
            lines.append(
                f"  #{rank} {stats.key}: drag {_mb2(stats.total_drag):.4f} MB^2"
                f"  objects {stats.count}  never-used {stats.never_used_count}"
            )
    else:
        lines.append("(no records yet)")
    return "\n".join(lines)


def watch_log(
    path: Union[str, Path],
    once: bool = False,
    poll_interval: float = 1.0,
    top: int = 10,
    metrics_json: Optional[str] = None,
    out=None,
    max_polls: Optional[int] = None,
    registry=None,
    metrics_out: Optional[str] = None,
) -> StreamingDragAnalysis:
    """Tail ``path`` until the log ends (or forever), printing a
    refreshed summary after each poll that saw new data.

    ``once`` reads what is there now, prints a single summary, and
    returns. ``max_polls`` bounds the loop for tests. ``registry`` (a
    :class:`repro.obs.MetricsRegistry`) receives the same ``repro_live_*``
    gauges :class:`~repro.stream.live.MetricsSink` maintains;
    ``metrics_out`` additionally flushes its Prometheus exposition to a
    file after each refresh. Returns the accumulated analysis.
    """
    if registry is None and metrics_out is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    path = Path(path)
    out = out if out is not None else sys.stdout
    waited = 0.0
    while not path.exists():
        if once:
            raise ProfileError(f"{path}: no such log file")
        _time.sleep(poll_interval)
        waited += poll_interval
        if max_polls is not None and waited / poll_interval >= max_polls:
            raise ProfileError(f"{path}: log never appeared")
    tail = _open_tail(path)
    analysis = StreamingDragAnalysis()
    last_sample = None
    sample_count = 0
    finished = False
    polls = 0
    while True:
        polls += 1
        events = tail.poll()
        for kind, value in events:
            if kind == "record":
                analysis.add(value)
            elif kind == "sample":
                last_sample = value
                sample_count += 1
            elif kind == "end":
                analysis.end_time = value
                finished = True
        if events or once or polls == 1:
            finalizer_errors = getattr(tail, "finalizer_errors", None)
            print(
                render_summary(
                    path,
                    analysis,
                    last_sample,
                    sample_count,
                    top,
                    finished,
                    finalizer_errors=finalizer_errors,
                ),
                file=out,
            )
            if metrics_json or registry is not None:
                metrics = snapshot(
                    analysis,
                    time=(
                        analysis.end_time
                        if finished and analysis.end_time is not None
                        else (last_sample.time if last_sample else 0)
                    ),
                    reachable_bytes=last_sample.reachable_bytes if last_sample else 0,
                    reachable_objects=last_sample.object_count if last_sample else 0,
                    sample_count=sample_count,
                    top_k=top,
                    finished=finished,
                    finalizer_errors=finalizer_errors or 0,
                )
                if metrics_json:
                    write_metrics_json(metrics, metrics_json)
                if registry is not None:
                    update_registry(registry, metrics)
                    if metrics_out:
                        registry.write_exposition(metrics_out)
        if once or finished:
            return analysis
        if max_polls is not None and polls >= max_polls:
            return analysis
        _time.sleep(poll_interval)


def render_follow_summary(
    hostport: str,
    summary: dict,
    rankings: dict,
    top: int,
    timeline: Optional[dict] = None,
) -> str:
    """One refresh of the ``--follow`` display (server-side state).

    When the daemon serves ``/timeline``, its payload adds a live drag
    sparkline + effective-sample-rate gauge row, and the banner states
    the bin width so readers know the x-resolution at a glance."""
    draining = summary.get("draining")
    active = summary.get("active_clients", 0)
    state = "draining" if draining else (f"{active} live client(s)" if active else "idle")
    if timeline and timeline.get("bin_bytes"):
        from repro.obs.timeline import format_bytes

        state += f"; timeline bin {format_bytes(timeline['bin_bytes'])}"
    lines = [f"=== repro watch {hostport} ({state}) ==="]
    streams = summary.get("streams", [])
    truncated = sum(1 for s in streams if s.get("truncated"))
    lines.append(
        f"records {summary['objects']}"
        f"   drag-so-far {_mb2(summary['total_drag']):.4f} MB^2"
        f"   logged bytes {summary['total_bytes']}"
        f"   streams {len(streams)}"
        + (f" ({truncated} truncated)" if truncated else "")
    )
    rate = summary.get("effective_sample_rate", 1.0)
    if rate != 1.0:
        lines.append(
            f"byte-sampled: effective rate {rate:.6f}"
            f"   est records {summary.get('est_objects', 0):.1f}"
            f"   est drag {_mb2(summary.get('est_total_drag', 0)):.4f} MB^2"
        )
    shard_counts = [s["records"] for s in summary.get("shards", [])]
    if shard_counts:
        lines.append(
            f"shards {len(shard_counts)}: records/shard "
            + "/".join(str(c) for c in shard_counts)
        )
    if timeline and timeline.get("bins"):
        from repro.obs.timeline import payload_series, sparkline

        bin_bytes = timeline["bin_bytes"]
        drag = [v / bin_bytes for v in payload_series(timeline, "drag")]
        lines.append(
            f"drag {sparkline(drag, width=min(40, max(1, len(drag))))}"
            f"   rate {timeline.get('effective_sample_rate', 1.0):.6f}"
            f"   bins {timeline['bins']}"
        )
    sites = rankings.get("sites", [])
    if sites:
        lines.append(f"top {len(sites)} sites by drag:")
        for entry in sites:
            lines.append(
                f"  #{entry['rank']} {entry['site']}: "
                f"drag {_mb2(entry.get('est_drag', entry['drag'])):.4f} MB^2"
                f"  objects {entry['objects']}"
                f"  never-used {entry['never_used']}"
            )
    else:
        lines.append("(no records yet)")
    return "\n".join(lines)


def follow_server(
    hostport: str,
    once: bool = False,
    poll_interval: float = 1.0,
    top: int = 10,
    metrics_json: Optional[str] = None,
    out=None,
    max_polls: Optional[int] = None,
    registry=None,
    metrics_out: Optional[str] = None,
) -> dict:
    """Poll a serve daemon's /summary + /rankings until it drains.

    The file-tail twin of :func:`watch_log`: same flags, same rendered
    shape, same ``repro_live_*`` gauges (via ``registry`` /
    ``metrics_out``). Returns the last /summary body. Ends on ``once``,
    ``max_polls``, server drain, or the daemon going away.
    """
    from repro.serve.client import fetch_json, fetch_rankings
    from repro.serve.protocol import parse_hostport
    from repro.stream.live import LiveMetrics, update_registry, write_metrics_json

    if registry is None and metrics_out is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    addr = parse_hostport(hostport)
    out = out if out is not None else sys.stdout
    polls = 0
    summary: dict = {}
    while True:
        polls += 1
        try:
            summary = fetch_json(addr, "/summary")
            rankings = fetch_rankings(addr, top=top)
        except OSError as exc:
            if summary:  # daemon went away mid-follow: report what we had
                print(f"(server {hostport} gone: {exc})", file=out)
                return summary
            raise ProfileError(f"cannot reach serve daemon at {hostport}: {exc}")
        try:
            # Tolerant: older daemons and --timeline-bin-bytes 0 both
            # 404 here; the follow display just omits the gauge row.
            timeline = fetch_json(addr, "/timeline?top=1")
        except (OSError, ValueError):
            timeline = None
        print(
            render_follow_summary(hostport, summary, rankings, top,
                                  timeline=timeline),
            file=out,
        )
        finished = bool(summary.get("draining")) or (
            bool(summary.get("streams")) and summary.get("active_clients", 0) == 0
        )
        if metrics_json or registry is not None:
            metrics = LiveMetrics(
                time=summary.get("end_time") or 0,
                reachable_bytes=0,  # a deep-GC-point notion; not served
                reachable_objects=0,
                records_seen=summary["objects"],
                total_drag=summary["total_drag"],
                total_bytes=summary["total_bytes"],
                sample_count=summary.get("samples", 0),
                top_sites=rankings.get("sites", []),
                finished=finished,
            )
            if metrics_json:
                write_metrics_json(metrics, metrics_json)
            if registry is not None:
                update_registry(registry, metrics)
                if metrics_out:
                    registry.write_exposition(metrics_out)
        if once or summary.get("draining"):
            return summary
        if max_polls is not None and polls >= max_polls:
            return summary
        _time.sleep(poll_interval)
