"""Incremental drag aggregation in O(sites) memory.

:class:`StreamingDragAnalysis` consumes one record at a time and
maintains exactly the aggregates the batch
:class:`repro.core.analyzer.DragAnalysis` derives from its record
lists — per-site count/bytes/drag/in-use sums, the never-used
partition, and the nested and (site, last-use) partitions — without
ever holding the records themselves. Sorting and filtering reproduce
the batch comparators bit for bit, so the two analyses agree exactly
on any stream (the equivalence is pinned by
``tests/stream/test_aggregate.py`` on real benchmark profiles).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.sampler import WeightedTotal
from repro.core.trailer import ObjectRecord


class SiteStats:
    """Running aggregates for one partition key — the streaming
    counterpart of :class:`repro.core.analyzer.SiteGroup`, minus the
    record list."""

    __slots__ = (
        "key",
        "count",
        "total_bytes",
        "total_drag",
        "total_in_use",
        "never_used_count",
        "never_used_drag",
        "_est_count",
        "_est_bytes",
        "_est_drag",
        "_est_in_use",
        "_est_never_used_drag",
        "type_names",
    )

    def __init__(self, key) -> None:
        self.key = key
        self.count = 0
        self.total_bytes = 0
        self.total_drag = 0
        self.total_in_use = 0
        self.never_used_count = 0
        self.never_used_drag = 0
        # Weight-corrected estimates, mirroring SiteGroup.est_*: exact
        # ints equal to the observed sums while every weight is 1.0,
        # order-independent exact floats (WeightedTotal) once weighted
        # records appear — so a sharded merge lands on the same bits as
        # a single-stream fold.
        self._est_count = WeightedTotal()
        self._est_bytes = WeightedTotal()
        self._est_drag = WeightedTotal()
        self._est_in_use = WeightedTotal()
        self._est_never_used_drag = WeightedTotal()
        self.type_names: List[str] = []  # insertion-ordered, deduplicated

    def add(self, record: ObjectRecord) -> None:
        drag = record.drag
        self.count += 1
        self.total_bytes += record.size
        self.total_drag += drag
        self.total_in_use += record.size * record.in_use_time
        self._est_count.add(record.weighted_count)
        self._est_bytes.add(record.weighted_size)
        est_drag = record.weighted_drag
        self._est_drag.add(est_drag)
        self._est_in_use.add(record.weighted_in_use)
        if record.never_used:
            self.never_used_count += 1
            self.never_used_drag += drag
            self._est_never_used_drag.add(est_drag)
        if record.type_name not in self.type_names:
            self.type_names.append(record.type_name)

    @property
    def est_count(self) -> float:
        return self._est_count.value

    @property
    def est_bytes(self) -> float:
        return self._est_bytes.value

    @property
    def est_drag(self) -> float:
        return self._est_drag.value

    @property
    def est_in_use(self) -> float:
        return self._est_in_use.value

    @property
    def est_never_used_drag(self) -> float:
        return self._est_never_used_drag.value

    @property
    def never_used_fraction(self) -> float:
        return self.never_used_drag / self.total_drag if self.total_drag > 0 else 0.0

    @property
    def all_never_used(self) -> bool:
        return self.count > 0 and self.never_used_count == self.count

    def merge(self, other: "SiteStats") -> None:
        """Fold another shard's stats for the same key into this one
        (the multi-process merge primitive)."""
        if other.key != self.key:
            raise ValueError(f"cannot merge {other.key!r} into {self.key!r}")
        self.count += other.count
        self.total_bytes += other.total_bytes
        self.total_drag += other.total_drag
        self.total_in_use += other.total_in_use
        self.never_used_count += other.never_used_count
        self.never_used_drag += other.never_used_drag
        self._est_count.merge(other._est_count)
        self._est_bytes.merge(other._est_bytes)
        self._est_drag.merge(other._est_drag)
        self._est_in_use.merge(other._est_in_use)
        self._est_never_used_drag.merge(other._est_never_used_drag)
        for name in other.type_names:
            if name not in self.type_names:
                self.type_names.append(name)

    def __repr__(self) -> str:
        return f"<stats {self.key} n={self.count} drag={self.total_drag}>"


class StreamingDragAnalysis:
    """One-pass, bounded-memory analyzer over a record stream.

    Mirrors the partitions of the batch analyzer: ``by_site`` (plain
    allocation site), ``by_nested`` (call chain), and
    ``by_site_and_use`` ((site, last-use frame)). Feed it with
    :meth:`add` — directly, via an
    :class:`~repro.stream.sinks.AggregatorSink` during a live run, or
    from a log with :meth:`consume`.
    """

    def __init__(self, include_library_sites: bool = True) -> None:
        self.include_library_sites = include_library_sites
        self.by_site: Dict[object, SiteStats] = {}
        self.by_nested: Dict[object, SiteStats] = {}
        self.by_site_and_use: Dict[object, SiteStats] = {}
        self.object_count = 0
        self.total_bytes = 0
        self.total_drag = 0
        # Weight-corrected totals (== the observed ints at full rate).
        self._est_object_count = WeightedTotal()
        self._est_total_bytes = WeightedTotal()
        self._est_total_drag = WeightedTotal()
        self.sampled = False
        self.end_time: Optional[int] = None
        # Optional attached repro.obs.timeline.TimelineBuilder (duck
        # typed so this module never imports obs). When present it sees
        # *every* record, before the excluded/library filters: the
        # timeline is a log-level view, which is what keeps it
        # bit-identical to a recompute from the raw v2 log.
        self.timeline = None

    # -- ingestion --------------------------------------------------------

    def add(self, record: ObjectRecord) -> None:
        """Fold one record in; applies the same excluded/library filter
        as the batch analyzer's constructor."""
        if self.timeline is not None:
            self.timeline.add(record)
        if record.excluded:
            return
        if not self.include_library_sites and record.site_is_library:
            return
        self.object_count += 1
        self.total_bytes += record.size
        self.total_drag += record.drag
        self._est_object_count.add(record.weighted_count)
        self._est_total_bytes.add(record.weighted_size)
        self._est_total_drag.add(record.weighted_drag)
        if record.weight != 1.0:
            self.sampled = True
        self._bump(self.by_site, record.site_label, record)
        self._bump(
            self.by_nested, record.nested_alloc or (record.site_label,), record
        )
        self._bump(
            self.by_site_and_use, (record.site_label, record.last_use_frame), record
        )

    def consume(self, records) -> "StreamingDragAnalysis":
        """Fold in an iterable of records (e.g. ``iter_log(path)``);
        returns self for chaining."""
        for record in records:
            self.add(record)
        return self

    @staticmethod
    def _bump(table: Dict[object, SiteStats], key, record: ObjectRecord) -> None:
        stats = table.get(key)
        if stats is None:
            stats = table[key] = SiteStats(key)
        stats.add(record)

    # -- sorted views (batch-identical comparators) -----------------------

    def sorted_sites(self, limit: Optional[int] = None) -> List[SiteStats]:
        groups = sorted(
            self.by_site.values(), key=lambda g: (-g.est_drag, str(g.key))
        )
        return groups[:limit] if limit else groups

    def sorted_nested(self, limit: Optional[int] = None) -> List[SiteStats]:
        groups = sorted(
            self.by_nested.values(), key=lambda g: (-g.est_drag, str(g.key))
        )
        return groups[:limit] if limit else groups

    def never_used_sites(self, limit: Optional[int] = None) -> List[SiteStats]:
        groups = [
            g for g in self.by_site.values() if g.all_never_used and g.total_drag > 0
        ]
        groups.sort(key=lambda g: (-g.est_drag, str(g.key)))
        return groups[:limit] if limit else groups

    def site(self, label: str) -> Optional[SiteStats]:
        return self.by_site.get(label)

    @property
    def est_object_count(self):
        return self._est_object_count.value

    @property
    def est_total_bytes(self):
        return self._est_total_bytes.value

    @property
    def est_total_drag(self):
        return self._est_total_drag.value

    @property
    def effective_sample_rate(self) -> float:
        """Observed bytes / estimated bytes — 1.0 for full-rate streams."""
        est = self.est_total_bytes
        return self.total_bytes / est if est > 0 else 1.0

    def drag_share(self, stats: SiteStats) -> float:
        total = self.est_total_drag
        return stats.est_drag / total if total > 0 else 0.0

    # -- merge ------------------------------------------------------------

    def merge(self, other: "StreamingDragAnalysis") -> "StreamingDragAnalysis":
        """Fold another aggregator (e.g. from a sharded run) into this
        one; per-site sums are associative so the result equals a
        single-stream analysis of the concatenated logs."""
        self.object_count += other.object_count
        self.total_bytes += other.total_bytes
        self.total_drag += other.total_drag
        self._est_object_count.merge(other._est_object_count)
        self._est_total_bytes.merge(other._est_total_bytes)
        self._est_total_drag.merge(other._est_total_drag)
        self.sampled = self.sampled or other.sampled
        for table_name in ("by_site", "by_nested", "by_site_and_use"):
            mine: Dict[object, SiteStats] = getattr(self, table_name)
            theirs: Dict[object, SiteStats] = getattr(other, table_name)
            for key, stats in theirs.items():
                existing = mine.get(key)
                if existing is None:
                    fresh = SiteStats(key)
                    fresh.merge(stats)
                    mine[key] = fresh
                else:
                    existing.merge(stats)
        other_timeline = getattr(other, "timeline", None)
        if other_timeline is not None:
            if self.timeline is None:
                self.timeline = other_timeline.empty_like()
            self.timeline.merge(other_timeline)
        if other.end_time is not None:
            if self.end_time is None:
                self.end_time = other.end_time
            else:
                self.end_time = max(self.end_time, other.end_time)
        return self
