"""The compact v2 log codec: length-prefixed binary frames.

Layout::

    MAGIC "RDL2"  VERSION(1 byte)  uvarint(len)  header-JSON
    frame*                         # type byte, uvarint(len), payload
    [END frame]                    # end_time + record count, at close

Frame types: ``STRING`` interns one UTF-8 string into the reader's
string table (ids are assigned sequentially in order of appearance, so
the table never needs to be declared up front and the writer can
stream); ``RECORD`` is one struct-packed object record whose strings —
type name, site labels, nested call chains — are table ids; ``SAMPLE``
is one deep-GC heap sample; ``END`` closes the log.

All integers are unsigned LEB128 varints, so the common small values
(sizes, table ids, chain lengths) take one byte. Because every frame is
length-prefixed, a reader can detect a truncated tail (crashed run)
and, in non-strict mode, simply stop there — and the tail reader behind
``repro watch`` can resume parsing exactly where the last complete
frame ended while the file is still growing.

Typical v2 logs are 5-10x smaller than the JSONL v1 equivalent; the
string table is what removes the per-record repetition of site labels
and call chains.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ProfileError
from repro.core.trailer import ObjectRecord

MAGIC = b"RDL2"
VERSION = 2

FRAME_STRING = 0x01
FRAME_RECORD = 0x02
FRAME_SAMPLE = 0x03
FRAME_END = 0x04

# Record flag bits.
_F_LIBRARY = 0x01
_F_EXCLUDED = 0x02
_F_SURVIVED = 0x04
_F_HAS_SITE = 0x08
_F_HAS_USE_FRAME = 0x10
_F_HAS_USE_CHAIN = 0x20
# Byte-sampled record: an IEEE-754 double (little-endian) statistical
# weight trails the payload. Set only when weight != 1.0, so full-rate
# logs are byte-identical to logs written before the field existed, and
# readers predating the bit parse weighted-era full-rate logs unchanged.
_F_HAS_WEIGHT = 0x40


def _write_uvarint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one uvarint at ``pos``; returns (value, next_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise IndexError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class V2FrameEncoder:
    """Encode the v2 frame stream onto any binary ``write()`` target.

    The byte sequence is identical whether the target is a file (via
    :class:`V2LogWriter`) or a socket (via
    :class:`repro.serve.client.ServeSink`), so a server ingesting the
    stream and a reader replaying the file decode with the same parser.
    """

    def __init__(self, out, metadata: Optional[dict] = None) -> None:
        self.metadata = metadata
        self.count = 0
        self.sample_count = 0
        # Weight-estimated totals (Horvitz-Thompson): ints until the
        # first weighted record, so full-rate streams never emit them.
        self.weighted_count = 0
        self.weighted_bytes = 0
        self._weighted = False
        self._strings: Dict[str, int] = {}
        self._out = out
        header = {"format": "repro-drag-log", "version": VERSION}
        if metadata:
            header["metadata"] = metadata
        payload = json.dumps(header).encode("utf-8")
        prefix = bytearray()
        prefix += MAGIC
        prefix.append(VERSION)
        _write_uvarint(prefix, len(payload))
        self._out.write(bytes(prefix) + payload)

    # -- frame plumbing ---------------------------------------------------

    def _frame(self, frame_type: int, payload: bytes) -> None:
        head = bytearray()
        head.append(frame_type)
        _write_uvarint(head, len(payload))
        self._out.write(bytes(head) + payload)

    def _intern(self, text: str) -> int:
        sid = self._strings.get(text)
        if sid is None:
            sid = self._strings[text] = len(self._strings)
            self._frame(FRAME_STRING, text.encode("utf-8"))
        return sid

    # -- events -----------------------------------------------------------

    def write_record(self, record: ObjectRecord) -> None:
        flags = 0
        if record.site_is_library:
            flags |= _F_LIBRARY
        if record.excluded:
            flags |= _F_EXCLUDED
        if record.survived_to_end:
            flags |= _F_SURVIVED
        if record.alloc_site is not None:
            flags |= _F_HAS_SITE
        if record.last_use_frame is not None:
            flags |= _F_HAS_USE_FRAME
        if record.last_use_chain is not None:
            flags |= _F_HAS_USE_CHAIN
        weight = record.weight
        if weight != 1.0:
            flags |= _F_HAS_WEIGHT
        # Interning may emit STRING frames; they must precede the record.
        type_id = self._intern(record.type_name)
        label_id = self._intern(record.site_label)
        kind_id = self._intern(record.site_kind)
        nested_ids = [self._intern(s) for s in record.nested_alloc]
        frame_id = (
            self._intern(record.last_use_frame)
            if record.last_use_frame is not None
            else None
        )
        chain_ids = (
            [self._intern(s) for s in record.last_use_chain]
            if record.last_use_chain is not None
            else None
        )
        buf = bytearray()
        buf.append(flags)
        for value in (
            record.handle,
            record.size,
            record.creation_time,
            record.first_use_time,
            record.last_use_time,
            record.collection_time,
        ):
            _write_uvarint(buf, value)
        if record.alloc_site is not None:
            _write_uvarint(buf, record.alloc_site)
        _write_uvarint(buf, type_id)
        _write_uvarint(buf, label_id)
        _write_uvarint(buf, kind_id)
        _write_uvarint(buf, len(nested_ids))
        for sid in nested_ids:
            _write_uvarint(buf, sid)
        if frame_id is not None:
            _write_uvarint(buf, frame_id)
        if chain_ids is not None:
            _write_uvarint(buf, len(chain_ids))
            for sid in chain_ids:
                _write_uvarint(buf, sid)
        if weight != 1.0:
            # Trailing position is load-bearing: serve-side resampling
            # rewrites the weight by splicing the tail without reparsing
            # the varint body (see reweight_record).
            buf += struct.pack("<d", weight)
            self._weighted = True
            self.weighted_count += weight
            self.weighted_bytes += weight * record.size
        else:
            self.weighted_count += 1
            self.weighted_bytes += record.size
        self._frame(FRAME_RECORD, bytes(buf))
        self.count += 1

    def write_sample(self, sample) -> None:
        buf = bytearray()
        _write_uvarint(buf, sample.time)
        _write_uvarint(buf, sample.reachable_bytes)
        _write_uvarint(buf, sample.object_count)
        self._frame(FRAME_SAMPLE, bytes(buf))
        self.sample_count += 1

    def write_end(
        self,
        end_time: Optional[int] = None,
        finalizer_errors: Optional[int] = None,
    ) -> None:
        buf = bytearray()
        _write_uvarint(buf, 0 if end_time is None else end_time + 1)
        _write_uvarint(buf, self.count)
        # Trailing optional field (None-biased, 0 = unknown): readers of
        # older logs stop at the declared count, newer readers pick this
        # up when present.
        _write_uvarint(
            buf, 0 if finalizer_errors is None else finalizer_errors + 1
        )
        if self._weighted:
            # Weight-estimated totals alongside the observed count:
            # emitted only for sampled streams (so full-rate logs stay
            # byte-identical), and strictly trailing (so readers that
            # predate them parse the frame unchanged).
            buf += struct.pack(
                "<dd", float(self.weighted_count), float(self.weighted_bytes)
            )
        self._frame(FRAME_END, bytes(buf))


class V2LogWriter(V2FrameEncoder):
    """Streaming writer: frames hit the file as events arrive."""

    def __init__(self, path: Union[str, Path], metadata: Optional[dict] = None) -> None:
        self.path = Path(path)
        self._file: Optional[IO[bytes]] = open(self.path, "wb")
        super().__init__(self._file, metadata=metadata)

    def close(
        self,
        end_time: Optional[int] = None,
        finalizer_errors: Optional[int] = None,
    ) -> None:
        if self._file is None:
            return
        self.write_end(end_time=end_time, finalizer_errors=finalizer_errors)
        self._file.close()
        self._file = None

    def __enter__(self) -> "V2LogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_record(payload: bytes, strings: List[str]) -> ObjectRecord:
    pos = 0
    flags = payload[pos]
    pos += 1
    handle, pos = _read_uvarint(payload, pos)
    size, pos = _read_uvarint(payload, pos)
    created, pos = _read_uvarint(payload, pos)
    first_use, pos = _read_uvarint(payload, pos)
    last_use, pos = _read_uvarint(payload, pos)
    collected, pos = _read_uvarint(payload, pos)
    alloc_site = None
    if flags & _F_HAS_SITE:
        alloc_site, pos = _read_uvarint(payload, pos)
    type_id, pos = _read_uvarint(payload, pos)
    label_id, pos = _read_uvarint(payload, pos)
    kind_id, pos = _read_uvarint(payload, pos)
    nested_len, pos = _read_uvarint(payload, pos)
    nested = []
    for _ in range(nested_len):
        sid, pos = _read_uvarint(payload, pos)
        nested.append(strings[sid])
    use_frame = None
    if flags & _F_HAS_USE_FRAME:
        sid, pos = _read_uvarint(payload, pos)
        use_frame = strings[sid]
    use_chain = None
    if flags & _F_HAS_USE_CHAIN:
        chain_len, pos = _read_uvarint(payload, pos)
        chain = []
        for _ in range(chain_len):
            sid, pos = _read_uvarint(payload, pos)
            chain.append(strings[sid])
        use_chain = tuple(chain)
    weight = 1.0
    if flags & _F_HAS_WEIGHT:
        weight = struct.unpack_from("<d", payload, pos)[0]
    return ObjectRecord(
        handle=handle,
        type_name=strings[type_id],
        size=size,
        creation_time=created,
        first_use_time=first_use,
        last_use_time=last_use,
        collection_time=collected,
        alloc_site=alloc_site,
        site_label=strings[label_id],
        site_kind=strings[kind_id],
        site_is_library=bool(flags & _F_LIBRARY),
        nested_alloc=tuple(nested),
        last_use_frame=use_frame,
        last_use_chain=use_chain,
        excluded=bool(flags & _F_EXCLUDED),
        survived_to_end=bool(flags & _F_SURVIVED),
        weight=weight,
    )


def record_weight(payload: bytes) -> float:
    """A RECORD payload's statistical weight without a full decode.

    The weight double trails the payload, so this is one flag test plus
    (for sampled records) one fixed-offset unpack.
    """
    if payload[0] & _F_HAS_WEIGHT:
        return struct.unpack_from("<d", payload, len(payload) - 8)[0]
    return 1.0


def peek_record_size(payload: bytes) -> int:
    """A RECORD payload's object size (bytes) without a full decode:
    skip the flags byte and the handle varint, read the size varint.
    Serve-side resampling feeds this to its per-stream byte sampler."""
    _, pos = _read_uvarint(payload, 1)  # handle
    size, _ = _read_uvarint(payload, pos)
    return size


def reweight_record(payload: bytes, weight: float) -> bytes:
    """A copy of a RECORD payload carrying ``weight``.

    Because the weight field is strictly trailing, this flips one flag
    bit and splices the 8-byte tail — no varint reparsing. Passing
    ``1.0`` strips the field entirely, restoring the weightless (and
    full-rate byte-identical) encoding.
    """
    flags = payload[0]
    body_end = len(payload) - 8 if flags & _F_HAS_WEIGHT else len(payload)
    if weight == 1.0:
        if not flags & _F_HAS_WEIGHT:
            return payload
        return bytes((flags & ~_F_HAS_WEIGHT,)) + payload[1:body_end]
    return (
        bytes((flags | _F_HAS_WEIGHT,))
        + payload[1:body_end]
        + struct.pack("<d", weight)
    )


def peek_site_label(payload: bytes, strings: List[str]) -> str:
    """Decode only as far as a RECORD payload's site label.

    The serve daemon routes each record frame to its shard by site-label
    hash; this skips the fixed-width varint prefix instead of paying for
    a full :func:`_decode_record`, leaving the rest of the decode to the
    shard worker that owns the site.
    """
    pos = 1  # flags byte
    flags = payload[0]
    skip = 7 if flags & _F_HAS_SITE else 6  # 6 times/sizes + optional site id
    for _ in range(skip + 1):  # ... then the type-name string id
        _, pos = _read_uvarint(payload, pos)
    label_id, _ = _read_uvarint(payload, pos)
    return strings[label_id]


def decode_end(payload: bytes) -> Tuple[Optional[int], int, Optional[int]]:
    """Decode an END frame payload into
    ``(end_time, declared_count, finalizer_errors)``."""
    pos = 0
    raw_end, pos = _read_uvarint(payload, pos)
    end_time = None if raw_end == 0 else raw_end - 1
    declared_count, pos = _read_uvarint(payload, pos)
    finalizer_errors = None
    if pos < len(payload):  # logs predating the field omit it
        raw_fe, pos = _read_uvarint(payload, pos)
        finalizer_errors = None if raw_fe == 0 else raw_fe - 1
    return end_time, declared_count, finalizer_errors


def decode_end_totals(payload: bytes) -> Tuple[Optional[float], Optional[float]]:
    """The weight-estimated ``(objects, bytes)`` totals a sampled
    stream's END frame carries after its varint fields, or
    ``(None, None)`` for full-rate and pre-weight logs (which omit
    them — the observed count already *is* the estimate)."""
    pos = 0
    _, pos = _read_uvarint(payload, pos)  # end_time
    _, pos = _read_uvarint(payload, pos)  # declared_count
    if pos < len(payload) - 16:  # optional finalizer_errors varint
        _, pos = _read_uvarint(payload, pos)
    if pos + 16 <= len(payload):
        return struct.unpack_from("<dd", payload, pos)
    return None, None


class _FrameParser:
    """Incremental frame decoder over an append-only byte stream.

    Feed it chunks as the file grows; it yields complete events and
    keeps partial frames pending. This is the engine behind the one-shot
    readers, :class:`V2TailReader`, and — via the undecoded
    :meth:`feed_frames` layer — the serve daemon's per-connection
    ingest, which routes raw frames to shard workers without decoding
    records centrally.
    """

    def __init__(self, source: str = "<stream>") -> None:
        self.source = source
        self.reset()

    def reset(self) -> None:
        """Return to the pristine pre-header state.

        A serve connection that disconnects mid-frame (or sends garbage)
        leaves partial state behind; resetting lets the owner reuse the
        parser for a fresh stream without leaking the poisoned buffer or
        string table into it.
        """
        self.strings: List[str] = []
        self.metadata: dict = {}
        self.end_time: Optional[int] = None
        self.declared_count: Optional[int] = None
        self.finalizer_errors: Optional[int] = None
        # Weight-estimated totals from a sampled stream's END frame
        # (None for full-rate / pre-weight logs).
        self.est_objects: Optional[float] = None
        self.est_bytes: Optional[float] = None
        self.ended = False
        self._buf = bytearray()
        self._header_done = False

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    @property
    def truncated(self) -> bool:
        """True when the stream stopped mid-frame or before its END
        frame — what a crashed or disconnected writer leaves behind."""
        return bool(self._buf) or not self.ended

    def feed_frames(self, chunk: bytes) -> List[Tuple[int, bytes]]:
        """Absorb ``chunk``; return complete raw ``(type, payload)``
        frames without decoding them. STRING frames still update
        :attr:`strings` (every downstream consumer needs the table);
        END frames still set the end-of-stream state."""
        self._buf += chunk
        frames: List[Tuple[int, bytes]] = []
        if not self._header_done and not self._parse_header():
            return frames
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frame_type, payload = frame
            if frame_type == FRAME_STRING:
                self.strings.append(payload.decode("utf-8"))
            elif frame_type == FRAME_END:
                self.end_time, self.declared_count, self.finalizer_errors = (
                    decode_end(payload)
                )
                self.est_objects, self.est_bytes = decode_end_totals(payload)
                self.ended = True
            elif frame_type not in (FRAME_RECORD, FRAME_SAMPLE):
                raise ProfileError(
                    f"{self.source}: unknown v2 frame type 0x{frame_type:02x}"
                )
            frames.append((frame_type, payload))

    def feed(self, chunk: bytes) -> List[Tuple[str, object]]:
        """Absorb ``chunk``; return the newly completed events as
        ``("record", ObjectRecord)`` / ``("sample", HeapSample)`` /
        ``("end", end_time)`` tuples."""
        events: List[Tuple[str, object]] = []
        for frame_type, payload in self.feed_frames(chunk):
            if frame_type == FRAME_RECORD:
                events.append(("record", _decode_record(payload, self.strings)))
            elif frame_type == FRAME_SAMPLE:
                from repro.core.profiler import HeapSample

                pos = 0
                time, pos = _read_uvarint(payload, pos)
                reachable, pos = _read_uvarint(payload, pos)
                count, pos = _read_uvarint(payload, pos)
                events.append(("sample", HeapSample(time, reachable, count)))
            elif frame_type == FRAME_END:
                events.append(("end", self.end_time))
        return events

    def _parse_header(self) -> bool:
        buf = self._buf
        if len(buf) < len(MAGIC) + 1:
            return False
        if bytes(buf[: len(MAGIC)]) != MAGIC:
            raise ProfileError(f"{self.source}: not a v2 drag log (bad magic)")
        version = buf[len(MAGIC)]
        if version != VERSION:
            raise ProfileError(f"{self.source}: unsupported v2 version {version}")
        try:
            length, pos = _read_uvarint(buf, len(MAGIC) + 1)
        except IndexError:
            return False
        if len(buf) < pos + length:
            return False
        try:
            header = json.loads(bytes(buf[pos : pos + length]).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProfileError(f"{self.source}: bad v2 header: {exc}") from exc
        self.metadata = header.get("metadata") or {}
        del self._buf[: pos + length]
        self._header_done = True
        return True

    def _next_frame(self) -> Optional[Tuple[int, bytes]]:
        buf = self._buf
        if not buf:
            return None
        try:
            length, pos = _read_uvarint(buf, 1)
        except IndexError:
            return None
        if len(buf) < pos + length:
            return None
        frame_type = buf[0]
        payload = bytes(buf[pos : pos + length])
        del buf[: pos + length]
        return frame_type, payload


#: Public name for per-connection stream ingest (the serve daemon).
FrameParser = _FrameParser


def _iter_v2_events(
    path: Union[str, Path], strict: bool, parser: Optional[_FrameParser] = None
) -> Iterator[Tuple[str, object]]:
    if parser is None:
        parser = _FrameParser(source=str(path))
    with open(path, "rb") as f:
        while True:
            chunk = f.read(1 << 16)
            if not chunk:
                break
            try:
                for event in parser.feed(chunk):
                    yield event
            except IndexError as exc:  # corrupt payload inside a frame
                raise ProfileError(f"{path}: corrupt v2 frame: {exc}") from exc
    if not parser._header_done:
        raise ProfileError(f"{path}: truncated v2 header")
    if strict and (parser.pending_bytes or not parser.ended):
        raise ProfileError(
            f"{path}: truncated v2 log "
            f"({parser.pending_bytes} trailing bytes, "
            f"END frame {'missing' if not parser.ended else 'seen'})"
        )


def iter_v2_log(
    path: Union[str, Path], strict: bool = True
) -> Iterator[ObjectRecord]:
    """Generator over a v2 log's object records, decoded one at a time."""
    for kind, value in _iter_v2_events(path, strict):
        if kind == "record":
            yield value


def read_v2_log(path: Union[str, Path], strict: bool = True):
    """Read a whole v2 log into a :class:`repro.core.logfile.LoadedLog`."""
    from repro.core.logfile import LoadedLog

    parser = _FrameParser(source=str(path))
    records: List[ObjectRecord] = []
    samples: List = []
    end_time: Optional[int] = None
    for kind, value in _iter_v2_events(path, strict, parser=parser):
        if kind == "record":
            records.append(value)
        elif kind == "sample":
            samples.append(value)
        elif kind == "end":
            end_time = value
    return LoadedLog(
        records,
        end_time,
        parser.metadata,
        samples=samples,
        finalizer_errors=parser.finalizer_errors,
        est_objects=parser.est_objects,
        est_bytes=parser.est_bytes,
    )


class V2TailReader:
    """Incremental reader for a v2 log that is still being written.

    Each :meth:`poll` reads whatever new bytes the writer has appended
    since the last poll and returns the completed events; partial
    frames stay pending until the next poll. Used by ``repro watch``.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._parser = _FrameParser(source=str(path))
        self._offset = 0

    @property
    def metadata(self) -> dict:
        return self._parser.metadata

    @property
    def ended(self) -> bool:
        return self._parser.ended

    @property
    def end_time(self) -> Optional[int]:
        return self._parser.end_time

    @property
    def finalizer_errors(self) -> Optional[int]:
        return self._parser.finalizer_errors

    def poll(self) -> List[Tuple[str, object]]:
        with open(self.path, "rb") as f:
            f.seek(self._offset)
            chunk = f.read()
        self._offset += len(chunk)
        if not chunk:
            return []
        return self._parser.feed(chunk)
