"""Live metrics: what the profile looks like *right now*.

Every deep-GC sample is a natural synchronization point — the heap is
freshly collected, so "reachable bytes" is meaningful and a batch of
just-reclaimed records has been emitted. :class:`MetricsSink` snapshots
the stream state at each of those points: reachable bytes, drag
accumulated so far, top-K sites by drag, GC/sample counts. Snapshots
are plain dicts away from JSON, which is what the ``--metrics-json``
flush and any dashboard polling it consume.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.stream.aggregate import StreamingDragAnalysis
from repro.stream.sinks import ProfileSink


class LiveMetrics:
    """One point-in-time snapshot of a (possibly still running) profile."""

    __slots__ = (
        "time",
        "reachable_bytes",
        "reachable_objects",
        "records_seen",
        "total_drag",
        "total_bytes",
        "sample_count",
        "top_sites",
        "finished",
        "finalizer_errors",
    )

    def __init__(
        self,
        time: int,
        reachable_bytes: int,
        reachable_objects: int,
        records_seen: int,
        total_drag: int,
        total_bytes: int,
        sample_count: int,
        top_sites: List[dict],
        finished: bool = False,
        finalizer_errors: int = 0,
    ) -> None:
        self.time = time
        self.reachable_bytes = reachable_bytes
        self.reachable_objects = reachable_objects
        self.records_seen = records_seen
        self.total_drag = total_drag
        self.total_bytes = total_bytes
        self.sample_count = sample_count
        self.top_sites = top_sites
        self.finished = finished
        self.finalizer_errors = finalizer_errors

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "reachable_bytes": self.reachable_bytes,
            "reachable_objects": self.reachable_objects,
            "records_seen": self.records_seen,
            "total_drag": self.total_drag,
            "total_bytes": self.total_bytes,
            "sample_count": self.sample_count,
            "top_sites": self.top_sites,
            "finished": self.finished,
            "finalizer_errors": self.finalizer_errors,
        }

    def __repr__(self) -> str:
        return (
            f"<metrics t={self.time} reachable={self.reachable_bytes}B "
            f"drag={self.total_drag} records={self.records_seen}>"
        )


def snapshot(
    analysis: StreamingDragAnalysis,
    time: int,
    reachable_bytes: int,
    reachable_objects: int,
    sample_count: int,
    top_k: int = 5,
    finished: bool = False,
    finalizer_errors: int = 0,
) -> LiveMetrics:
    """Freeze the aggregator's current state into a snapshot."""
    top = [
        {
            "site": str(stats.key),
            "drag": stats.total_drag,
            "objects": stats.count,
            "bytes": stats.total_bytes,
            "never_used": stats.never_used_count,
        }
        for stats in analysis.sorted_sites(top_k)
    ]
    return LiveMetrics(
        time=time,
        reachable_bytes=reachable_bytes,
        reachable_objects=reachable_objects,
        records_seen=analysis.object_count,
        total_drag=analysis.total_drag,
        total_bytes=analysis.total_bytes,
        sample_count=sample_count,
        top_sites=top,
        finished=finished,
        finalizer_errors=finalizer_errors,
    )


def update_registry(registry, metrics: LiveMetrics) -> None:
    """Mirror one snapshot into a :class:`repro.obs.MetricsRegistry`.

    Both :class:`MetricsSink` and ``repro watch`` feed the same gauges,
    so a live profile and an after-the-fact log replay expose identical
    Prometheus series (``repro_live_*``).
    """
    registry.gauge(
        "repro_live_clock_bytes", "Byte clock at the last snapshot"
    ).set(metrics.time)
    registry.gauge(
        "repro_live_reachable_bytes", "Reachable bytes at the last deep-GC sample"
    ).set(metrics.reachable_bytes)
    registry.gauge(
        "repro_live_reachable_objects", "Reachable objects at the last deep-GC sample"
    ).set(metrics.reachable_objects)
    registry.gauge(
        "repro_live_records_seen", "Object records streamed so far"
    ).set(metrics.records_seen)
    registry.gauge(
        "repro_live_drag_bytes_time", "Total drag (byte·bytes) accumulated so far"
    ).set(metrics.total_drag)
    registry.gauge(
        "repro_live_sample_count", "Deep-GC samples streamed so far"
    ).set(metrics.sample_count)
    registry.gauge(
        "repro_live_finished", "1 once the end-of-stream marker arrived"
    ).set(1 if metrics.finished else 0)


def write_metrics_json(metrics: LiveMetrics, path: str) -> None:
    """Atomically replace ``path`` with the snapshot's JSON, so a
    dashboard polling the file never reads a half-written flush."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(metrics.to_dict(), f, indent=2)
        f.write("\n")
    os.replace(tmp, path)


class MetricsSink(ProfileSink):
    """Maintain live metrics over the event stream.

    Feeds an internal (or shared) :class:`StreamingDragAnalysis` and
    refreshes :attr:`latest` on every heap sample and at program end.
    ``json_path`` makes each refresh also flush machine-readable JSON;
    ``on_snapshot`` (a callable) is invoked with each new snapshot —
    that's the hook ``repro watch``-style consumers use; ``registry``
    (a :class:`repro.obs.MetricsRegistry`) mirrors each snapshot into
    the ``repro_live_*`` Prometheus gauges.
    """

    def __init__(
        self,
        analysis: Optional[StreamingDragAnalysis] = None,
        top_k: int = 5,
        json_path: Optional[str] = None,
        on_snapshot=None,
        keep_history: bool = False,
        registry=None,
    ) -> None:
        self.analysis = analysis or StreamingDragAnalysis()
        self.top_k = top_k
        self.json_path = json_path
        self.on_snapshot = on_snapshot
        self.registry = registry
        self.keep_history = keep_history
        self.history: List[LiveMetrics] = []
        self.latest: Optional[LiveMetrics] = None
        self.sample_count = 0
        self.finalizer_errors = 0
        self._clock = 0

    def on_record(self, record) -> None:
        self.analysis.add(record)
        if record.collection_time > self._clock:
            self._clock = record.collection_time

    def on_sample(self, sample) -> None:
        self.sample_count += 1
        if sample.time > self._clock:
            self._clock = sample.time
        self._refresh(
            time=sample.time,
            reachable_bytes=sample.reachable_bytes,
            reachable_objects=sample.object_count,
            finished=False,
        )

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        self.analysis.end_time = end_time
        self.finalizer_errors = finalizer_errors
        last = self.latest
        self._refresh(
            time=end_time,
            reachable_bytes=last.reachable_bytes if last else 0,
            reachable_objects=last.reachable_objects if last else 0,
            finished=True,
        )

    def _refresh(
        self, time: int, reachable_bytes: int, reachable_objects: int, finished: bool
    ) -> None:
        metrics = snapshot(
            self.analysis,
            time=time,
            reachable_bytes=reachable_bytes,
            reachable_objects=reachable_objects,
            sample_count=self.sample_count,
            top_k=self.top_k,
            finished=finished,
            finalizer_errors=self.finalizer_errors,
        )
        self.latest = metrics
        if self.keep_history:
            self.history.append(metrics)
        if self.json_path:
            write_metrics_json(metrics, self.json_path)
        if self.registry is not None:
            update_registry(self.registry, metrics)
        if self.on_snapshot is not None:
            self.on_snapshot(metrics)
