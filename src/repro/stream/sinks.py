"""Event sinks: where the profiler's record/sample stream goes.

A :class:`ProfileSink` receives each :class:`ObjectRecord` the moment
the object is reclaimed (or survives to program end) and each deep-GC
:class:`HeapSample` as it is taken. Sinks compose with :class:`TeeSink`,
so one profiled run can simultaneously stream to disk, feed the
incremental aggregator, and refresh live metrics — all in O(sites)
memory instead of buffering the full object log.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union


class ProfileSink:
    """Receiver for the profiler's event stream.

    Subclasses override what they need; the base class is a no-op, so a
    sink interested only in records can ignore samples and vice versa.
    """

    def on_record(self, record) -> None:
        """One object's log record, emitted at reclamation/program end."""

    def on_sample(self, sample) -> None:
        """One deep-GC heap sample."""

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        """The run finished; ``end_time`` is the final byte clock and
        ``finalizer_errors`` counts exceptions swallowed by finalize()."""

    def close(self) -> None:
        """Release any resources (files). Idempotent."""


class BufferSink(ProfileSink):
    """Buffer everything in memory — the classic batch behaviour."""

    def __init__(self) -> None:
        self.records: List = []
        self.samples: List = []
        self.end_time: Optional[int] = None
        self.finalizer_errors: int = 0

    def on_record(self, record) -> None:
        self.records.append(record)

    def on_sample(self, sample) -> None:
        self.samples.append(sample)

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        self.end_time = end_time
        self.finalizer_errors = finalizer_errors


class LogWriterSink(ProfileSink):
    """Stream records straight to a log writer (v1 JSONL or v2 binary).

    The writer must expose ``write_record``, ``write_sample`` and
    ``close(end_time=...)`` — both :class:`repro.core.logfile.LogWriter`
    and :class:`repro.stream.codec.V2LogWriter` do.
    """

    def __init__(self, writer) -> None:
        self.writer = writer
        self._end_time: Optional[int] = None
        self._finalizer_errors: Optional[int] = None
        self._closed = False

    @property
    def count(self) -> int:
        return self.writer.count

    def on_record(self, record) -> None:
        self.writer.write_record(record)

    def on_sample(self, sample) -> None:
        self.writer.write_sample(sample)

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        self._end_time = end_time
        self._finalizer_errors = finalizer_errors
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.writer.close(
                end_time=self._end_time,
                finalizer_errors=self._finalizer_errors,
            )


class AggregatorSink(ProfileSink):
    """Feed records into a :class:`StreamingDragAnalysis` as they arrive."""

    def __init__(self, analysis=None, include_library_sites: bool = True) -> None:
        if analysis is None:
            from repro.stream.aggregate import StreamingDragAnalysis

            analysis = StreamingDragAnalysis(
                include_library_sites=include_library_sites
            )
        self.analysis = analysis

    def on_record(self, record) -> None:
        self.analysis.add(record)

    def on_sample(self, sample) -> None:
        timeline = getattr(self.analysis, "timeline", None)
        if timeline is not None:
            timeline.add_sample(sample)

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        self.analysis.end_time = end_time
        timeline = getattr(self.analysis, "timeline", None)
        if timeline is not None:
            timeline.note_end(end_time)


class TeeSink(ProfileSink):
    """Fan one event stream out to several sinks, in order."""

    def __init__(self, *sinks: ProfileSink) -> None:
        self.sinks = list(sinks)

    def on_record(self, record) -> None:
        for sink in self.sinks:
            sink.on_record(record)

    def on_sample(self, sample) -> None:
        for sink in self.sinks:
            sink.on_sample(sample)

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        for sink in self.sinks:
            sink.on_end(end_time, finalizer_errors=finalizer_errors)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def open_log_writer(
    path: Union[str, Path],
    fmt: str = "auto",
    metadata: Optional[dict] = None,
):
    """Create a streaming log writer for ``path``.

    ``fmt`` is ``"v1"``, ``"v2"``, or ``"auto"`` — auto picks v2 for
    ``.dlog2``/``.v2`` extensions and v1 otherwise, so
    ``repro profile --sink stream --log run.dlog2`` just works.
    """
    path = Path(path)
    if fmt == "auto":
        fmt = "v2" if path.suffix in (".dlog2", ".v2") else "v1"
    if fmt == "v2":
        from repro.stream.codec import V2LogWriter

        return V2LogWriter(path, metadata=metadata)
    if fmt == "v1":
        from repro.core.logfile import LogWriter

        return LogWriter(path, metadata=metadata)
    raise ValueError(f"unknown log format {fmt!r} (use 'v1', 'v2', or 'auto')")
