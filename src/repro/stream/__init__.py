"""The streaming profile pipeline.

Turns phase 1 from batch-at-exit into a bounded-memory stream: the
profiler emits :class:`~repro.core.trailer.ObjectRecord`s and
:class:`~repro.core.profiler.HeapSample`s into a
:class:`~repro.stream.sinks.ProfileSink` as objects are reclaimed, and
everything downstream — the compact v2 log codec, the incremental
:class:`~repro.stream.aggregate.StreamingDragAnalysis`, the live
metrics of ``repro watch`` — consumes that stream record-by-record.

Memory discipline: with a streaming sink attached the profiler holds
O(live objects) trailers plus O(sites) aggregate state, never the
O(all objects ever allocated) record list of the buffered path.
"""

from repro.stream.sinks import (
    AggregatorSink,
    BufferSink,
    LogWriterSink,
    ProfileSink,
    TeeSink,
    open_log_writer,
)
from repro.stream.codec import (
    V2LogWriter,
    V2TailReader,
    iter_v2_log,
    read_v2_log,
)
from repro.stream.aggregate import SiteStats, StreamingDragAnalysis
from repro.stream.live import LiveMetrics, MetricsSink
from repro.stream.watch import follow_server, watch_log

__all__ = [
    "ProfileSink",
    "BufferSink",
    "LogWriterSink",
    "AggregatorSink",
    "TeeSink",
    "open_log_writer",
    "V2LogWriter",
    "V2TailReader",
    "iter_v2_log",
    "read_v2_log",
    "SiteStats",
    "StreamingDragAnalysis",
    "LiveMetrics",
    "MetricsSink",
    "watch_log",
    "follow_server",
]
