'''mc — Monte Carlo financial simulation (Java Grande).

Paper behaviour (§4.1): "In mc the size of the reduced reachable heap
is even below the size of original in-use object size. This is due to
the fact that many allocations are eliminated. ... This leads to 168%
savings of drag, since we saved even more than the original drag."
Table 5: code removal / local variable + private / indirect-usage (R),
plus assigning null / private array / array liveness.

The arithmetic behind >100%: mc's heap is almost entirely *in use*
(drag is only ~4% of the reachable integral), and because time is bytes
allocated, eliminating allocations compresses the clock itself — the
whole in-use base's space-time integral shrinks, so the reachable
reduction exceeds the original drag.

Model: a rate lattice (large, touched every block — the in-use base),
per-block never-used diagnostics objects (a local Stats and a private
diagnostics field — removed in the revision), and a private array of
per-block snapshots that are dead after the following block (nulled in
the revision).
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class RateLattice {
    Vector rows;
    RateLattice(int rows, int width) {
        this.rows = new Vector(rows);
        for (int r = 0; r < rows; r = r + 1) {
            char[] row = new char[width];
            for (int i = 0; i < width; i = i + 64) {
                row[i] = (char) ('0' + (r + i) % 10);
            }
            this.rows.add(row);
        }
    }
    int sample(int block, int path) {
        int sum = 0;
        for (int r = 0; r < rows.size(); r = r + 1) {
            char[] row = (char[]) rows.get(r);
            sum = sum + row[(block * 31 + path * 7 + r) % row.length];
        }
        return sum;
    }
}

class Snapshot {
    char[] state;
    int block;
    Snapshot(int block, int width) {
        this.block = block;
        this.state = new char[width];
    }
    int fold(int seed) {
        int sum = 0;
        for (int i = 0; i < state.length; i = i + 32) {
            state[i] = (char) ('a' + (seed + i) % 26);
            sum = sum + state[i];
        }
        return sum;
    }
}
"""

_SIM_ORIGINAL = """
class Simulation {
    RateLattice lattice;
    private Snapshot[] snapshots;
    private char[] diagnostics;
    int blocks;
    Simulation(RateLattice lattice, int blocks) {
        this.lattice = lattice;
        this.blocks = blocks;
        snapshots = new Snapshot[blocks];
    }
    int runBlock(int block, int paths) {
        // never-used diagnostics: a local record and a private buffer
        char[] localTrace = new char[80];
        diagnostics = new char[80];
        Snapshot snapshot = new Snapshot(block, 120);
        snapshots[block] = snapshot;
        int sum = snapshot.fold(block);
        if (block > 0) {
            // previous snapshot's last use: antithetic correction
            sum = sum + snapshots[block - 1].fold(block);
        }
        for (int p = 0; p < paths; p = p + 1) {
            char[] draw = new char[200];
            draw[0] = (char) ('0' + (block + p) % 10);
            sum = sum + draw[0] + lattice.sample(block, p);
        }
        return sum;
    }
}
"""

_SIM_REVISED = """
class Simulation {
    RateLattice lattice;
    private Snapshot[] snapshots;
    private char[] diagnostics;
    int blocks;
    Simulation(RateLattice lattice, int blocks) {
        this.lattice = lattice;
        this.blocks = blocks;
        snapshots = new Snapshot[blocks];
    }
    int runBlock(int block, int paths) {
        // diagnostics allocations removed (never used: indirect usage)
        Snapshot snapshot = new Snapshot(block, 120);
        snapshots[block] = snapshot;
        int sum = snapshot.fold(block);
        if (block > 0) {
            sum = sum + snapshots[block - 1].fold(block);
            snapshots[block - 1] = null;  // dead after its last use
        }
        for (int p = 0; p < paths; p = p + 1) {
            char[] draw = new char[200];
            draw[0] = (char) ('0' + (block + p) % 10);
            sum = sum + draw[0] + lattice.sample(block, p);
        }
        return sum;
    }
}
"""

_MAIN = """
class MonteCarlo {
    public static void main(String[] args) {
        int blocks = Integer.parseInt(args[0]);
        int paths = Integer.parseInt(args[1]);
        RateLattice lattice = new RateLattice(40, 1400);
        Simulation sim = new Simulation(lattice, blocks);
        int price = 0;
        for (int block = 0; block < blocks; block = block + 1) {
            price = price + sim.runBlock(block, paths);
        }
        System.println("blocks " + blocks);
        System.printInt(price);
    }
}
"""

ORIGINAL = _COMMON + _SIM_ORIGINAL + _MAIN
REVISED = _COMMON + _SIM_REVISED + _MAIN

BENCHMARK = Benchmark(
    name="mc",
    description="financial simulation",
    main_class="MonteCarlo",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["60", "6"],
    alternate_args=["40", "9"],
    rewritings=[
        Rewriting("code removal", "local variable + private", "indirect-usage (R)"),
        Rewriting("assigning null", "private array", "array liveness"),
    ],
    interval_bytes=8 * 1024,
    max_heap=2 * 1024 * 1024,
)
