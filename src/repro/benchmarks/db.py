'''db — database simulation (SPECjvm98 _209_db).

Paper behaviour (§3.4, pattern 4, and §4.1): "The graph for db is not
shown. There are no space savings for this benchmark." The drag
variance at db's sites is high: "there may be a large repository of
objects ... A query on the repository leads to a use of an object.
However, each query accesses only a small number of objects and the
queries are spread out over the whole application. Nevertheless the
repository and all objects in it need to be kept as the exact queries
cannot be predicted in advance."

Model: an in-memory table of records; random queries touch a few
records each; every record must stay available. No transformation
applies, so the revised program *is* the original — db still
participates in every table (at zero savings) exactly as in the paper's
averages.
'''

from repro.benchmarks.registry import Benchmark

ORIGINAL = """
class DbRecord {
    String key;
    char[] payload;
    int hits;
    DbRecord(String key, int width) {
        this.key = key;
        this.payload = new char[width];
        this.hits = 0;
    }
    int probe(int q) {
        hits = hits + 1;
        return payload[(q * 13) % payload.length] + hits;
    }
}

class Database {
    Vector records;
    HashTable index;
    Database() {
        records = new Vector(64);
        index = new HashTable(64);
    }
    void insert(DbRecord record) {
        records.add(record);
        index.put(record.key, record);
    }
    DbRecord fetch(String key) {
        return (DbRecord) index.get(key);
    }
    int size() { return records.size(); }
}

class Db {
    public static void main(String[] args) {
        int records = Integer.parseInt(args[0]);
        int queries = Integer.parseInt(args[1]);
        Database db = new Database();
        for (int r = 0; r < records; r = r + 1) {
            db.insert(new DbRecord("rec" + r, 420));
        }
        // index-build verification: every record is touched once, so
        // none is never-used — the queries just come at unpredictable
        // times afterwards
        int result = 0;
        for (int r = 0; r < records; r = r + 1) {
            DbRecord record = db.fetch("rec" + r);
            result = result + record.probe(0);
        }
        Random rng = new Random(11);
        for (int q = 0; q < queries; q = q + 1) {
            // each query touches a handful of records; a cold sixth of
            // the table is never queried after loading while the rest
            // keeps being hit — the wide spread of last-use times is
            // the high drag variance that defeats every transformation
            // (§3.4 pattern 4: the exact queries cannot be predicted)
            for (int k = 0; k < 4; k = k + 1) {
                int cold = records / 6;
                int pick = cold + rng.nextInt(records - cold);
                DbRecord record = db.fetch("rec" + pick);
                if (record != null) {
                    result = result + record.probe(q);
                }
            }
            // query processing allocates a transient result set
            char[] resultSet = new char[300];
            resultSet[0] = (char) ('0' + result % 10);
            result = result + resultSet[0];
        }
        System.println("records " + db.size() + " queries " + queries);
        System.printInt(result);
    }
}
"""

# §4.1: no rewriting helps db; the revised program is the original.
REVISED = ORIGINAL

BENCHMARK = Benchmark(
    name="db",
    description="database simulation",
    main_class="Db",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["120", "260"],
    alternate_args=["80", "420"],
    rewritings=[],
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
