'''raytrace — raytracer (SPECjvm98 _205_raytrace / _227_mtrt).

Paper behaviour (§3.4.2): "In raytrace there are 17 allocation sites
with the same behavior: an object is allocated and assigned to an array
element; the object's last use occurs during its initialization, which
is done in its constructor. Thus, all objects allocated at these sites
are considered never-used. Each of these allocation sites contributes
4.77MB² to the drag. ... the code for the allocation of these objects
can be removed. This leads to a 45% reduction in total drag." §4.1
adds: "the size of the reachable heap is reduced by an almost constant
size, and the in-use object size remains the same ... close to 1MB of
allocation of long-lived never-used objects has been eliminated" —
plus an assigning-null rewrite of a private field (Table 5: 6.27%, with
the call graph showing the only reader, a get method, is never invoked
— §5.4's example).

Model: Scene's constructor fills a private Detail[] from 17 distinct
allocation sites (acceleration-structure precomputations that nothing
reads — the get method is never called); a private lightCache is used
during the first rows only, then drags. The render loop itself churns
short-lived Ray/Hit objects and keeps the rendered rows live (used by
the final checksum).
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class Detail {
    char[] table;
    int kind;
    Detail(int kind) {
        this.kind = kind;
        this.table = new char[288];
        for (int i = 0; i < table.length; i = i + 32) {
            table[i] = (char) ('a' + (kind + i) % 26);
        }
    }
}

class Ray {
    int ox; int oy; int dx; int dy;
    Ray(int ox, int oy, int dx, int dy) {
        this.ox = ox;
        this.oy = oy;
        this.dx = dx;
        this.dy = dy;
    }
    int dot() { return ox * dx + oy * dy; }
}

class Hit {
    int distance;
    int shade;
    Hit(int distance, int shade) {
        this.distance = distance;
        this.shade = shade;
    }
}

class Image {
    Vector rows;
    Image() { rows = new Vector(32); }
    void addRow(char[] row) { rows.add(row); }
    int checksum() {
        int sum = 0;
        for (int r = 0; r < rows.size(); r = r + 1) {
            char[] row = (char[]) rows.get(r);
            for (int i = 0; i < row.length; i = i + 16) {
                sum = sum + row[i];
            }
        }
        return sum;
    }
}
"""

_SCENE_ORIGINAL = """
class Scene {
    private Detail[] details;
    private char[] lightCache;
    int spheres;
    Scene(int spheres) {
        this.spheres = spheres;
        lightCache = new char[1400];
        details = new Detail[17];
        details[0] = new Detail(0);
        details[1] = new Detail(1);
        details[2] = new Detail(2);
        details[3] = new Detail(3);
        details[4] = new Detail(4);
        details[5] = new Detail(5);
        details[6] = new Detail(6);
        details[7] = new Detail(7);
        details[8] = new Detail(8);
        details[9] = new Detail(9);
        details[10] = new Detail(10);
        details[11] = new Detail(11);
        details[12] = new Detail(12);
        details[13] = new Detail(13);
        details[14] = new Detail(14);
        details[15] = new Detail(15);
        details[16] = new Detail(16);
    }
    // never invoked anywhere: the call graph proves the details are dead
    public Detail getDetail(int i) { return details[i]; }
    public int light(int x, int y) {
        int index = (x * 31 + y) % lightCache.length;
        if (lightCache[index] == 0) {
            lightCache[index] = (char) (x + y);
        }
        return lightCache[index];
    }
}
"""

_SCENE_REVISED = """
class Scene {
    private Detail[] details;
    private char[] lightCache;
    int spheres;
    Scene(int spheres) {
        this.spheres = spheres;
        lightCache = new char[1400];
        details = new Detail[17];
        // 17 never-used Detail allocations removed (code removal;
        // constructors are pure, getDetail is unreachable)
    }
    public Detail getDetail(int i) { return details[i]; }
    public int light(int x, int y) {
        int index = (x * 31 + y) % lightCache.length;
        if (lightCache[index] == 0) {
            lightCache[index] = (char) (x + y);
        }
        return lightCache[index];
    }
    void dropLightCache() { lightCache = null; }
}
"""

_MAIN_TEMPLATE = """
class RayTrace {
    public static void main(String[] args) {
        int width = Integer.parseInt(args[0]);
        int height = Integer.parseInt(args[1]);
        Scene scene = new Scene(8);
        Image image = new Image();
        int lit = 0;
        for (int y = 0; y < height; y = y + 1) {
            // lighting is precomputed during the first rows only
            if (y < height / 5) {
                for (int x = 0; x < width; x = x + 4) {
                    lit = lit + scene.light(x, y);
                }
            }%DROPCACHE%
            image.addRow(renderRow(scene, width, y));
        }
        System.println("rendered " + height + " rows");
        System.printInt(image.checksum() + lit);
    }
    static char[] renderRow(Scene scene, int width, int y) {
        char[] row = new char[width];
        for (int x = 0; x < width; x = x + 1) {
            Ray ray = new Ray(x, y, x + 1, y + 1);
            Hit hit = new Hit(ray.dot() % 97, (x + y) % 26);
            row[x] = (char) ('a' + hit.shade);
        }
        return row;
    }
}
"""

ORIGINAL = _COMMON + _SCENE_ORIGINAL + _MAIN_TEMPLATE.replace("%DROPCACHE%", "")
REVISED = _COMMON + _SCENE_REVISED + _MAIN_TEMPLATE.replace(
    "%DROPCACHE%",
    "\n            if (y == height / 5) { scene.dropLightCache(); }",
)

BENCHMARK = Benchmark(
    name="raytrace",
    description="raytracer of a picture",
    main_class="RayTrace",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["160", "110"],
    alternate_args=["230", "64"],
    rewritings=[
        Rewriting("code removal", "private array", "array liveness (R)"),
        Rewriting("assigning null", "private", "liveness (R)"),
    ],
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
