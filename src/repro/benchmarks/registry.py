"""Benchmark descriptors and the registry of the paper's nine programs
plus our probes."""

from __future__ import annotations

from typing import Dict, List, Optional


class Rewriting:
    """One Table-5 row: a rewriting applied to a benchmark."""

    __slots__ = ("strategy", "reference_kind", "expected_analysis", "note")

    def __init__(self, strategy: str, reference_kind: str, expected_analysis: str, note: str = "") -> None:
        self.strategy = strategy  # 'assigning null' | 'code removal' | 'lazy allocation'
        self.reference_kind = reference_kind  # e.g. 'private array', 'package', ...
        self.expected_analysis = expected_analysis  # e.g. 'liveness (R)', 'array liveness'
        self.note = note

    def __repr__(self) -> str:
        return f"<rewriting {self.strategy} ({self.reference_kind}) via {self.expected_analysis}>"


class Benchmark:
    """A benchmark program: original and revised sources plus inputs."""

    def __init__(
        self,
        name: str,
        description: str,
        main_class: str,
        original: str,
        revised: str,
        primary_args: List[str],
        alternate_args: List[str],
        rewritings: List[Rewriting],
        revised_library_overrides: Optional[Dict[str, str]] = None,
        interval_bytes: int = 32 * 1024,
        max_heap: Optional[int] = None,
    ) -> None:
        self.name = name
        self.description = description
        self.main_class = main_class
        self.original = original
        self.revised = revised
        self.primary_args = primary_args
        self.alternate_args = alternate_args
        self.rewritings = rewritings
        self.revised_library_overrides = revised_library_overrides
        self.interval_bytes = interval_bytes
        # Heap budget for the Table-4 runtime runs (the paper used
        # 32-48 MB / 64-96 MB heaps; ours are scaled down ~50x).
        self.max_heap = max_heap

    def args_for(self, which: str) -> List[str]:
        if which == "primary":
            return list(self.primary_args)
        if which == "alternate":
            return list(self.alternate_args)
        raise ValueError(f"unknown input {which!r} (use 'primary' or 'alternate')")

    def __repr__(self) -> str:
        return f"<benchmark {self.name}>"


_REGISTRY: Optional[Dict[str, Benchmark]] = None


def all_benchmarks() -> Dict[str, Benchmark]:
    """Name → Benchmark for the paper's nine programs plus our two
    pattern-4 probes: cache (import-on-demand) and strings (snapshot
    retained-size prey)."""
    global _REGISTRY
    if _REGISTRY is None:
        from repro.benchmarks import (
            analyzer,
            cache,
            db,
            euler,
            jack,
            javac,
            jess,
            juru,
            mc,
            raytrace,
            strings,
        )

        modules = [
            javac, db, jack, raytrace, jess, mc, euler, juru, analyzer, cache,
            strings,
        ]
        _REGISTRY = {m.BENCHMARK.name: m.BENCHMARK for m in modules}
    return _REGISTRY


def get_benchmark(name: str) -> Benchmark:
    registry = all_benchmarks()
    if name not in registry:
        raise KeyError(f"unknown benchmark {name!r}; have {sorted(registry)}")
    return registry[name]
