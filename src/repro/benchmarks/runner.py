"""Benchmark runner: produces the rows of Tables 2-4 and the series of
Figure 2 for any registered benchmark."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.integrals import HeapCurve, SavingsRow, savings
from repro.core.profiler import ProfileResult, profile_program
from repro.mjava.compiler import compile_program
from repro.mjava.metrics import count_classes, count_statements
from repro.mjava.parser import parse_program
from repro.runtime.engine import create_vm
from repro.runtime.generational import GenerationalCollector
from repro.runtime.library import link
from repro.benchmarks.registry import Benchmark


class BenchmarkRun:
    """Original-vs-revised profiled pair for one benchmark and input."""

    def __init__(
        self,
        benchmark: Benchmark,
        which: str,
        original: ProfileResult,
        revised: ProfileResult,
    ) -> None:
        self.benchmark = benchmark
        self.which = which
        self.original = original
        self.revised = revised
        self.savings: SavingsRow = savings(original.records, revised.records)

    def outputs_match(self) -> bool:
        """§3.2: 'we also checked that the original and revised
        benchmarks produce identical results'."""
        return self.original.run_result.stdout == self.revised.run_result.stdout


def compile_benchmark(benchmark: Benchmark, revised: bool):
    if revised:
        program_ast = link(
            benchmark.revised, library_overrides=benchmark.revised_library_overrides
        )
    else:
        program_ast = link(benchmark.original)
    return compile_program(program_ast, main_class=benchmark.main_class)


def run_pair(
    benchmark: Benchmark,
    which: str = "primary",
    interval_bytes: Optional[int] = None,
    engine: Optional[str] = None,
) -> BenchmarkRun:
    """Profile the original and revised versions on one input."""
    interval = interval_bytes or benchmark.interval_bytes
    args = benchmark.args_for(which)
    original = profile_program(
        compile_benchmark(benchmark, revised=False),
        args,
        interval_bytes=interval,
        engine=engine,
    )
    revised = profile_program(
        compile_benchmark(benchmark, revised=True),
        args,
        interval_bytes=interval,
        engine=engine,
    )
    return BenchmarkRun(benchmark, which, original, revised)


# ---------------------------------------------------------------------------
# Figure 2: heap curves
# ---------------------------------------------------------------------------


def heap_timeline(result: ProfileResult, bin_bytes: Optional[int] = None):
    """Fold one profile result into a
    :class:`~repro.obs.timeline.TimelineBuilder` (records, deep-GC
    samples, and end time)."""
    from repro.obs.timeline import DEFAULT_BIN_BYTES, TimelineBuilder

    builder = TimelineBuilder(bin_bytes=bin_bytes or DEFAULT_BIN_BYTES)
    builder.consume(result.records)
    for sample in result.samples:
        builder.add_sample(sample)
    builder.note_end(result.end_time)
    return builder


def figure2_series(run: BenchmarkRun) -> Dict[str, HeapCurve]:
    """The four curves of one Figure-2 panel: original and revised,
    reachable and in-use heap size over allocation time.  Served off
    the streaming timeline builder, whose event maps reproduce the old
    batch ``curve_from_records`` curves exactly."""
    original = heap_timeline(run.original)
    revised = heap_timeline(run.revised)
    return {
        "original_reachable": original.curve("reachable"),
        "original_in_use": original.curve("in_use"),
        "revised_reachable": revised.curve("reachable"),
        "revised_in_use": revised.curve("in_use"),
    }


# ---------------------------------------------------------------------------
# Table 4: simulated runtime under the generational collector
# ---------------------------------------------------------------------------

# Cost-model weights (arbitrary time units). Interpretation dominates;
# allocation+initialization and GC work are the terms the paper's
# rewrites shrink ("speedups are due to (i) allocation savings ... and
# (ii) GC is invoked less frequently").
COST_INSTRUCTION = 1.0
COST_PER_ALLOCATION = 12.0
COST_PER_BYTE_ALLOCATED = 0.02
COST_PER_MARK = 3.0
COST_PER_SWEEP = 1.5
COST_PER_FINALIZER = 40.0


def simulated_runtime(result) -> float:
    stats = result.heap_stats
    return (
        COST_INSTRUCTION * result.instructions
        + COST_PER_ALLOCATION * stats.objects_allocated
        + COST_PER_BYTE_ALLOCATED * stats.bytes_allocated
        + COST_PER_MARK * stats.objects_marked
        + COST_PER_SWEEP * stats.objects_swept
        + COST_PER_FINALIZER * stats.finalizers_run
    )


class RuntimeRun:
    """Original-vs-revised unprofiled pair under the generational GC."""

    def __init__(self, benchmark: Benchmark, original_result, revised_result) -> None:
        self.benchmark = benchmark
        self.original_result = original_result
        self.revised_result = revised_result
        self.original_runtime = simulated_runtime(original_result)
        self.revised_runtime = simulated_runtime(revised_result)

    @property
    def saving_pct(self) -> float:
        if self.original_runtime <= 0:
            return 0.0
        return 100.0 * (self.original_runtime - self.revised_runtime) / self.original_runtime


def _gen_factory(young_threshold: int):
    def factory(heap, program):
        return GenerationalCollector(heap, program, young_threshold=young_threshold)

    return factory


def run_runtime_pair(
    benchmark: Benchmark,
    which: str = "primary",
    young_threshold: int = 64 * 1024,
    engine: Optional[str] = None,
) -> RuntimeRun:
    """Run both versions unprofiled under the generational collector
    (the paper's Table-4 setup: HotSpot client, generational GC) and
    apply the deterministic cost model."""
    args = benchmark.args_for(which)
    results = []
    for revised in (False, True):
        program = compile_benchmark(benchmark, revised=revised)
        interp = create_vm(
            program,
            engine=engine,
            max_heap=benchmark.max_heap,
            collector_factory=_gen_factory(young_threshold),
        )
        results.append(interp.run(args))
    original_result, revised_result = results
    if original_result.stdout != revised_result.stdout:
        raise AssertionError(
            f"{benchmark.name}: revised output differs from original"
        )
    return RuntimeRun(benchmark, original_result, revised_result)


# ---------------------------------------------------------------------------
# Table 1: source metrics
# ---------------------------------------------------------------------------


def benchmark_metrics(benchmark: Benchmark) -> Dict[str, int]:
    program = parse_program(benchmark.original)
    return {
        "classes": count_classes(program),
        "stmts": count_statements(program),
    }
