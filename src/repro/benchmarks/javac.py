'''javac — the Java compiler (SPECjvm98 _213_javac).

Paper behaviour: Table 5 gives one strategy — code removal / protected /
indirect-usage — and §5.1 explains it: "In a class in javac a string is
allocated and assigned to an instance field. The field is never used
except for assigning its value to other reference variables. These
variables are never used; thus, the allocation of the string can be
saved." §4.1: javac's Figure-2 curves "occur earlier in the graph than
for the original run ... due to the elimination of some unnecessary
allocation." Savings: drag 21.8%, space 7.71% (alternate input 3.5%).

Model: a compiler front end lexes synthetic units into token strings
(churn), builds a persistent symbol table (live heap), and stamps every
compilation unit with a protected banner string that is only ever
copied into an equally unused field. The revised version removes the
banner allocation and its copies.
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class Symbol {
    String name;
    int kind;
    Symbol(String name, int kind) {
        this.name = name;
        this.kind = kind;
    }
}

class SymbolTable {
    HashTable symbols;
    Vector ordered;
    SymbolTable() {
        symbols = new HashTable(64);
        ordered = new Vector(32);
    }
    void define(Symbol sym) {
        symbols.put(sym.name, sym);
        ordered.add(sym);
    }
    Symbol lookup(String name) {
        return (Symbol) symbols.get(name);
    }
    int size() { return ordered.size(); }
}

class Lexer {
    // tokenizes one unit: returns the token count, churns token strings
    static int lex(SymbolTable table, int unitId, int tokens) {
        int kinds = 0;
        for (int t = 0; t < tokens; t = t + 1) {
            String token = "id" + ((unitId * 131 + t * 17) % 260);
            Symbol existing = table.lookup(token);
            if (existing == null) {
                table.define(new Symbol(token, t % 8));
                kinds = kinds + 1;
            }
        }
        return kinds;
    }
}

class CodeGen {
    // emits bytecode for one unit (persistent output, checked at end)
    static char[] emit(int unitId, int size) {
        char[] code = new char[size];
        for (int i = 0; i < size; i = i + 32) {
            code[i] = (char) ('0' + (unitId + i) % 10);
        }
        return code;
    }
    static int typeCheck(int unitId, int work) {
        int acc = unitId;
        for (int k = 0; k < work; k = k + 1) {
            acc = (acc * 31 + k) % 65536;
        }
        return acc;
    }
}
"""

_UNIT_ORIGINAL = """
class CompilationUnit {
    protected String banner;
    protected String bannerCopy;
    String fileName;
    char[] bytecode;
    CompilationUnit(int id) {
        fileName = "Unit" + id + ".java";
        banner = makeBanner(id);
    }
    static String makeBanner(int id) {
        StringBuilder sb = new StringBuilder(24);
        sb.append("javac 1.2 debug unit ");
        sb.append("n" + id);
        return sb.toString();
    }
    void snapshotBanner() {
        bannerCopy = banner;  // only "use": a copy into a dead field
    }
}
"""

_UNIT_REVISED = """
class CompilationUnit {
    protected String banner;
    protected String bannerCopy;
    String fileName;
    char[] bytecode;
    CompilationUnit(int id) {
        fileName = "Unit" + id + ".java";
        // banner allocation removed: indirect-usage analysis shows it
        // is only copied into bannerCopy, which is never read
    }
    void snapshotBanner() {
    }
}
"""

_MAIN = """
class Javac {
    public static void main(String[] args) {
        int units = Integer.parseInt(args[0]);
        int tokensPerUnit = Integer.parseInt(args[1]);
        SymbolTable table = new SymbolTable();
        Vector compiled = new Vector(units);
        int checksum = 0;
        for (int u = 0; u < units; u = u + 1) {
            CompilationUnit unit = new CompilationUnit(u);
            unit.snapshotBanner();
            checksum = checksum + Lexer.lex(table, u, tokensPerUnit);
            checksum = checksum + CodeGen.typeCheck(u, 900);
            unit.bytecode = CodeGen.emit(u, 900);
            compiled.add(unit);
        }
        int codeBytes = 0;
        for (int u = 0; u < compiled.size(); u = u + 1) {
            CompilationUnit unit = (CompilationUnit) compiled.get(u);
            codeBytes = codeBytes + unit.bytecode.length;
        }
        System.println("units " + units + " symbols " + table.size());
        System.printInt(checksum + codeBytes);
    }
}
"""

ORIGINAL = _COMMON + _UNIT_ORIGINAL + _MAIN
REVISED = _COMMON + _UNIT_REVISED + _MAIN

BENCHMARK = Benchmark(
    name="javac",
    description="java compiler",
    main_class="Javac",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["70", "40"],
    alternate_args=["30", "90"],
    rewritings=[
        Rewriting("code removal", "protected", "indirect-usage"),
    ],
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
