'''juru — web indexing (IBM-internal tool).

Paper behaviour (§3.4.1): "In juru the largest drag for an allocation
site is 25.94 MB². Character arrays of 100K elements are allocated at
this site and assigned to a local variable. Each of these arrays is
in-use for 200KB of allocation and then in-drag for another 200KB until
it becomes unreachable. Assigning null to this local variable after its
last use eliminates this drag and leads to a 33% reduction in total
drag." juru "acts in cycles, with the same reduction on every cycle"
(Figure 2).

Model: an indexer reads each document into a large char buffer (a
local), tokenizes it into a persistent inverted index (the live heap),
then computes ranking data (more allocation) while the dead buffer is
still held by its slot. The revised version adds ``buffer = null;``
after tokenization — Table 5: assigning null / local variable /
liveness analysis.
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class Posting {
    int termId;
    int frequency;
    Posting next;
    Posting(int termId, Posting next) {
        this.termId = termId;
        this.frequency = 1;
        this.next = next;
    }
}

class InvertedIndex {
    HashTable terms;
    Vector documents;
    Vector digests;
    int termCount;
    InvertedIndex() {
        terms = new HashTable(64);
        documents = new Vector(16);
        digests = new Vector(16);
        termCount = 0;
    }
    void addDocument(String title, char[] digest) {
        documents.add(title);
        digests.add(digest);
    }
    int digestChecksum() {
        int sum = 0;
        for (int d = 0; d < digests.size(); d = d + 1) {
            char[] digest = (char[]) digests.get(d);
            for (int i = 0; i < digest.length; i = i + 64) {
                sum = sum + digest[i];
            }
        }
        return sum;
    }
    void addTerm(String term, int docId) {
        Object entry = terms.get(term);
        if (entry == null) {
            terms.put(term, new Posting(termCount, null));
            termCount = termCount + 1;
        } else {
            Posting posting = (Posting) entry;
            posting.frequency = posting.frequency + 1;
        }
    }
    int size() { return termCount; }
}

class Document {
    int id;
    int length;
    Document(int id, int length) {
        this.id = id;
        this.length = length;
    }
    void read(char[] buffer, Random rng) {
        // synthetic crawl: scatter pseudo-words through the buffer
        int seed = rng.nextInt(26);
        for (int i = 0; i + 8 < buffer.length; i = i + 32) {
            buffer[i] = (char) ('a' + (i / 32 + seed) % 26);
            buffer[i + 1] = (char) ('a' + (i / 64 + id) % 26);
            buffer[i + 2] = ' ';
        }
    }
}

class Ranker {
    // per-document ranking pass: allocates scoring scratch space
    static int rank(InvertedIndex index, int docId) {
        int checksum = 0;
        for (int block = 0; block < 6; block = block + 1) {
            int[] scores = new int[700];
            for (int i = 0; i < scores.length; i = i + 16) {
                scores[i] = (docId + i + block) % 97;
                checksum = checksum + scores[i];
            }
        }
        return checksum;
    }
}
"""

_MAIN_TEMPLATE = """
class Juru {
    public static void main(String[] args) {
        int docCount = Integer.parseInt(args[0]);
        int docLength = Integer.parseInt(args[1]);
        InvertedIndex index = new InvertedIndex();
        Random rng = new Random(20010617);
        int checksum = 0;
        for (int d = 0; d < docCount; d = d + 1) {
            checksum = checksum + indexDocument(index, d, docLength, rng);
        }
        checksum = checksum + index.digestChecksum();
        System.println("indexed " + docCount + " docs, terms=" + index.size());
        System.printInt(checksum);
    }
    static int indexDocument(InvertedIndex index, int docId, int docLength, Random rng) {
        Document doc = new Document(docId, docLength);
        char[] digest = new char[docLength / 4];
        index.addDocument("doc-" + docId, digest);
        char[] buffer = new char[docLength];
        doc.read(buffer, rng);
        for (int i = 0; i < digest.length; i = i + 32) {
            digest[i] = buffer[i * 4];
        }
        tokenize(index, buffer, docId);%NULLING%
        return Ranker.rank(index, docId);
    }
    static void tokenize(InvertedIndex index, char[] buffer, int docId) {
        for (int i = 0; i + 8 < buffer.length; i = i + 64) {
            char[] word = new char[2];
            word[0] = buffer[i];
            word[1] = buffer[i + 1];
            index.addTerm(String.valueOf(word, 2), docId);
        }
    }
}
"""

ORIGINAL = _COMMON + _MAIN_TEMPLATE.replace("%NULLING%", "")
REVISED = _COMMON + _MAIN_TEMPLATE.replace(
    "%NULLING%",
    "\n        buffer = null;  // dead after tokenize (liveness-verified)",
)

BENCHMARK = Benchmark(
    name="juru",
    description="web indexing",
    main_class="Juru",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["24", "16000"],
    alternate_args=["14", "24000"],
    rewritings=[
        Rewriting("assigning null", "local variable", "liveness"),
    ],
    interval_bytes=16 * 1024,
    max_heap=512 * 1024,
)
