'''strings — interned-string duplication / session-cache retention
(server-shaped pattern-4 probe; not in the paper).

A session registry models a server's connection table: every session
carries its own copy of one of a handful of user-agent strings (the
duplication an interning cache would fold) plus a working buffer, and
the registry holds the sessions in a Vector while a HashTable maps each
user to their latest agent string. After the serving phase the registry
is sealed — its size is reported and it is never consulted again — but
both containers pin their contents through a long export phase that
keeps allocating fresh buffers.

The heap shape is deliberately snapshot-friendly: sessions are
reachable *only* through ``registry.sessions`` and the agent-string
copies only through ``registry.byUser``, so the dominator tree shows a
single cuttable edge over each subtree — unlike db, where the
double-reachable records defeat any single cut. ``repro snapshot
report`` names both containers with their retained sizes, DRAG008
proposes the cuts, and the RetainerCutPlanner verifies them
differentially. As for db/cache, the shipped revised program is the
original: the rewriting is the optimizer's to find.
'''

from repro.benchmarks.registry import Benchmark

ORIGINAL = """
class StringSession {
    String user;
    String agent;
    char[] buffer;
    int hits;
    StringSession(String user, String agent, int width) {
        this.user = user;
        this.agent = agent;
        this.buffer = new char[width];
        this.hits = 0;
    }
    int touch(int q) {
        hits = hits + 1;
        return buffer[(q * 5) % buffer.length] + hits;
    }
}

class SessionRegistry {
    Vector sessions;
    HashTable byUser;
    SessionRegistry() {
        sessions = new Vector(64);
        byUser = new HashTable(64);
    }
    void open(StringSession s) {
        sessions.add(s);
        byUser.put(s.user, s.agent);
    }
    StringSession at(int index) {
        return (StringSession) sessions.get(index);
    }
    int size() { return sessions.size(); }
}

class Strings {
    public static void main(String[] args) {
        int sessions = Integer.parseInt(args[0]);
        int exports = Integer.parseInt(args[1]);
        SessionRegistry registry = new SessionRegistry();
        for (int s = 0; s < sessions; s = s + 1) {
            // each session gets a fresh copy of one of three agent
            // strings — duplicated character data an interning cache
            // would share, held alive by the registry either way
            registry.open(new StringSession("user" + s,
                                            "agent/" + (s % 3), 240));
        }
        int result = 0;
        Random rng = new Random(5);
        for (int q = 0; q < exports; q = q + 1) {
            // serving phase: the hot three-quarters keep being hit at
            // unpredictable times (§3.4 pattern 4)
            int cold = sessions / 4;
            int pick = cold + rng.nextInt(sessions - cold);
            StringSession hit = registry.at(pick);
            if (hit != null) {
                result = result + hit.touch(q);
            }
        }
        // serving over: seal and report the registry — its last use —
        // then export. Every session and agent string drags through
        // the whole export phase unless the containers are cut.
        System.println("sessions " + registry.size() + " exports " + exports);
        for (int e = 0; e < exports; e = e + 1) {
            char[] page = new char[600];
            page[0] = (char) ('0' + result % 10);
            result = result + page[0];
        }
        System.printInt(result);
    }
}
"""

# The improvement is the optimizer's to find (DRAG008 via snapshot
# retained sizes), not a shipped hand rewriting — as for db and cache.
REVISED = ORIGINAL

BENCHMARK = Benchmark(
    name="strings",
    description="interned-string duplication / session-cache retention",
    main_class="Strings",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["90", "220"],
    alternate_args=["60", "360"],
    rewritings=[],
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
