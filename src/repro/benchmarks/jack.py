'''jack — parser generator (SPECjvm98 _228_jack).

Paper behaviour (§3.4.3): "the three allocation sites producing the
largest drag are all in the same constructor. More than 97% of the drag
for these three allocation sites is due to objects that are never-used.
... One Vector and two HashTable objects are allocated at the
allocation sites. References to each of these data structures are
assigned to instance fields [with] package visibility. ... We eliminate
the allocations and before every possible first use of one of the
instance fields, we add a test to check whether the allocation has
already been done." Interestingly, "later versions of jack ... use
similar rewritings" (javacc).

Model: a parser generator walks grammar productions; every production
constructs an NfaBuilder whose constructor eagerly allocates an
expansion Vector and two HashTables (first/follow sets), but only the
few "complex" productions ever touch them. Builders hang off the
persistent Grammar, so the unused collections drag to the end of the
run. The revised version allocates them lazily behind null-checking
accessors — Table 5: lazy allocation / package / minimal code
insertion.
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class Production {
    String name;
    int arity;
    NfaBuilder builder;
    char[] docComment;
    char[] sourceSpan;
    char[] javadocTags;
    char[] lineMap;
    Production(String name, int arity, NfaBuilder builder) {
        this.name = name;
        this.arity = arity;
        this.builder = builder;
        this.docComment = new char[100];
        this.sourceSpan = new char[100];
        this.javadocTags = new char[100];
        this.lineMap = new char[100];
    }
    // source metadata is consulted once while the production is added,
    // then drags to the end of the run (residual, un-rewritten drag)
    int docLength() {
        int n = 0;
        for (int i = 0; i < docComment.length; i = i + 32) {
            if (docComment[i] != ' ') { n = n + 1; }
            if (sourceSpan[i] != ' ') { n = n + 1; }
            if (javadocTags[i] != ' ') { n = n + 1; }
            if (lineMap[i] != ' ') { n = n + 1; }
        }
        return n;
    }
}

class Grammar {
    Vector productions;
    Vector tableRows;
    Grammar() {
        productions = new Vector(64);
        tableRows = new Vector(64);
    }
    void addProduction(Production p) { productions.add(p); }
    void emitRow(char[] row) { tableRows.add(row); }
    int size() { return productions.size(); }
}

class Emitter {
    // generates a table row for one production (persistent output)
    static char[] emit(Production p, int width) {
        char[] row = new char[width];
        for (int i = 0; i < width; i = i + 16) {
            row[i] = (char) ('0' + (p.arity + i) % 10);
        }
        return row;
    }
}
"""

_ORIGINAL_BUILDER = """
class NfaBuilder {
    Vector expansion;
    HashTable firstSet;
    HashTable followSet;
    int productionId;
    NfaBuilder(int productionId) {
        this.productionId = productionId;
        expansion = new Vector(120);
        firstSet = new HashTable(60);
        followSet = new HashTable(60);
    }
    void expand(String token) {
        expansion.add(token);
        firstSet.put(token, token);
    }
    void follow(String token) {
        followSet.put(token, token);
    }
    int complexity() {
        return expansion.size() + firstSet.size() + followSet.size();
    }
}
"""

# The paper's rewrite: allocations postponed to first use behind
# null-check accessors (package visibility, reads only in this class).
_REVISED_BUILDER = """
class NfaBuilder {
    Vector expansion;
    HashTable firstSet;
    HashTable followSet;
    int productionId;
    NfaBuilder(int productionId) {
        this.productionId = productionId;
    }
    Vector lazyExpansion() {
        if (expansion == null) { expansion = new Vector(120); }
        return expansion;
    }
    HashTable lazyFirst() {
        if (firstSet == null) { firstSet = new HashTable(60); }
        return firstSet;
    }
    HashTable lazyFollow() {
        if (followSet == null) { followSet = new HashTable(60); }
        return followSet;
    }
    void expand(String token) {
        lazyExpansion().add(token);
        lazyFirst().put(token, token);
    }
    void follow(String token) {
        lazyFollow().put(token, token);
    }
    int complexity() {
        return lazyExpansion().size() + lazyFirst().size() + lazyFollow().size();
    }
}
"""

_MAIN = """
class Jack {
    public static void main(String[] args) {
        int productions = Integer.parseInt(args[0]);
        int complexEvery = Integer.parseInt(args[1]);
        Grammar grammar = new Grammar();
        int checksum = 0;
        for (int p = 0; p < productions; p = p + 1) {
            NfaBuilder builder = new NfaBuilder(p);
            Production production = new Production("prod" + p, p % 7, builder);
            grammar.addProduction(production);
            checksum = checksum + production.docLength();  // last use: drags after this
            checksum = checksum + scanTokens(p);
            if (p % complexEvery == 0) {
                checksum = checksum + expandProduction(builder, p);
            }
            grammar.emitRow(Emitter.emit(production, 700));
        }
        checksum = checksum + tableChecksum(grammar);
        System.println("productions " + grammar.size());
        System.printInt(checksum);
    }
    // lexing pass: short-lived token strings plus real matching work
    static int scanTokens(int id) {
        int acc = id;
        for (int t = 0; t < 8; t = t + 1) {
            String token = "t" + (id * 31 + t);
            acc = acc + token.length();
        }
        for (int k = 0; k < 1100; k = k + 1) {
            acc = (acc * 31 + k) % 65536;
        }
        return acc;
    }
    static int expandProduction(NfaBuilder builder, int id) {
        for (int t = 0; t < 12; t = t + 1) {
            builder.expand("tok" + (id * 31 + t));
            builder.follow("fol" + (id * 17 + t));
        }
        return builder.complexity();
    }
    static int tableChecksum(Grammar grammar) {
        int sum = 0;
        for (int r = 0; r < grammar.tableRows.size(); r = r + 1) {
            char[] row = (char[]) grammar.tableRows.get(r);
            for (int i = 0; i < row.length; i = i + 32) {
                sum = sum + row[i];
            }
        }
        return sum;
    }
}
"""

ORIGINAL = _COMMON + _ORIGINAL_BUILDER + _MAIN
REVISED = _COMMON + _REVISED_BUILDER + _MAIN

BENCHMARK = Benchmark(
    name="jack",
    description="parser generator",
    main_class="Jack",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["90", "15"],
    alternate_args=["60", "4"],
    rewritings=[
        Rewriting("lazy allocation", "package", "min. code insertion"),
    ],
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
