'''jess — expert system shell (SPECjvm98 _202_jess).

Paper behaviour: three rewrites (Table 5):

* assigning null / private array / array liveness — §5.2: "In jess a
  dynamic vector-like array of references is maintained. After removing
  the logically last element from this array, that element has no
  future use. Interestingly, the original code tries to handle this
  case of a dead element, but it does not handle it completely."
* code removal / public static final (JDK rewrite) / usage — the
  java.util.Locale-style table of eagerly allocated constants jess
  never reads ("We demonstrate drag reduction due to JDK rewriting in
  jess", §4.1).
* code removal / private static / usage (R) — a debug structure
  assigned at class initialization and never read.

Model: a forward-chaining engine asserts facts onto an agenda (a
vector-like FactList whose pop leaves the slot dangling), fires rules
(live rule network + churn), and carries a never-read private static
trace buffer. The revised version fixes FactList.pop, removes the trace
buffer initialization, and ships a rewritten JDK Locale with no eager
constants.
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class Fact {
    String head;
    char[] slots;
    Fact(String head, int width) {
        this.head = head;
        this.slots = new char[width];
    }
    int mark(int seed) {
        int sum = 0;
        for (int i = 0; i < slots.length; i = i + 16) {
            slots[i] = (char) ('a' + (seed + i) % 26);
            sum = sum + slots[i];
        }
        return sum;
    }
    int touch() { return slots[0]; }
}

class Rule {
    String name;
    int salience;
    Rule(String name, int salience) {
        this.name = name;
        this.salience = salience;
    }
    int fire(Fact fact, int step) {
        int acc = salience + fact.mark(step);
        for (int k = 0; k < 260; k = k + 1) {
            acc = (acc * 31 + k) % 65536;
        }
        return acc;
    }
}

class RuleBase {
    HashTable rules;
    Vector names;
    RuleBase() {
        rules = new HashTable(32);
        names = new Vector(16);
    }
    void define(Rule rule) {
        rules.put(rule.name, rule);
        names.add(rule.name);
    }
    Rule pick(int i) {
        String name = (String) names.get(i % names.size());
        return (Rule) rules.get(name);
    }
}
"""

# The vector-like agenda; like jess's own array the original "tries to
# handle" removal (bounds checks) but leaves the popped slot dangling.
_FACTLIST_ORIGINAL = """
class FactList {
    private Fact[] data;
    private int count;
    FactList(int capacity) {
        data = new Fact[capacity];
        count = 0;
    }
    void push(Fact fact) {
        if (count == data.length) {
            Fact[] bigger = new Fact[data.length * 2];
            System.arraycopy(data, 0, bigger, 0, count);
            data = bigger;
        }
        data[count] = fact;
        count = count + 1;
    }
    Fact pop() {
        if (count == 0) { return null; }
        count = count - 1;
        return data[count];
    }
    Fact get(int i) {
        if (i < 0 || i >= count) { return null; }
        return data[i];
    }
    int size() { return count; }
}
"""

_FACTLIST_REVISED = """
class FactList {
    private Fact[] data;
    private int count;
    FactList(int capacity) {
        data = new Fact[capacity];
        count = 0;
    }
    void push(Fact fact) {
        if (count == data.length) {
            Fact[] bigger = new Fact[data.length * 2];
            System.arraycopy(data, 0, bigger, 0, count);
            data = bigger;
        }
        data[count] = fact;
        count = count + 1;
    }
    Fact pop() {
        if (count == 0) { return null; }
        count = count - 1;
        Fact removed = data[count];
        data[count] = null;  // array liveness: the slot is dead
        return removed;
    }
    Fact get(int i) {
        if (i < 0 || i >= count) { return null; }
        return data[i];
    }
    int size() { return count; }
}
"""

_ENGINE_ORIGINAL = """
class Engine {
    // written at class initialization, never read anywhere: dead code
    private static char[] traceBuffer = new char[3000];
    RuleBase base;
    FactList agenda;
    Engine(RuleBase base) {
        this.base = base;
        agenda = new FactList(64);
    }
}
"""

_ENGINE_REVISED = """
class Engine {
    private static char[] traceBuffer;
    RuleBase base;
    FactList agenda;
    Engine(RuleBase base) {
        this.base = base;
        agenda = new FactList(64);
    }
}
"""

_MAIN = """
class Jess {
    public static void main(String[] args) {
        int steps = Integer.parseInt(args[0]);
        int factWidth = Integer.parseInt(args[1]);
        RuleBase base = new RuleBase();
        for (int r = 0; r < 12; r = r + 1) {
            base.define(new Rule("rule" + r, r % 5));
        }
        Engine engine = new Engine(base);
        int checksum = 0;
        for (int step = 0; step < steps; step = step + 1) {
            engine.agenda.push(new Fact("f" + step, factWidth));
            if (step % 3 != 0) {
                Fact fact = engine.agenda.pop();
                Rule rule = base.pick(step);
                checksum = checksum + rule.fire(fact, step);
                fact = null;
            }
            if (step % 40 == 39) {
                // partial working-memory scan: pattern matching only
                // touches alternating residual facts; the rest drag
                for (int i = 0; i < engine.agenda.size(); i = i + 2) {
                    checksum = checksum + engine.agenda.get(i).touch();
                }
            }
        }
        System.println("agenda " + engine.agenda.size());
        System.printInt(checksum);
    }
}
"""

ORIGINAL = _COMMON + _FACTLIST_ORIGINAL + _ENGINE_ORIGINAL + _MAIN
REVISED = _COMMON + _FACTLIST_REVISED + _ENGINE_REVISED + _MAIN

# The JDK rewrite (§4.1): a Locale with no eagerly allocated constants.
REVISED_LOCALE = """
class Locale {
    public static final Locale ENGLISH = null;
    public static final Locale FRENCH = null;
    public static final Locale GERMAN = null;
    public static final Locale ITALIAN = null;
    public static final Locale JAPANESE = null;
    public static final Locale KOREAN = null;
    public static final Locale CHINESE = null;
    public static final Locale SPANISH = null;
    public static final Locale PORTUGUESE = null;
    public static final Locale RUSSIAN = null;
    public static final Locale DUTCH = null;
    public static final Locale SWEDISH = null;
    private String language;
    private char[] displayData;
    Locale(String language) {
        this.language = language;
        this.displayData = new char[64];
    }
    public String getLanguage() { return language; }
}
"""

BENCHMARK = Benchmark(
    name="jess",
    description="expert system shell",
    main_class="Jess",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["800", "300"],
    alternate_args=["500", "560"],
    rewritings=[
        Rewriting("assigning null", "private array", "array liveness"),
        Rewriting("code removal", "public static final (JDK rewrite)", "usage"),
        Rewriting("code removal", "private static", "usage (R)"),
    ],
    revised_library_overrides={"Locale": REVISED_LOCALE},
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
