'''euler — Euler equations solver (Java Grande).

Paper behaviour (§4.1): "for euler the size of the reachable heap for
the original run has a constant size, because all allocations are done
in advance. By assigning null to dead references we were able to reduce
most of the drag (76% of it), and the optimized heap size almost
coincides with the in-use object size." Table 5: assigning null /
package array / array liveness. Space saving is small (7.28%) because
the grid stays genuinely in use for most of the run — rows only retire
as the solution converges near the end.

Model: the solver preallocates the whole grid (rows held in a
package-visible array), then iterates; every sweep touches all active
rows and allocates flux temporaries. In the convergence phase rows
retire progressively: dead, but still referenced by the row array. The
revised version nulls each row's slot at retirement.
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class Row {
    char[] cells;
    int index;
    Row(int index, int width) {
        this.index = index;
        this.cells = new char[width];
    }
    int sweep(int t) {
        int sum = 0;
        for (int i = 0; i < cells.length; i = i + 64) {
            cells[i] = (char) ('0' + (index + t + i) % 10);
            sum = sum + cells[i];
        }
        return sum;
    }
}

class Flux {
    char[] buffer;
    Flux(int width) { buffer = new char[width]; }
    int integrate(int t) {
        int sum = 0;
        for (int i = 0; i < buffer.length; i = i + 32) {
            buffer[i] = (char) ('a' + (t + i) % 26);
            sum = sum + buffer[i];
        }
        return sum;
    }
}
"""

_SOLVER_TEMPLATE = """
class Solver {
    Row[] grid;   // package visibility: the array the rewrite targets
    int rows;
    int iterations;
    Solver(int rows, int width, int iterations) {
        this.rows = rows;
        this.iterations = iterations;
        grid = new Row[rows];
        for (int i = 0; i < rows; i = i + 1) {
            grid[i] = new Row(i, width);
        }
    }
    int activeRows(int t) {
        // all rows active until 80% of the run; then linear retirement
        int cutoff = iterations * 3 / 5;
        if (t < cutoff) { return rows; }
        int remaining = iterations - t;
        int active = rows * remaining / (iterations - cutoff);
        if (active < 1) { return 1; }
        return active;
    }
    int step(int t, int fluxWidth) {
        int active = activeRows(t);
        int previousActive = rows;
        if (t > 0) { previousActive = activeRows(t - 1); }
        int sum = 0;
        for (int i = 0; i < active; i = i + 1) {
            sum = sum + grid[i].sweep(t);
        }%RETIRE%
        Flux flux = new Flux(fluxWidth);
        return sum + flux.integrate(t);
    }
}
"""

_RETIRE_REVISED = """
        for (int dead = active; dead < previousActive; dead = dead + 1) {
            grid[dead] = null;  // converged: the row has no future use
        }"""

_MAIN = """
class Euler {
    public static void main(String[] args) {
        int rows = Integer.parseInt(args[0]);
        int iterations = Integer.parseInt(args[1]);
        Solver solver = new Solver(rows, 1500, iterations);
        Vector residuals = new Vector(iterations);
        int checksum = 0;
        for (int t = 0; t < iterations; t = t + 1) {
            checksum = checksum + solver.step(t, 1200);
            char[] residual = new char[500];
            residual[0] = (char) ('0' + checksum % 10);
            residuals.add(residual);
        }
        for (int t = 0; t < residuals.size(); t = t + 1) {
            char[] residual = (char[]) residuals.get(t);
            checksum = checksum + residual[0];
        }
        System.println("iterations " + iterations);
        System.printInt(checksum);
    }
}
"""

ORIGINAL = _COMMON + _SOLVER_TEMPLATE.replace("%RETIRE%", "") + _MAIN
REVISED = _COMMON + _SOLVER_TEMPLATE.replace("%RETIRE%", _RETIRE_REVISED) + _MAIN

BENCHMARK = Benchmark(
    name="euler",
    description="Euler equations solver",
    main_class="Euler",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["40", "70"],
    alternate_args=["56", "50"],
    rewritings=[
        Rewriting("assigning null", "package array", "array liveness"),
    ],
    interval_bytes=4 * 1024,
    max_heap=2 * 1024 * 1024,
)
