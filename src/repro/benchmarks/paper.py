"""The paper's published numbers, transcribed from Tables 1-5.

Used by EXPERIMENTS.md generation and by the benches to print
paper-vs-measured rows. Integrals are MByte² on the authors' testbed;
our runs are scaled down ~50-100x, so only the *ratios* (drag saving,
space saving) and orderings are comparable.
"""

# Table 1: benchmark programs (application classes, source statements).
TABLE1 = {
    "javac": {"classes": 176, "stmts": 12345, "description": "java compiler"},
    "db": {"classes": 3, "stmts": 512, "description": "database simulation"},
    "jack": {"classes": 56, "stmts": 5106, "description": "parser generator"},
    "raytrace": {"classes": 25, "stmts": 1479, "description": "raytracer of a picture"},
    "jess": {"classes": 151, "stmts": 4567, "description": "expert system shell"},
    "mc": {"classes": 15, "stmts": 880, "description": "financial simulation"},
    "euler": {"classes": 5, "stmts": 726, "description": "Euler equations solver"},
    "juru": {"classes": 38, "stmts": 2505, "description": "web indexing"},
    "analyzer": {"classes": 258, "stmts": 35489, "description": "mutability analyzer"},
    # cache is not in the paper: it is our pattern-4 probe (session
    # table pinning dead entries), so its published columns are zero.
    "cache": {"classes": 0, "stmts": 0, "description": "session-cache churn"},
    # strings is not in the paper either: a server-shaped snapshot probe
    # (interned-string duplication / session-cache retention).
    "strings": {"classes": 0, "stmts": 0, "description": "interned-string session registry"},
}

# Table 2: integrals (MByte^2) and savings for the primary inputs.
# (reduced_in_use, reduced_reachable, original_in_use, original_reachable,
#  drag_saving_pct, space_saving_pct)
TABLE2 = {
    "javac": {
        "reduced_in_use": 566.49, "reduced_reachable": 937.09,
        "original_in_use": 656.19, "original_reachable": 1015.4,
        "drag_saving_pct": 21.8, "space_saving_pct": 7.71,
    },
    "jack": {
        "reduced_in_use": 50.58, "reduced_reachable": 82.24,
        "original_in_use": 57.07, "original_reachable": 141.93,
        "drag_saving_pct": 70.34, "space_saving_pct": 42.06,
    },
    "raytrace": {
        "reduced_in_use": 127.47, "reduced_reachable": 220.59,
        "original_in_use": 128.42, "original_reachable": 317.62,
        "drag_saving_pct": 51.28, "space_saving_pct": 30.55,
    },
    "jess": {
        "reduced_in_use": 74.01, "reduced_reachable": 231.91,
        "original_in_use": 73.67, "original_reachable": 260.86,
        "drag_saving_pct": 15.47, "space_saving_pct": 11.2,
    },
    "euler": {
        "reduced_in_use": 1421.0, "reduced_reachable": 1459.64,
        "original_in_use": 1424.34, "original_reachable": 1574.28,
        "drag_saving_pct": 76.46, "space_saving_pct": 7.28,
    },
    "mc": {
        "reduced_in_use": 10969.61, "reduced_reachable": 11010.44,
        "original_in_use": 11310.73, "original_reachable": 11747.09,
        "drag_saving_pct": 168.82, "space_saving_pct": 6.27,
    },
    "juru": {
        "reduced_in_use": 159.83, "reduced_reachable": 210.92,
        "original_in_use": 159.83, "original_reachable": 236.86,
        "drag_saving_pct": 33.68, "space_saving_pct": 10.95,
    },
    "analyzer": {
        "reduced_in_use": 196.19, "reduced_reachable": 409.84,
        "original_in_use": 195.9, "original_reachable": 482.46,
        "drag_saving_pct": 25.34, "space_saving_pct": 15.05,
    },
    # db is run but shows no savings (§4.1: "There are no space savings
    # for this benchmark"); it is included in the paper's averages.
    "db": {
        "reduced_in_use": None, "reduced_reachable": None,
        "original_in_use": None, "original_reachable": None,
        "drag_saving_pct": 0.0, "space_saving_pct": 0.0,
    },
    # cache ships no hand rewriting (the optimizer finds one), so its
    # published deltas are zero, like db's.
    "cache": {
        "reduced_in_use": None, "reduced_reachable": None,
        "original_in_use": None, "original_reachable": None,
        "drag_saving_pct": 0.0, "space_saving_pct": 0.0,
    },
    # strings likewise ships no hand rewriting: the snapshot-guided
    # RetainerCutPlanner is expected to find both container cuts.
    "strings": {
        "reduced_in_use": None, "reduced_reachable": None,
        "original_in_use": None, "original_reachable": None,
        "drag_saving_pct": 0.0, "space_saving_pct": 0.0,
    },
}

# Table 3: alternate inputs (reduced/original reachable integrals, space saving %).
TABLE3 = {
    "javac": {"reduced_reachable": 340.99, "original_reachable": 353.36, "space_saving_pct": 3.5},
    "jack": {"reduced_reachable": 47.92, "original_reachable": 61.39, "space_saving_pct": 21.94},
    "raytrace": {"reduced_reachable": 540.97, "original_reachable": 755.84, "space_saving_pct": 28.43},
    "jess": {"reduced_reachable": 561.68, "original_reachable": 591.09, "space_saving_pct": 4.98},
    "euler": {"reduced_reachable": 7320.18, "original_reachable": 7725.46, "space_saving_pct": 5.25},
    "mc": {"reduced_reachable": 7043.01, "original_reachable": 7513.95, "space_saving_pct": 6.27},
    "juru": {"reduced_reachable": 314.9, "original_reachable": 351.76, "space_saving_pct": 10.48},
    "analyzer": {"reduced_reachable": 859.85, "original_reachable": 1051.57, "space_saving_pct": 18.23},
    "db": {"reduced_reachable": None, "original_reachable": None, "space_saving_pct": 0.0},
    "cache": {"reduced_reachable": None, "original_reachable": None, "space_saving_pct": 0.0},
    "strings": {"reduced_reachable": None, "original_reachable": None, "space_saving_pct": 0.0},
}

# Table 4: runtime savings (%) under Sun HotSpot 1.3 Client.
TABLE4 = {
    "javac": -0.12,
    "jack": 0.99,
    "raytrace": 2.32,
    "jess": 2.05,
    "euler": 1.91,
    "mc": 2.09,
    "juru": 0.76,
    "analyzer": -0.38,
    "db": 0.0,  # not listed; included at zero in the average
    "cache": 0.0,  # not in the paper
    "strings": 0.0,  # not in the paper
}

# Table 5: per-benchmark rewritings (strategy, reference kind,
# drag saving % attributed to the strategy, expected analysis).
TABLE5 = {
    "javac": [("code removal", "protected", 21.8, "indirect-usage")],
    "jack": [("lazy allocation", "package", 70.34, "min. code insertion")],
    "raytrace": [
        ("code removal", "private array", 45.01, "array liveness (R)"),
        ("assigning null", "private", 6.27, "liveness (R)"),
    ],
    "jess": [
        ("assigning null", "private array", 2.7, "array liveness"),
        ("code removal", "public static final (JDK rewrite)", 1.68, "usage"),
        ("code removal", "private static", 11.09, "usage (R)"),
    ],
    "euler": [("assigning null", "package array", 76.46, "array liveness")],
    "mc": [
        ("code removal", "local variable + private", 119.95, "indirect-usage (R)"),
        ("assigning null", "private array", 48.87, "array liveness"),
    ],
    "juru": [("assigning null", "local variable", 33.68, "liveness")],
    "analyzer": [
        ("assigning null", "local variable + private static", 25.34, "liveness")
    ],
    "db": [],
    "cache": [],  # the heap-liveness optimizer plans the rewriting itself
    "strings": [],  # the snapshot-guided retainer-cut planner finds the cuts
}

# §4.1 headline averages.
AVERAGE_SPACE_SAVING_PCT = 14.0  # all nine incl. db ("average space savings ... is 14%")
AVERAGE_DRAG_SAVING_PCT = 51.0
AVERAGE_RUNTIME_SAVING_PCT = 1.07
SPEC_AVERAGE_SPACE_SAVING_PCT = 18.0  # abstract: SPECjvm98 average
