'''cache — session-cache churn (pattern-4 probe; not in the paper).

A long-lived session table serves a stream of requests whose hot set
is four-fifths of the admitted sessions; the cold fifth is dead weight
the moment loading ends, and even the hot sessions die the instant the
serving phase is over — yet the table pins every one of them through a
report-generation phase that keeps allocating. This is §3.4's pattern
4 exactly as db exhibits it ("the exact queries cannot be predicted"),
but with a twist the paper's per-site toolkit cannot touch: the holder
(`store`) itself stays live to the last line, so nulling the *local*
is impossible. Only an analysis that proves deadness *through the
heap* — every access path `store.sessions.*` is dead after the serving
phase — licenses the one-line fix `store.sessions = null;`.

Like db, the shipped revised program is the original: the point of
this benchmark is that `repro optimize` discovers the rewriting itself
(DRAG007 → assign-null-heap-field), which the differential gate in
tests/analysis/test_heap_liveness.py verifies end to end.
'''

from repro.benchmarks.registry import Benchmark

ORIGINAL = """
class Session {
    String id;
    char[] payload;
    int hits;
    Session(String id, int width) {
        this.id = id;
        this.payload = new char[width];
        this.hits = 0;
    }
    int touch(int q) {
        hits = hits + 1;
        return payload[(q * 7) % payload.length] + hits;
    }
}

class SessionStore {
    HashTable sessions;
    int stored;
    SessionStore() {
        sessions = new HashTable(64);
        stored = 0;
    }
    void admit(Session s) {
        sessions.put(s.id, s);
        stored = stored + 1;
    }
    Session lookup(String id) {
        return (Session) sessions.get(id);
    }
    int size() { return stored; }
}

class Cache {
    public static void main(String[] args) {
        int sessions = Integer.parseInt(args[0]);
        int requests = Integer.parseInt(args[1]);
        SessionStore store = new SessionStore();
        for (int s = 0; s < sessions; s = s + 1) {
            store.admit(new Session("s" + s, 360));
        }
        int result = 0;
        Random rng = new Random(7);
        for (int q = 0; q < requests; q = q + 1) {
            // the hot four-fifths keep being hit at unpredictable
            // times; the cold fifth below the waterline is never
            // looked up again after admission (§3.4 pattern 4)
            int cold = sessions / 5;
            int pick = cold + rng.nextInt(sessions - cold);
            Session hit = store.lookup("s" + pick);
            if (hit != null) {
                result = result + hit.touch(q);
            }
        }
        // serving phase over: the table is sealed and never consulted
        // again, but `store` itself must survive for the final report
        int sealed = store.size();
        result = result + sealed;
        for (int r = 0; r < 40; r = r + 1) {
            // report generation churns fresh buffers; every dead
            // session drags through this whole phase unless
            // store.sessions is dropped
            char[] report = new char[700];
            report[0] = (char) ('0' + result % 10);
            result = result + report[0];
        }
        System.println("sessions " + store.size() + " requests " + requests);
        System.printInt(result);
    }
}
"""

# The improvement is the optimizer's to find (DRAG007), not a shipped
# hand rewriting — the revised program is the original, as for db.
REVISED = ORIGINAL

BENCHMARK = Benchmark(
    name="cache",
    description="session-cache churn",
    main_class="Cache",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["90", "240"],
    alternate_args=["60", "400"],
    rewritings=[],
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
