"""The nine benchmark programs of the paper's evaluation (§3.1, Table 1)
modelled in mini-Java, plus the harness that regenerates Tables 1-5 and
Figure 2.

Five SPECjvm98 programs (javac, db, jack, raytrace, jess), two Java
Grande programs (euler, mc), and two IBM-internal tools (juru,
analyzer). Each module carries an *original* and a hand-*revised*
source (the paper's manual rewrites), input configurations, the Table-5
rewriting summary, and the paper's published numbers for comparison.
"""

from repro.benchmarks.registry import Benchmark, Rewriting, all_benchmarks, get_benchmark
from repro.benchmarks.runner import (
    BenchmarkRun,
    run_pair,
    run_runtime_pair,
    figure2_series,
)

__all__ = [
    "Benchmark",
    "Rewriting",
    "all_benchmarks",
    "get_benchmark",
    "BenchmarkRun",
    "run_pair",
    "run_runtime_pair",
    "figure2_series",
]
