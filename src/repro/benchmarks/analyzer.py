'''analyzer — mutability analyzer (IBM-internal tool).

Paper behaviour (§4.1): "for the analyzer benchmark the size of the
reachable heap is reduced only after allocating the first 78MB in the
program. This occurs because objects used for the first part of the
computation (first 78MB of allocation) are not needed later in the
computation." Table 5: assigning null / local variable + private
static / liveness — 25.34% drag saving, 15.05% space saving
(alternate input 18.23%).

Model: phase 1 parses the target program into a large intermediate
representation (held by a local in ``main`` and by a private static
side-table); phase 2 computes mutability facts from a compact summary
and never touches the phase-1 structures — which nevertheless stay
reachable to the end. The revision nulls the local and the private
static once phase 2 begins.
'''

from repro.benchmarks.registry import Benchmark, Rewriting

_COMMON = """
class IrNode {
    String label;
    char[] attributes;
    IrNode(String label, int width) {
        this.label = label;
        this.attributes = new char[width];
    }
    int seal(int seed) {
        int sum = 0;
        for (int i = 0; i < attributes.length; i = i + 32) {
            attributes[i] = (char) ('a' + (seed + i) % 26);
            sum = sum + attributes[i];
        }
        return sum;
    }
}

class IntermediateRep {
    Vector nodes;
    IntermediateRep() { nodes = new Vector(64); }
    void add(IrNode node) { nodes.add(node); }
    int size() { return nodes.size(); }
}

class Summary {
    char[] facts;
    int count;
    Summary(int width) {
        facts = new char[width];
        count = 0;
    }
    void record(int value) {
        facts[count % facts.length] = (char) ('0' + value % 10);
        count = count + 1;
    }
    int checksum() {
        int sum = 0;
        for (int i = 0; i < facts.length; i = i + 16) {
            sum = sum + facts[i];
        }
        return sum;
    }
}

class MutabilityChecker {
    static Vector reports = new Vector(32);
    static int analyze(Summary summary, int round) {
        int acc = round;
        for (int k = 0; k < 700; k = k + 1) {
            acc = (acc * 31 + k) % 65536;
        }
        summary.record(acc);
        // phase-2 working set: transient fact tables plus a report
        // retained for the final audit (only every other one is read)
        char[] facts = new char[600];
        facts[0] = (char) ('0' + acc % 10);
        reports.add(new char[500]);
        return acc + facts[0];
    }
    static int audit() {
        int sum = 0;
        for (int i = 0; i < reports.size(); i = i + 2) {
            char[] report = (char[]) reports.get(i);
            sum = sum + report.length;
        }
        return sum;
    }
}
"""

_PHASE1_TEMPLATE = """
class Parser {
    // private static side table filled during parsing, dead afterwards
    private static Vector sideTable;
    static IntermediateRep parse(int classes, int nodeWidth, Summary summary) {
        sideTable = new Vector(classes);
        IntermediateRep ir = new IntermediateRep();
        for (int c = 0; c < classes; c = c + 1) {
            IrNode node = new IrNode("class" + c, nodeWidth);
            ir.add(node);
            sideTable.add(node.label);
            summary.record(node.seal(c));
        }
        return ir;
    }%DROPSIDE%
}
"""

_DROPSIDE = """
    static void releaseSideTable() {
        sideTable = null;  // never read after parsing (liveness/usage)
    }"""

_MAIN_TEMPLATE = """
class Analyzer {
    public static void main(String[] args) {
        int classes = Integer.parseInt(args[0]);
        int rounds = Integer.parseInt(args[1]);
        Summary summary = new Summary(2600);
        // ---- phase 1: parse into the big intermediate representation
        IntermediateRep ir = Parser.parse(classes, 400, summary);
        System.println("parsed " + ir.size() + " classes");
        // ---- phase 2: mutability analysis over the compact summary
        %DROPLOCAL%int result = 0;
        for (int round = 0; round < rounds; round = round + 1) {
            result = result + MutabilityChecker.analyze(summary, round);
        }
        System.printInt(result + summary.checksum() + MutabilityChecker.audit());
    }
}
"""

ORIGINAL = (
    _COMMON
    + _PHASE1_TEMPLATE.replace("%DROPSIDE%", "")
    + _MAIN_TEMPLATE.replace("%DROPLOCAL%", "")
)
REVISED = (
    _COMMON
    + _PHASE1_TEMPLATE.replace("%DROPSIDE%", _DROPSIDE)
    + _MAIN_TEMPLATE.replace(
        "%DROPLOCAL%",
        "ir = null;  // phase-1 IR has no future use\n        Parser.releaseSideTable();\n        ",
    )
)

BENCHMARK = Benchmark(
    name="analyzer",
    description="mutability analyzer",
    main_class="Analyzer",
    original=ORIGINAL,
    revised=REVISED,
    primary_args=["35", "170"],
    alternate_args=["42", "150"],
    rewritings=[
        Rewriting("assigning null", "local variable + private static", "liveness"),
    ],
    interval_bytes=16 * 1024,
    max_heap=2 * 1024 * 1024,
)
