"""Byte-weighted allocation sampling (the weight-carrying record path).

The paper's profiler trailers *every* object.  That is fine for a
research harness but not for production traffic: the serve daemon
multiplies the record stream by N concurrent clients, and real
deployments want ~1e-3..1e-4 sampling rates.  Sampling by *allocation
count* is the wrong tool — a handful of huge allocations dominate the
drag integral, and a count sampler misses them — so we sample by
**bytes**, the same way ClickHouse's heap profiler and tcmalloc's
peak-heap sampler do.

The scheme is a countdown sampler over the allocation byte stream:

* Pick a target rate ``1/N`` ("one sample point per N bytes").  Draw a
  geometric gap ``G ~ Geometric(p=1/N)`` (support ``{1, 2, ...}``) and
  count allocated bytes down; the allocation that consumes the
  countdown is *sampled*, and a fresh gap is drawn.  By memorylessness
  this is exactly "each byte is a sample point independently with
  probability 1/N", so an allocation of size ``s`` is included with

      p(s) = 1 - (1 - 1/N) ** s

* Every sampled allocation carries the Horvitz-Thompson **weight**
  ``w = 1 / p(s)``.  Summing ``w * f(obj)`` over sampled objects is an
  unbiased estimator of ``sum f(obj)`` over all objects, for any
  per-object quantity ``f`` (count, bytes, drag, ...).  Large
  allocations are almost always sampled and get weight ~1; small ones
  are rarely sampled but get proportionally large weights.

* ``N <= 1`` means "sample everything": every allocation is included
  with weight exactly ``1.0`` and the RNG is never consulted, which is
  what makes ``--sample-bytes 1`` bit-identical to an unsampled run.

The sampler is deterministic given its seed (``random.Random``), which
is what lets CI pin sampled rankings.
"""

from __future__ import annotations

import math
import random

__all__ = ["ByteSampler", "WeightedTotal", "inclusion_probability"]


def inclusion_probability(size: int, sample_bytes: int) -> float:
    """P(an allocation of ``size`` bytes is sampled) at rate 1/``sample_bytes``.

    ``1 - (1 - 1/N)**s``, computed via ``log1p``/``expm1`` so tiny rates
    and huge allocations stay accurate.
    """
    if sample_bytes <= 1:
        return 1.0
    if size <= 0:
        return 0.0
    return -math.expm1(size * math.log1p(-1.0 / sample_bytes))


class ByteSampler:
    """Deterministic countdown sampler over the allocation byte stream.

    ``sample(size)`` returns the Horvitz-Thompson weight (``>= 1.0``)
    when the allocation is included and ``0.0`` when it is skipped.
    Exact onAlloc/onFree pairing is the *caller's* contract: the
    profiler marks inclusion by attaching a trailer, so a skipped
    allocation never has a trailer and its later uses/frees are
    structurally ignored.
    """

    __slots__ = ("sample_bytes", "seed", "sampled", "skipped", "_rng", "_countdown", "_log_keep")

    def __init__(self, sample_bytes: int, seed: int = 0) -> None:
        if sample_bytes < 1:
            raise ValueError(f"sample_bytes must be >= 1, got {sample_bytes}")
        self.sample_bytes = int(sample_bytes)
        self.seed = seed
        self.sampled = 0
        self.skipped = 0
        self._rng = random.Random(seed)
        if self.sample_bytes > 1:
            # log(1 - 1/N): reused for every geometric gap draw.
            self._log_keep = math.log1p(-1.0 / self.sample_bytes)
            self._countdown = self._gap()
        else:
            self._log_keep = 0.0
            self._countdown = 0

    def _gap(self) -> int:
        """Draw the byte distance to the next sample point, ``>= 1``."""
        u = self._rng.random()  # in [0, 1)
        return int(math.log1p(-u) / self._log_keep) + 1

    def inclusion_probability(self, size: int) -> float:
        return inclusion_probability(size, self.sample_bytes)

    def sample(self, size: int) -> float:
        """Advance the byte clock by one allocation of ``size`` bytes.

        Returns the record's weight if the allocation is sampled
        (``1.0`` exactly at full rate), else ``0.0``.
        """
        if self.sample_bytes <= 1:
            self.sampled += 1
            return 1.0
        if size > 0:
            self._countdown -= size
            if self._countdown <= 0:
                while self._countdown <= 0:
                    self._countdown += self._gap()
                self.sampled += 1
                return 1.0 / self.inclusion_probability(size)
        self.skipped += 1
        return 0.0

    def __repr__(self) -> str:
        return (
            f"<ByteSampler 1/{self.sample_bytes} seed={self.seed}"
            f" sampled={self.sampled} skipped={self.skipped}>"
        )


class WeightedTotal:
    """Exact accumulator for Horvitz-Thompson sums.

    The streaming/batch/sharded analyzers must agree *bit for bit* on
    weighted aggregates, but float addition is not associative — the
    same records folded in a different order (or via a shard merge)
    can drift in the last ulp and break payload equality.  So weighted
    contributions are kept as a Shewchuk expansion (the ``math.fsum``
    representation: a list of non-overlapping partials whose exact sum
    is the true total), which makes :attr:`value` the correctly rounded
    true sum regardless of accumulation or merge order.

    Integer contributions (full-rate records: weight exactly 1.0) take
    a separate int path, so an unsampled group's total stays the exact
    observed ``int`` — type and value — and serializes as ``1000``, not
    ``1000.0``.
    """

    __slots__ = ("ints", "partials")

    def __init__(self) -> None:
        self.ints = 0
        self.partials = []  # type: list

    def add(self, value) -> None:
        if type(value) is int:
            self.ints += value
            return
        # Shewchuk grow-expansion: x + partials, exactly.
        x = float(value)
        partials = self.partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "WeightedTotal") -> None:
        self.ints += other.ints
        for p in other.partials:
            self.add(p)

    @property
    def value(self):
        """The exact int when no weighted contribution arrived, else the
        correctly rounded float total."""
        if not self.partials:
            return self.ints
        return math.fsum(self.partials + [self.ints])

    def __repr__(self) -> str:
        return f"<WeightedTotal {self.value}>"
