"""The paper's contribution: the two-phase drag-profiling tool.

Phase 1 (:mod:`repro.core.profiler`) runs inside the VM: it attaches a
trailer to every object, timestamps creation and every use on the
byte-allocation clock, forces a deep GC every 100 KB of allocation, and
logs a record per object at reclamation (or program end).

Phase 2 (:mod:`repro.core.analyzer` and friends) is offline: it
partitions dragged objects by allocation site, computes drag space-time
products, classifies lifetime patterns, and produces the sorted reports
a programmer (or the automatic optimizer in :mod:`repro.transform`)
uses to find rewriting opportunities.
"""

from repro.core.trailer import ObjectRecord, Trailer
from repro.core.profiler import HeapProfiler, ProfileResult, profile_program, profile_source
from repro.core.analyzer import DragAnalysis, Histogram, SiteGroup
from repro.core.patterns import LifetimePattern, classify_group
from repro.core.integrals import HeapCurve, curve_from_records, integral_mb2, savings
from repro.core.anchor import anchor_site
from repro.core.report import drag_report
from repro.core.logfile import LogWriter, iter_log, read_log, write_log

__all__ = [
    "ObjectRecord",
    "Trailer",
    "HeapProfiler",
    "ProfileResult",
    "profile_program",
    "profile_source",
    "DragAnalysis",
    "Histogram",
    "SiteGroup",
    "LifetimePattern",
    "classify_group",
    "HeapCurve",
    "curve_from_records",
    "integral_mb2",
    "savings",
    "anchor_site",
    "drag_report",
    "read_log",
    "iter_log",
    "write_log",
    "LogWriter",
]
