"""Lifetime patterns at an (anchor) allocation site, per §3.4.

The paper identifies four patterns of behaviour and maps each to a
transformation:

1. *All* drag at the site is due to never-used objects (counting
   objects only touched inside their own constructor as never-used)
   → dead-code removal.
2. *Most* dragged objects at the site are never-used → lazy allocation.
3. Most dragged objects at the site have a *large drag* → assigning
   null to the dead reference.
4. The *variance* of the drag is high → probably no transformation
   helps (e.g. db's query-driven repository).
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Optional

from repro.core.analyzer import SiteGroup


class LifetimePattern(Enum):
    ALL_NEVER_USED = 1
    MOSTLY_NEVER_USED = 2
    LARGE_DRAG = 3
    HIGH_VARIANCE = 4
    UNCLASSIFIED = 5


SUGGESTED_TRANSFORMATION = {
    LifetimePattern.ALL_NEVER_USED: "dead-code-removal",
    LifetimePattern.MOSTLY_NEVER_USED: "lazy-allocation",
    LifetimePattern.LARGE_DRAG: "assign-null",
    LifetimePattern.HIGH_VARIANCE: None,
    LifetimePattern.UNCLASSIFIED: None,
}


def constructor_only_use(record, ctor_use_window: int = 2048) -> bool:
    """True when the object is never used, or its only recorded uses
    happened inside a constructor right after creation (§3.4: "the only
    use of an object may be in its constructor and its in-use time is
    very short; we also consider these as objects that were never
    used").

    Because time is bytes allocated, an in-use duration of 0 alone is
    ambiguous (uses with no intervening allocation take zero time); the
    deciding signal is the nested last-use site being a ``<init>`` frame.
    """
    if record.never_used:
        return True
    if record.in_use_time > ctor_use_window:
        return False
    frame = record.last_use_frame
    return frame is not None and ".<init>:" in frame


def classify_group(
    group: SiteGroup,
    interval_bytes: int = 100 * 1024,
    ctor_use_window: int = 2048,
    all_threshold: float = 0.95,
    most_threshold: float = 0.50,
    large_drag_fraction: float = 0.50,
    variance_cv: float = 1.25,
) -> LifetimePattern:
    """Classify a site group into one of the four §3.4 patterns.

    ``ctor_use_window`` bounds how much allocation a constructor may do
    while its uses still count as construction-time uses.
    ``interval_bytes`` scales the large-drag test: an object whose drag
    time spans at least half a deep-GC interval was observably dragging.
    """
    if group.count == 0 or group.total_drag == 0:
        return LifetimePattern.UNCLASSIFIED

    never_drag = sum(
        r.drag for r in group.records if constructor_only_use(r, ctor_use_window)
    )
    never_fraction = never_drag / group.total_drag
    if never_fraction >= all_threshold:
        return LifetimePattern.ALL_NEVER_USED
    if never_fraction >= most_threshold:
        return LifetimePattern.MOSTLY_NEVER_USED

    drags = [r.drag for r in group.records]
    mean = sum(drags) / len(drags)
    if mean > 0 and len(drags) > 1:
        variance = sum((d - mean) ** 2 for d in drags) / len(drags)
        cv = math.sqrt(variance) / mean
        if cv > variance_cv:
            return LifetimePattern.HIGH_VARIANCE

    large = sum(1 for r in group.records if r.drag_time >= interval_bytes // 2)
    if large / group.count >= large_drag_fraction:
        return LifetimePattern.LARGE_DRAG
    return LifetimePattern.UNCLASSIFIED


def suggest_transformation(pattern: LifetimePattern) -> Optional[str]:
    """The §3.4 pattern → transformation mapping."""
    return SUGGESTED_TRANSFORMATION[pattern]
