"""Space-time integrals and heap curves (Figure 2, Tables 2-3).

Following Agesen et al. (and §4.1), we measure the space-time products
of the reachable and in-use object sizes — the areas under the
reachable and in-use curves. Time is bytes allocated, space is bytes,
so integrals are bytes² (reported as MByte², dividing by 10¹²).

All quantities here are computed *exactly* from the object log (each
object contributes ``size × interval``), not from sampled curves, so
results are deterministic and independent of the sampling interval.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.trailer import ObjectRecord

MB = 1024.0 * 1024.0


class HeapCurve:
    """A step function of heap bytes over allocation time."""

    __slots__ = ("times", "values")

    def __init__(self, times: List[int], values: List[int]) -> None:
        self.times = times
        self.values = values

    def value_at(self, t: int) -> int:
        """Heap bytes at time ``t`` (step function, right-continuous)."""
        import bisect

        i = bisect.bisect_right(self.times, t) - 1
        if i < 0:
            return 0
        return self.values[i]

    def sample(self, at_times: Sequence[int]) -> List[int]:
        return [self.value_at(t) for t in at_times]

    def integral(self) -> int:
        """Exact area under the step function up to the last event."""
        total = 0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        return total


def _interval(record: ObjectRecord, kind: str) -> Optional[Tuple[int, int]]:
    if kind == "reachable":
        return (record.creation_time, record.collection_time)
    if kind == "in_use":
        if record.never_used:
            return None
        return (record.creation_time, record.last_use_time)
    if kind == "drag":
        start = record.creation_time if record.never_used else record.last_use_time
        return (start, record.collection_time)
    # Röjemo/Runciman lag-drag-void-use decomposition [21]:
    if kind == "lag":
        if record.never_used or record.first_use_time == 0:
            return None
        return (record.creation_time, record.first_use_time)
    if kind == "use":
        if record.never_used or record.first_use_time == 0:
            return None
        return (record.first_use_time, record.last_use_time)
    if kind == "void":
        if not record.never_used:
            return None
        return (record.creation_time, record.collection_time)
    raise ValueError(f"unknown curve kind {kind!r}")


def curve_from_events(events: Dict[int, int]) -> HeapCurve:
    """Build a :class:`HeapCurve` from a ``{time: ±bytes}`` edge-event
    map (allocation adds ``+size`` at the interval start, ``-size`` at
    the end). Integer prefix sums over the sorted times, so the result
    is exact and independent of the order the events were accumulated —
    the property the streaming timeline leans on to reproduce the batch
    curves bit for bit."""
    times = sorted(events)
    values = []
    level = 0
    for t in times:
        level += events[t]
        values.append(level)
    return HeapCurve(times, values)


def curve_from_records(records: Iterable[ObjectRecord], kind: str = "reachable") -> HeapCurve:
    """Build the reachable / in-use / drag byte curve from log records."""
    events: Dict[int, int] = {}
    for record in records:
        span = _interval(record, kind)
        if span is None:
            continue
        start, end = span
        if end <= start:
            continue
        events[start] = events.get(start, 0) + record.size
        events[end] = events.get(end, 0) - record.size
    return curve_from_events(events)


def integral_bytes2(records: Iterable[ObjectRecord], kind: str = "reachable") -> int:
    """Exact space-time integral in bytes²."""
    total = 0
    for record in records:
        span = _interval(record, kind)
        if span is None:
            continue
        start, end = span
        if end > start:
            total += record.size * (end - start)
    return total


def integral_mb2(records: Iterable[ObjectRecord], kind: str = "reachable") -> float:
    """Space-time integral in MByte² (the unit of Tables 2 and 3)."""
    return integral_bytes2(records, kind) / (MB * MB)


class SavingsRow:
    """One row of Table 2/3: integrals plus the paper's two ratios."""

    __slots__ = (
        "reduced_reachable",
        "reduced_in_use",
        "original_reachable",
        "original_in_use",
        "drag_saving_pct",
        "space_saving_pct",
    )

    def __init__(
        self,
        reduced_reachable: float,
        reduced_in_use: float,
        original_reachable: float,
        original_in_use: float,
    ) -> None:
        self.reduced_reachable = reduced_reachable
        self.reduced_in_use = reduced_in_use
        self.original_reachable = original_reachable
        self.original_in_use = original_in_use
        original_drag = original_reachable - original_in_use
        reduction = original_reachable - reduced_reachable
        # §4.1: drag saving can exceed 100% (mc) when allocations are
        # eliminated outright, making the reduced reachable integral
        # smaller than the original in-use integral.
        self.drag_saving_pct = 100.0 * reduction / original_drag if original_drag > 0 else 0.0
        self.space_saving_pct = (
            100.0 * reduction / original_reachable if original_reachable > 0 else 0.0
        )

    def as_dict(self) -> dict:
        return {
            "reduced_reachable_mb2": self.reduced_reachable,
            "reduced_in_use_mb2": self.reduced_in_use,
            "original_reachable_mb2": self.original_reachable,
            "original_in_use_mb2": self.original_in_use,
            "drag_saving_pct": self.drag_saving_pct,
            "space_saving_pct": self.space_saving_pct,
        }


def savings(
    original_records: Iterable[ObjectRecord],
    revised_records: Iterable[ObjectRecord],
) -> SavingsRow:
    """Compute a Table-2 row from the original and revised profiles."""
    original_records = list(original_records)
    revised_records = list(revised_records)
    return SavingsRow(
        reduced_reachable=integral_mb2(revised_records, "reachable"),
        reduced_in_use=integral_mb2(revised_records, "in_use"),
        original_reachable=integral_mb2(original_records, "reachable"),
        original_in_use=integral_mb2(original_records, "in_use"),
    )
