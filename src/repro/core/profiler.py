"""Phase 1: the on-line heap profiler (the instrumented JVM of §2.1).

The profiler hooks the interpreter/heap events:

* ``on_alloc`` — stamps a trailer with creation time (the byte clock),
  object length, and the *nested allocation site* (the call chain
  leading to the allocation, to a configurable depth — §2.1.1: "The
  level of nesting can be set in order to tradeoff more accurate
  information and speed").
* ``on_use`` — stamps last-use time and nested last-use site.
* ``take_sample`` — runs a *deep GC* every ``interval_bytes`` of
  allocation (default 100 KB) and records a heap sample.
* ``on_free`` / ``on_program_end`` — writes the object's log record;
  at program end a final deep GC runs and survivors are logged with
  ``collection_time`` equal to the end time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.sampler import ByteSampler
from repro.core.trailer import ObjectRecord, Trailer
from repro.runtime.objects import HeapObject


class HeapSample:
    """Heap state captured right after one deep GC."""

    __slots__ = ("time", "reachable_bytes", "object_count")

    def __init__(self, time: int, reachable_bytes: int, object_count: int) -> None:
        self.time = time
        self.reachable_bytes = reachable_bytes
        self.object_count = object_count

    def __repr__(self) -> str:
        return f"<sample t={self.time} reachable={self.reachable_bytes}B>"


class HeapProfiler:
    """The drag profiler. Attach to an Interpreter via its constructor:
    ``Interpreter(program, profiler=HeapProfiler())``."""

    def __init__(
        self,
        interval_bytes: int = 100 * 1024,
        nesting_depth: int = 4,
        last_use_depth: int = 1,
        include_excluded: bool = False,
        sink=None,
        buffered: Optional[bool] = None,
        sample_bytes: Optional[int] = None,
        seed: int = 0,
        snapshotter=None,
    ) -> None:
        if interval_bytes <= 0:
            raise ValueError("interval_bytes must be positive")
        self.interval_bytes = interval_bytes
        self.nesting_depth = nesting_depth
        self.last_use_depth = last_use_depth
        self.include_excluded = include_excluded
        self.next_sample_at = interval_bytes
        # ``sink`` receives each record/sample the moment it is emitted
        # (see repro.stream.sinks). With a sink attached the profiler
        # defaults to *not* buffering, keeping memory at O(live objects
        # + sites) instead of O(all objects ever allocated); pass
        # ``buffered=True`` to get both behaviours at once.
        self.sink = sink
        self.buffered = buffered if buffered is not None else (sink is None)
        # Optional repro.snapshot.SnapshotRecorder: captures a heap
        # snapshot right after each deep GC (the only moments the heap
        # is exactly its reachable set). Capture only reads the heap —
        # profiles are bit-identical with it on or off.
        self.snapshotter = snapshotter
        self.records: List[ObjectRecord] = []
        self.samples: List[HeapSample] = []
        self.record_count = 0
        self.sample_count = 0
        self.finalizer_errors = 0
        self.interp = None
        self.program = None
        self._ended = False
        # Byte-weighted sampling (see repro.core.sampler): with
        # ``sample_bytes > 1`` the profiler binds the sampled on_alloc
        # variant as an *instance* attribute, so ProfilerHooks and the
        # heap pick it up with zero change — and the full-rate path
        # keeps its original method, untouched.  ``sample_bytes <= 1``
        # deliberately means "no sampler at all": --sample-bytes 1 runs
        # the identical code path as an unsampled profile.
        self.sample_bytes = sample_bytes
        self.seed = seed
        self.sampler: Optional[ByteSampler] = None
        if sample_bytes is not None and sample_bytes > 1:
            self.sampler = ByteSampler(sample_bytes, seed=seed)
            self.on_alloc = self._on_alloc_sampled

    # -- wiring ----------------------------------------------------------

    def attach(self, interp) -> None:
        self.interp = interp
        self.program = interp.program

    # -- call-chain capture ------------------------------------------------
    #
    # Hot path discipline: use events fire on every getfield; capturing
    # a frame is therefore a raw (method, pc) tuple, and the
    # "Class.method:line" label is only formatted when the object's
    # record is logged (reclamation or program end).

    def _nested_frames(self, depth: int) -> Tuple:
        frames = self.interp.frames
        if not frames or depth <= 0:
            return ()
        start = max(0, len(frames) - depth)
        # innermost frame first, matching "the call chain leading to
        # the allocation" read bottom-up.
        return tuple(
            (frames[i].method, frames[i].pc - 1)
            for i in range(len(frames) - 1, start - 1, -1)
        )

    @staticmethod
    def _format_frame(frame_ref) -> str:
        method, pc = frame_ref
        code = method.code
        if 0 <= pc < len(code):
            line = code[pc].line
        else:
            line = method.line
        return f"{method.qualified_name}:{line}"

    # -- event hooks ----------------------------------------------------------

    def on_alloc(self, obj: HeapObject) -> None:
        heap = self.interp.heap
        obj.trailer = Trailer(
            creation_time=heap.clock,
            size=obj.size,
            alloc_site=self.interp.alloc_site,
            nested_alloc=self._nested_frames(self.nesting_depth),
        )

    def _on_alloc_sampled(self, obj: HeapObject) -> None:
        """Sampling variant of ``on_alloc`` (bound over the method when
        ``sample_bytes > 1``).  A skipped allocation gets *no trailer*,
        so every later ``on_use``/``on_free`` for it falls through the
        existing ``trailer is None`` checks — that structural pairing is
        the whole onAlloc/onFree matching guarantee."""
        weight = self.sampler.sample(obj.size)
        if not weight:
            return
        heap = self.interp.heap
        obj.trailer = Trailer(
            creation_time=heap.clock,
            size=obj.size,
            alloc_site=self.interp.alloc_site,
            nested_alloc=self._nested_frames(self.nesting_depth),
            weight=weight,
        )

    def on_use(self, obj: HeapObject) -> None:
        trailer = obj.trailer
        if trailer is None:
            return
        interp = self.interp
        clock = interp.heap.clock
        if trailer.first_use_time == 0:
            trailer.first_use_time = clock
        trailer.last_use_time = clock
        frames = interp.frames
        if frames:
            frame = frames[-1]
            trailer.last_use_frame = (frame.method, frame.pc - 1)
            if self.last_use_depth > 1:
                trailer.last_use_chain = self._nested_frames(self.last_use_depth)

    def on_free(self, obj: HeapObject) -> None:
        self._log(obj, collection_time=self.interp.heap.clock, survived=False)

    # -- sampling ---------------------------------------------------------------

    def take_sample(self, interp) -> None:
        """Deep GC + sample. Called by the interpreter at the first
        instruction boundary after each 100 KB (interval) of allocation."""
        heap = interp.heap
        while self.next_sample_at <= heap.clock:
            self.next_sample_at += self.interval_bytes
        interp.deep_gc()
        if self.snapshotter is not None:
            self.snapshotter.capture(interp, reason="interval")
        self._emit_sample(
            HeapSample(heap.clock, heap.live_bytes, heap.object_count())
        )

    # -- finish --------------------------------------------------------------------

    def on_program_end(self, interp) -> None:
        """§2.1.1: 'When the program terminates, we perform a last deep
        GC and then we log information for all objects that still remain
        in the heap.'"""
        if self._ended:
            return
        self._ended = True
        interp.deep_gc()
        if self.snapshotter is not None:
            self.snapshotter.capture(interp, reason="end")
        end_time = interp.heap.clock
        self._emit_sample(
            HeapSample(end_time, interp.heap.live_bytes, interp.heap.object_count())
        )
        for obj in list(interp.heap.iter_objects()):
            self._log(obj, collection_time=end_time, survived=True)
        self.finalizer_errors = interp.finalizer_errors
        if self.sink is not None:
            self.sink.on_end(end_time, finalizer_errors=self.finalizer_errors)

    # -- record emission ---------------------------------------------------------

    def _emit_record(self, record: ObjectRecord) -> None:
        self.record_count += 1
        if self.buffered:
            self.records.append(record)
        if self.sink is not None:
            self.sink.on_record(record)

    def _emit_sample(self, sample: HeapSample) -> None:
        self.sample_count += 1
        if self.buffered:
            self.samples.append(sample)
        if self.sink is not None:
            self.sink.on_sample(sample)

    def _log(self, obj: HeapObject, collection_time: int, survived: bool) -> None:
        if obj.excluded and not self.include_excluded:
            return
        trailer = obj.trailer
        if trailer is None:
            return
        site = trailer.alloc_site
        if site is not None:
            info = self.program.site(site)
            label, kind, is_lib = info.label, info.kind, info.is_library
        else:
            label, kind, is_lib = "<unknown>", "new", True
        self._emit_record(
            ObjectRecord(
                handle=obj.handle,
                type_name=obj.type_name(),
                size=obj.size,
                creation_time=trailer.creation_time,
                first_use_time=trailer.first_use_time,
                last_use_time=trailer.last_use_time,
                collection_time=collection_time,
                alloc_site=site,
                site_label=label,
                site_kind=kind,
                site_is_library=is_lib,
                nested_alloc=tuple(
                    self._format_frame(f) for f in trailer.nested_alloc
                ),
                last_use_frame=(
                    self._format_frame(trailer.last_use_frame)
                    if trailer.last_use_frame is not None
                    else None
                ),
                last_use_chain=(
                    tuple(self._format_frame(f) for f in trailer.last_use_chain)
                    if trailer.last_use_chain is not None
                    else None
                ),
                excluded=obj.excluded,
                survived_to_end=survived,
                weight=trailer.weight,
            )
        )


class ProfileResult:
    """Everything produced by one profiled run."""

    def __init__(self, program, run_result, profiler: HeapProfiler) -> None:
        self.program = program
        self.run_result = run_result
        self.profiler = profiler

    @property
    def records(self) -> List[ObjectRecord]:
        return self.profiler.records

    @property
    def samples(self) -> List[HeapSample]:
        return self.profiler.samples

    @property
    def end_time(self) -> int:
        return self.run_result.clock

    @property
    def finalizer_errors(self) -> int:
        return self.run_result.finalizer_errors


def profile_program(
    program,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    nesting_depth: int = 4,
    last_use_depth: int = 1,
    max_heap: Optional[int] = None,
    sink=None,
    buffered: Optional[bool] = None,
    engine: Optional[str] = None,
    telemetry=None,
    sample_bytes: Optional[int] = None,
    seed: int = 0,
    snapshotter=None,
) -> ProfileResult:
    """Run a compiled program under the profiler (phase 1).

    With ``sink`` set, records and samples stream into it as they are
    emitted (see :mod:`repro.stream`) and are not buffered unless
    ``buffered=True`` is also passed. ``engine`` picks the dispatch
    strategy (see :mod:`repro.runtime.engine`); both engines produce
    bit-identical profiles. ``telemetry`` (a :class:`repro.obs.Telemetry`)
    wraps the run in a span and flushes profiler counters; profiles are
    bit-identical with it on or off. ``sample_bytes``/``seed`` enable
    deterministic byte-weighted sampling (see :mod:`repro.core.sampler`);
    ``sample_bytes=1`` is bit-identical to no sampling at all.
    """
    from repro.runtime.engine import create_vm

    profiler = HeapProfiler(
        interval_bytes=interval_bytes,
        nesting_depth=nesting_depth,
        last_use_depth=last_use_depth,
        sink=sink,
        buffered=buffered,
        sample_bytes=sample_bytes,
        seed=seed,
        snapshotter=snapshotter,
    )
    interp = create_vm(
        program, engine=engine, profiler=profiler, max_heap=max_heap,
        telemetry=telemetry,
    )
    if telemetry is None:
        run_result = interp.run(args or [])
    else:
        with telemetry.span(
            "profile.run", category="profiler", interval_bytes=interval_bytes
        ):
            run_result = interp.run(args or [])
        telemetry.record_profiler(profiler)
    return ProfileResult(program, run_result, profiler)


def profile_source(
    source: str,
    main_class: str,
    args: Optional[List[str]] = None,
    interval_bytes: int = 100 * 1024,
    nesting_depth: int = 4,
    last_use_depth: int = 1,
    library_overrides=None,
    sink=None,
    buffered: Optional[bool] = None,
    engine: Optional[str] = None,
    telemetry=None,
    sample_bytes: Optional[int] = None,
    seed: int = 0,
    snapshotter=None,
) -> ProfileResult:
    """Convenience: link, compile, and profile mini-Java source."""
    from repro.mjava.compiler import compile_program
    from repro.runtime.library import link

    program = compile_program(
        link(source, library_overrides=library_overrides), main_class=main_class
    )
    return profile_program(
        program,
        args,
        interval_bytes=interval_bytes,
        nesting_depth=nesting_depth,
        last_use_depth=last_use_depth,
        sink=sink,
        buffered=buffered,
        engine=engine,
        telemetry=telemetry,
        sample_bytes=sample_bytes,
        seed=seed,
        snapshotter=snapshotter,
    )
