"""Object trailers and log records.

§2.1.1: "We attach a trailer to every object to keep track of our
profiling information. We do not count the space taken for this trailer
in our data. ... An object's trailer fields include its creation time,
its last use time, its length in bytes, its nested allocation site and
its nested last-use site."

Times are bytes allocated since program start. A last-use time of 0
means the object was never used (§3.4: "the last use time is zero").
"""

from __future__ import annotations

from typing import Optional, Tuple


class Trailer:
    """Per-object profiling metadata (never counted in object size)."""

    __slots__ = (
        "creation_time",
        "first_use_time",
        "last_use_time",
        "size",
        "alloc_site",
        "nested_alloc",
        "last_use_frame",
        "last_use_chain",
        "weight",
    )

    def __init__(
        self,
        creation_time: int,
        size: int,
        alloc_site: Optional[int],
        nested_alloc: Tuple[str, ...],
        weight: float = 1.0,
    ) -> None:
        self.creation_time = creation_time
        # First-use time extends the paper's measurements to the full
        # Röjemo/Runciman lag-drag-void-use decomposition [21]: lag is
        # creation -> first use, void objects are never used at all.
        self.first_use_time = 0  # 0 == never used
        self.last_use_time = 0  # 0 == never used
        self.size = size
        self.alloc_site = alloc_site
        self.nested_alloc = nested_alloc
        self.last_use_frame: Optional[str] = None
        self.last_use_chain: Optional[Tuple[str, ...]] = None
        # Statistical weight under byte sampling (1.0 == fully
        # observed).  Trailer *presence* is the sampling marker: an
        # unsampled allocation never gets a trailer at all, which is
        # what guarantees exact onAlloc/onFree pairing.
        self.weight = weight


class ObjectRecord:
    """One line of the phase-1 log: everything known about one object
    at the time it was reclaimed (or the program ended)."""

    __slots__ = (
        "handle",
        "type_name",
        "size",
        "creation_time",
        "first_use_time",
        "last_use_time",
        "collection_time",
        "alloc_site",
        "site_label",
        "site_kind",
        "site_is_library",
        "nested_alloc",
        "last_use_frame",
        "last_use_chain",
        "excluded",
        "survived_to_end",
        "weight",
    )

    def __init__(
        self,
        handle: int,
        type_name: str,
        size: int,
        creation_time: int,
        last_use_time: int,
        collection_time: int,
        alloc_site: Optional[int],
        site_label: str,
        site_kind: str,
        site_is_library: bool,
        nested_alloc: Tuple[str, ...],
        last_use_frame: Optional[str],
        last_use_chain: Optional[Tuple[str, ...]],
        excluded: bool,
        survived_to_end: bool,
        first_use_time: int = 0,
        weight: float = 1.0,
    ) -> None:
        self.handle = handle
        self.type_name = type_name
        self.size = size
        self.creation_time = creation_time
        self.first_use_time = first_use_time
        self.last_use_time = last_use_time
        self.collection_time = collection_time
        self.alloc_site = alloc_site
        self.site_label = site_label
        self.site_kind = site_kind
        self.site_is_library = site_is_library
        self.nested_alloc = nested_alloc
        self.last_use_frame = last_use_frame
        self.last_use_chain = last_use_chain
        self.excluded = excluded
        self.survived_to_end = survived_to_end
        self.weight = weight

    # -- derived quantities (paper definitions) ---------------------------

    @property
    def never_used(self) -> bool:
        """§3.4: an object whose recorded last-use time is zero.
        (Röjemo/Runciman call these *void* objects.)"""
        return self.last_use_time == 0

    @property
    def is_void(self) -> bool:
        """Röjemo/Runciman terminology for never-used objects [21]."""
        return self.never_used

    @property
    def lag_time(self) -> int:
        """Röjemo/Runciman *lag*: creation until first use (0 when the
        object is void — its whole lifetime is drag instead)."""
        if self.never_used or self.first_use_time == 0:
            return 0
        return self.first_use_time - self.creation_time

    @property
    def use_time(self) -> int:
        """Röjemo/Runciman *use* phase: first use to last use."""
        if self.never_used or self.first_use_time == 0:
            return 0
        return self.last_use_time - self.first_use_time

    @property
    def in_use_time(self) -> int:
        """Length of the in-use interval [creation, last use]."""
        if self.never_used:
            return 0
        return self.last_use_time - self.creation_time

    @property
    def drag_time(self) -> int:
        """Time reachable but not in use: collection − last use (or
        collection − creation for never-used objects)."""
        start = self.creation_time if self.never_used else self.last_use_time
        return max(0, self.collection_time - start)

    @property
    def drag(self) -> int:
        """The drag space-time product: size × drag time (bytes²)."""
        return self.size * self.drag_time

    @property
    def lifetime(self) -> int:
        return max(0, self.collection_time - self.creation_time)

    # -- weight-corrected (Horvitz-Thompson) estimates ---------------------
    #
    # Each returns the *exact* int when the record is fully observed
    # (weight == 1.0), so unsampled aggregates — and their JSON
    # serializations — stay bit-identical to the pre-weight pipeline.

    @property
    def weighted_count(self) -> float:
        """Estimated number of objects this record stands for."""
        return 1 if self.weight == 1.0 else self.weight

    @property
    def weighted_size(self) -> float:
        """Estimated bytes this record stands for."""
        return self.size if self.weight == 1.0 else self.weight * self.size

    @property
    def weighted_drag(self) -> float:
        """Estimated drag space-time product this record stands for."""
        return self.drag if self.weight == 1.0 else self.weight * self.drag

    @property
    def weighted_in_use(self) -> float:
        """Estimated in-use space-time product this record stands for."""
        in_use = self.size * self.in_use_time
        return in_use if self.weight == 1.0 else self.weight * in_use

    def with_weight(self, weight: float) -> "ObjectRecord":
        """Copy of this record carrying ``weight`` (used by replay-time
        and serve-time resampling, which compose multiplicatively)."""
        return ObjectRecord(
            handle=self.handle,
            type_name=self.type_name,
            size=self.size,
            creation_time=self.creation_time,
            first_use_time=self.first_use_time,
            last_use_time=self.last_use_time,
            collection_time=self.collection_time,
            alloc_site=self.alloc_site,
            site_label=self.site_label,
            site_kind=self.site_kind,
            site_is_library=self.site_is_library,
            nested_alloc=self.nested_alloc,
            last_use_frame=self.last_use_frame,
            last_use_chain=self.last_use_chain,
            excluded=self.excluded,
            survived_to_end=self.survived_to_end,
            weight=weight,
        )

    def to_dict(self) -> dict:
        data = {
            "handle": self.handle,
            "type": self.type_name,
            "size": self.size,
            "created": self.creation_time,
            "first_use": self.first_use_time,
            "last_use": self.last_use_time,
            "collected": self.collection_time,
            "site": self.alloc_site,
            "site_label": self.site_label,
            "site_kind": self.site_kind,
            "site_lib": self.site_is_library,
            "nested": list(self.nested_alloc),
            "use_frame": self.last_use_frame,
            "use_chain": list(self.last_use_chain) if self.last_use_chain else None,
            "excluded": self.excluded,
            "survived": self.survived_to_end,
        }
        if self.weight != 1.0:
            # Emitted only when sampled, so full-rate v1 logs stay
            # byte-identical to logs written before weights existed.
            data["weight"] = self.weight
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ObjectRecord":
        return cls(
            handle=data["handle"],
            type_name=data["type"],
            size=data["size"],
            creation_time=data["created"],
            first_use_time=data.get("first_use", 0),
            last_use_time=data["last_use"],
            collection_time=data["collected"],
            alloc_site=data["site"],
            site_label=data["site_label"],
            site_kind=data["site_kind"],
            site_is_library=data["site_lib"],
            nested_alloc=tuple(data["nested"]),
            last_use_frame=data["use_frame"],
            last_use_chain=tuple(data["use_chain"]) if data["use_chain"] else None,
            excluded=data["excluded"],
            survived_to_end=data["survived"],
            weight=data.get("weight", 1.0),
        )

    def __repr__(self) -> str:
        return (
            f"<record {self.type_name}@{self.handle} size={self.size} "
            f"[{self.creation_time},{self.last_use_time},{self.collection_time}]>"
        )
