"""Reading and writing phase-1 log files.

The instrumented VM writes one JSON record per reclaimed object; the
off-line analyzer reads them back. A header line carries the format
version and run metadata so logs are self-describing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.errors import ProfileError
from repro.core.trailer import ObjectRecord

FORMAT_NAME = "repro-drag-log"
FORMAT_VERSION = 1


def write_log(
    path: Union[str, Path],
    records: Iterable[ObjectRecord],
    end_time: Optional[int] = None,
    metadata: Optional[dict] = None,
) -> int:
    """Write records as JSONL with a header; returns the record count."""
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "end_time": end_time,
    }
    if metadata:
        header["metadata"] = metadata
    count = 0
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(header) + "\n")
        for record in records:
            f.write(json.dumps(record.to_dict()) + "\n")
            count += 1
    return count


class LoadedLog:
    """A parsed log: records plus header metadata."""

    __slots__ = ("records", "end_time", "metadata")

    def __init__(self, records: List[ObjectRecord], end_time: Optional[int], metadata: dict) -> None:
        self.records = records
        self.end_time = end_time
        self.metadata = metadata


def read_log(path: Union[str, Path]) -> LoadedLog:
    """Read a log file written by :func:`write_log`."""
    records: List[ObjectRecord] = []
    with open(path, "r", encoding="utf-8") as f:
        header_line = f.readline()
        if not header_line:
            raise ProfileError(f"{path}: empty log file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise ProfileError(f"{path}: bad log header: {exc}") from exc
        if header.get("format") != FORMAT_NAME:
            raise ProfileError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise ProfileError(f"{path}: unsupported version {header.get('version')}")
        for line_no, line in enumerate(f, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(ObjectRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ProfileError(f"{path}:{line_no}: bad record: {exc}") from exc
    return LoadedLog(records, header.get("end_time"), header.get("metadata") or {})
