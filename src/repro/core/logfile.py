"""Reading and writing phase-1 log files.

The instrumented VM writes one record per reclaimed object; the
off-line analyzer reads them back. Two formats exist:

* **v1** — JSONL: a JSON header line carrying the format version and
  run metadata, then one JSON object per record. Human-greppable.
* **v2** — the compact binary format of :mod:`repro.stream.codec`
  (length-prefixed frames with a string table), written by the
  streaming pipeline. Several times smaller and readable incrementally.

:func:`read_log` and :func:`iter_log` sniff the first bytes and
dispatch, so callers never care which format a file is in.

``strict=False`` tolerates a truncated final record — the normal state
of a log whose profiled run crashed or is still being written — by
stopping at the damage instead of raising :class:`ProfileError`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.errors import ProfileError
from repro.core.trailer import ObjectRecord

FORMAT_NAME = "repro-drag-log"
FORMAT_VERSION = 1

# The v1 header line is padded to this width so a streaming writer can
# seek back and fill in ``end_time`` at close without shifting the
# record lines that follow it.
_HEADER_PAD = 192


def _header_dict(
    end_time: Optional[int],
    metadata: Optional[dict],
    finalizer_errors: Optional[int] = None,
) -> dict:
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "end_time": end_time,
    }
    if finalizer_errors is not None:
        header["finalizer_errors"] = finalizer_errors
    if metadata:
        header["metadata"] = metadata
    return header


class LogWriter:
    """Streaming v1 writer: records go to disk as they are emitted.

    The header is written immediately (padded), so a reader — or
    ``repro watch`` — can consume the file while the run is still in
    flight; :meth:`close` seeks back and patches ``end_time`` in.
    """

    def __init__(self, path: Union[str, Path], metadata: Optional[dict] = None) -> None:
        self.path = Path(path)
        self.metadata = metadata
        self.count = 0
        self._file: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self._write_header(None)

    def _write_header(
        self,
        end_time: Optional[int],
        finalizer_errors: Optional[int] = None,
    ) -> None:
        text = json.dumps(
            _header_dict(end_time, self.metadata, finalizer_errors)
        )
        if len(text) < _HEADER_PAD:
            text = text.ljust(_HEADER_PAD)
        self._file.write(text + "\n")

    def write_record(self, record: ObjectRecord) -> None:
        self._file.write(json.dumps(record.to_dict()) + "\n")
        self.count += 1

    def write_sample(self, sample) -> None:
        """v1 has no sample frames; accepted for sink compatibility."""

    def close(
        self,
        end_time: Optional[int] = None,
        finalizer_errors: Optional[int] = None,
    ) -> None:
        if self._file is None:
            return
        if end_time is not None:
            self._file.seek(0)
            self._write_header(end_time, finalizer_errors)
        self._file.close()
        self._file = None

    def __enter__(self) -> "LogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_log(
    path: Union[str, Path],
    records: Iterable[ObjectRecord],
    end_time: Optional[int] = None,
    metadata: Optional[dict] = None,
) -> int:
    """Write records as JSONL with a header; returns the record count."""
    writer = LogWriter(path, metadata=metadata)
    for record in records:
        writer.write_record(record)
    writer.close(end_time=end_time)
    return writer.count


class LoadedLog:
    """A parsed log: records plus header metadata (and, for v2 logs,
    the deep-GC heap samples)."""

    __slots__ = (
        "records",
        "end_time",
        "metadata",
        "samples",
        "finalizer_errors",
        "est_objects",
        "est_bytes",
    )

    def __init__(
        self,
        records: List[ObjectRecord],
        end_time: Optional[int],
        metadata: dict,
        samples: Optional[list] = None,
        finalizer_errors: Optional[int] = None,
        est_objects: Optional[float] = None,
        est_bytes: Optional[float] = None,
    ) -> None:
        self.records = records
        self.end_time = end_time
        self.metadata = metadata
        self.samples = samples or []
        # None = written before the field existed / run still in flight.
        self.finalizer_errors = finalizer_errors
        # Weight-estimated totals declared by a byte-sampled v2 log's
        # END frame; None for full-rate logs (observed == estimate).
        self.est_objects = est_objects
        self.est_bytes = est_bytes


def _is_v2(path: Union[str, Path]) -> bool:
    from repro.stream.codec import MAGIC

    try:
        with open(path, "rb") as f:
            return f.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _read_v1_header(f: IO[str], path) -> dict:
    header_line = f.readline()
    if not header_line:
        raise ProfileError(f"{path}: empty log file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path}: bad log header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise ProfileError(f"{path}: not a {FORMAT_NAME} file")
    if header.get("version") != FORMAT_VERSION:
        raise ProfileError(f"{path}: unsupported version {header.get('version')}")
    return header


def _iter_v1_records(f: IO[str], path, strict: bool) -> Iterator[ObjectRecord]:
    for line_no, line in enumerate(f, start=2):
        truncated = not line.endswith("\n")
        line = line.strip()
        if not line:
            continue
        try:
            yield ObjectRecord.from_dict(json.loads(line))
        except (json.JSONDecodeError, KeyError) as exc:
            if not strict and truncated:
                # A final line without its newline is the signature of a
                # run that died mid-write; everything before it is good.
                return
            raise ProfileError(f"{path}:{line_no}: bad record: {exc}") from exc


def iter_log(
    path: Union[str, Path], strict: bool = True
) -> Iterator[ObjectRecord]:
    """Yield a log's records one by one without materializing the list.

    Handles both v1 (JSONL) and v2 (binary) files. With
    ``strict=False`` a truncated final record ends iteration cleanly.
    """
    if _is_v2(path):
        from repro.stream.codec import iter_v2_log

        yield from iter_v2_log(path, strict=strict)
        return
    with open(path, "r", encoding="utf-8") as f:
        _read_v1_header(f, path)
        yield from _iter_v1_records(f, path, strict)


def read_log(path: Union[str, Path], strict: bool = True) -> LoadedLog:
    """Read a log file written by :func:`write_log` (v1) or the v2
    streaming writer — the format is auto-detected."""
    if _is_v2(path):
        from repro.stream.codec import read_v2_log

        return read_v2_log(path, strict=strict)
    with open(path, "r", encoding="utf-8") as f:
        header = _read_v1_header(f, path)
        records = list(_iter_v1_records(f, path, strict))
    return LoadedLog(
        records,
        header.get("end_time"),
        header.get("metadata") or {},
        finalizer_errors=header.get("finalizer_errors"),
    )
