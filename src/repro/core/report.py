"""Human-readable drag reports — the tool's user-facing output.

The report lists allocation sites sorted by accumulated drag
space-time product, flags never-used sites ("a sure bet for code
rewriting"), classifies each site's lifetime pattern, and names the
§3.4-suggested transformation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.program import CompiledProgram
from repro.core.analyzer import DragAnalysis, SiteGroup
from repro.core.anchor import anchor_site
from repro.core.integrals import MB
from repro.core.patterns import classify_group, suggest_transformation


def _mb2(bytes2: int) -> float:
    return bytes2 / (MB * MB)


def _format_group(
    rank: int,
    group: SiteGroup,
    analysis: DragAnalysis,
    interval_bytes: int,
    program: Optional[CompiledProgram],
) -> List[str]:
    pattern = classify_group(group, interval_bytes=interval_bytes)
    suggestion = suggest_transformation(pattern) or "-"
    lines = [
        f"#{rank} {group.key}",
        f"    allocates: {', '.join(group.type_names)}",
        (
            f"    drag {_mb2(group.est_drag):10.4f} MB^2"
            f"  ({100.0 * analysis.drag_share(group):5.1f}% of total)"
            f"  objects {group.count}"
            f"  bytes {group.total_bytes}"
        ),
        (
            f"    never-used: {group.never_used_count}/{group.count}"
            f" ({100.0 * group.never_used_fraction:5.1f}% of site drag)"
            f"  pattern: {pattern.name}"
            f"  suggest: {suggestion}"
        ),
    ]
    if program is not None:
        anchor = anchor_site(group, program)
        if anchor is not None and anchor != group.key:
            lines.append(f"    anchor site: {anchor}")
    uses = group.partition_by_last_use()
    if len(uses) > 1 or (len(uses) == 1 and None not in uses):
        top_uses = sorted(uses.values(), key=lambda g: -g.total_drag)[:3]
        for use_group in top_uses:
            use_label = use_group.key[1] or "<never used>"
            lines.append(
                f"    last-use {use_label}: drag {_mb2(use_group.total_drag):.4f} MB^2"
                f" ({use_group.count} objects)"
            )
    if group.count > 1:
        lines.append("    " + group.lifetime_breakdown("drag_time").summary())
    return lines


def drag_report(
    analysis: DragAnalysis,
    top: int = 10,
    interval_bytes: int = 100 * 1024,
    program: Optional[CompiledProgram] = None,
    nested: bool = False,
) -> str:
    """Render the sorted drag report (phase-2 output).

    With ``nested=True``, groups are nested allocation sites (call
    chains) instead of plain allocation sites.
    """
    lines: List[str] = []
    lines.append("=== Drag report ===")
    lines.append(
        f"objects logged: {analysis.object_count}"
        f"   total drag: {_mb2(analysis.total_drag):.4f} MB^2"
    )
    if analysis.sampled:
        lines.append(
            f"byte-sampled profile: effective rate {analysis.effective_sample_rate:.6f}"
            f"   est objects {analysis.est_object_count:.1f}"
            f"   est total drag {_mb2(analysis.est_total_drag):.4f} MB^2"
        )
    groups = analysis.sorted_nested(top) if nested else analysis.sorted_sites(top)
    lines.append("")
    lines.append(f"--- top {len(groups)} {'nested ' if nested else ''}allocation sites by drag ---")
    for rank, group in enumerate(groups, start=1):
        lines.extend(_format_group(rank, group, analysis, interval_bytes, program))
    never = analysis.never_used_sites(5)
    if never:
        lines.append("")
        lines.append("--- never-used sites (sure bets) ---")
        for group in never:
            lines.append(
                f"  {group.key}: {group.count} objects, all never used,"
                f" drag {_mb2(group.total_drag):.4f} MB^2"
            )
    return "\n".join(lines)


def heap_profile_chart(
    curves: dict,
    width: int = 72,
    height: int = 16,
    end_time: Optional[int] = None,
) -> str:
    """ASCII rendition of Figure 2: overlaid heap curves.

    ``curves`` maps a single-character legend key to a
    :class:`repro.core.integrals.HeapCurve`. Later entries overdraw
    earlier ones.
    """
    if not curves:
        return "(no curves)"
    if all(not c.times for c in curves.values()):
        return "(empty profile)"
    t_max = end_time or max((c.times[-1] for c in curves.values() if c.times), default=1)
    v_max = max((max(c.values) for c in curves.values() if c.values), default=1)
    if t_max <= 0 or v_max <= 0:
        return "(empty profile)"
    grid = [[" "] * width for _ in range(height)]
    for key, curve in curves.items():
        for col in range(width):
            t = t_max * col // max(1, width - 1)
            v = curve.value_at(t)
            row = height - 1 - min(height - 1, v * (height - 1) // v_max)
            grid[row][col] = key
    from repro.obs.timeline import format_axis

    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(format_axis(t_max, v_max))
    return "\n".join(lines)
