"""Phase 2: the off-line drag analyzer (§2.2).

Partitions dragged objects by allocation site, by *nested* allocation
site (call chain), and by (allocation site, last-use site); sums the
drag space-time product per group; maintains the special partition of
*never-used* objects; and sorts groups by drag — "allocation sites
having a large drag suggest a potential for significant space savings".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.sampler import WeightedTotal
from repro.core.trailer import ObjectRecord


class SiteGroup:
    """All logged objects sharing one partition key (a site label, a
    nested-site chain, or a (site, last-use-site) pair).

    Aggregate totals are running sums maintained by :meth:`add`, so the
    report/sort paths never rescan ``records`` (groups can hold tens of
    thousands of records and the sort comparators hit ``total_drag``
    repeatedly).
    """

    __slots__ = (
        "key",
        "records",
        "_total_bytes",
        "_total_drag",
        "_total_in_use",
        "_never_used_count",
        "_never_used_drag",
        "_est_count",
        "_est_bytes",
        "_est_drag",
        "_est_in_use",
        "_est_never_used_drag",
    )

    def __init__(self, key) -> None:
        self.key = key
        self.records: List[ObjectRecord] = []
        self._total_bytes = 0
        self._total_drag = 0
        self._total_in_use = 0
        self._never_used_count = 0
        self._never_used_drag = 0
        # Weight-corrected (Horvitz-Thompson) estimates. For full-rate
        # profiles every weight is 1.0 and each weighted_* property
        # returns the exact int, so these stay equal — as ints — to the
        # observed sums above. WeightedTotal keeps the float part exact
        # (order-independent), which is what lets batch, streaming, and
        # sharded-merge analyses agree bit for bit on sampled data.
        self._est_count = WeightedTotal()
        self._est_bytes = WeightedTotal()
        self._est_drag = WeightedTotal()
        self._est_in_use = WeightedTotal()
        self._est_never_used_drag = WeightedTotal()

    def add(self, record: ObjectRecord) -> None:
        self.records.append(record)
        drag = record.drag
        self._total_bytes += record.size
        self._total_drag += drag
        self._total_in_use += record.size * record.in_use_time
        self._est_count.add(record.weighted_count)
        self._est_bytes.add(record.weighted_size)
        est_drag = record.weighted_drag
        self._est_drag.add(est_drag)
        self._est_in_use.add(record.weighted_in_use)
        if record.never_used:
            self._never_used_count += 1
            self._never_used_drag += drag
            self._est_never_used_drag.add(est_drag)

    # -- aggregates ---------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    @property
    def total_drag(self) -> int:
        """Sum of drag space-time products (bytes²) over the group."""
        return self._total_drag

    @property
    def total_in_use(self) -> int:
        return self._total_in_use

    # Weight-corrected estimates of the population quantities. Exact
    # ints (== the observed sums) for full-rate groups.

    @property
    def est_count(self) -> float:
        return self._est_count.value

    @property
    def est_bytes(self) -> float:
        return self._est_bytes.value

    @property
    def est_drag(self) -> float:
        """Estimated total drag (bytes²) this group stands for."""
        return self._est_drag.value

    @property
    def est_in_use(self) -> float:
        return self._est_in_use.value

    @property
    def est_never_used_drag(self) -> float:
        return self._est_never_used_drag.value

    @property
    def never_used_records(self) -> List[ObjectRecord]:
        return [r for r in self.records if r.never_used]

    @property
    def never_used_count(self) -> int:
        return self._never_used_count

    @property
    def never_used_drag(self) -> int:
        return self._never_used_drag

    @property
    def never_used_fraction(self) -> float:
        """Fraction of the group's drag due to never-used objects."""
        drag = self.total_drag
        return self.never_used_drag / drag if drag > 0 else 0.0

    def drag_times(self) -> List[int]:
        return [r.drag_time for r in self.records]

    def partition_by_last_use(self) -> Dict[Optional[str], "SiteGroup"]:
        """§2.2: 'we also partition dragged objects according to nested
        allocation site and last-use site'."""
        out: Dict[Optional[str], SiteGroup] = {}
        for record in self.records:
            key = record.last_use_frame
            group = out.get(key)
            if group is None:
                group = out[key] = SiteGroup((self.key, key))
            group.add(record)
        return out

    def lifetime_breakdown(self, attr: str = "drag_time", buckets: int = 4) -> "Histogram":
        """§3.4: 'The tool also partitions the dragged objects at that
        anchor allocation site according to their drag time, in-use
        time, and collection time.' ``attr`` is one of ``drag_time``,
        ``in_use_time``, ``collection_time``, ``lag_time``, ``lifetime``
        or ``drag``."""
        values = [getattr(r, attr) for r in self.records]
        return Histogram(attr, values, buckets)

    @property
    def type_names(self) -> List[str]:
        seen = []
        for record in self.records:
            if record.type_name not in seen:
                seen.append(record.type_name)
        return seen

    def __repr__(self) -> str:
        return f"<group {self.key} n={self.count} drag={self.total_drag}>"


class Histogram:
    """Equal-width bucketing of one lifetime attribute over a group."""

    __slots__ = ("attr", "values", "edges", "counts")

    def __init__(self, attr: str, values: List[int], buckets: int) -> None:
        self.attr = attr
        self.values = sorted(values)
        if not values:
            self.edges: List[int] = []
            self.counts: List[int] = []
            return
        lo, hi = self.values[0], self.values[-1]
        width = max(1, (hi - lo + buckets) // buckets)
        self.edges = [lo + i * width for i in range(buckets + 1)]
        self.counts = [0] * buckets
        for value in self.values:
            index = min((value - lo) // width, buckets - 1)
            self.counts[index] += 1

    @property
    def minimum(self) -> Optional[int]:
        return self.values[0] if self.values else None

    @property
    def maximum(self) -> Optional[int]:
        return self.values[-1] if self.values else None

    @property
    def median(self) -> Optional[int]:
        if not self.values:
            return None
        return self.values[len(self.values) // 2]

    @property
    def mean(self) -> Optional[float]:
        if not self.values:
            return None
        return sum(self.values) / len(self.values)

    def summary(self) -> str:
        if not self.values:
            return f"{self.attr}: (empty)"
        rows = " ".join(
            f"[{self.edges[i]}..{self.edges[i + 1]}):{self.counts[i]}"
            for i in range(len(self.counts))
        )
        return (
            f"{self.attr}: min={self.minimum} median={self.median} "
            f"max={self.maximum}  {rows}"
        )

    def __repr__(self) -> str:
        return f"<histogram {self.attr} n={len(self.values)}>"


def _group_by(records: Iterable[ObjectRecord], key_fn) -> Dict[object, SiteGroup]:
    out: Dict[object, SiteGroup] = {}
    for record in records:
        key = key_fn(record)
        group = out.get(key)
        if group is None:
            group = out[key] = SiteGroup(key)
        group.add(record)
    return out


class DragAnalysis:
    """The analyzer's view of one profile log."""

    def __init__(
        self,
        records: Iterable[ObjectRecord],
        include_library_sites: bool = True,
    ) -> None:
        all_records = [r for r in records if not r.excluded]
        if not include_library_sites:
            all_records = [r for r in all_records if not r.site_is_library]
        self.records = all_records
        # Coarse partition: by allocation site alone (§2.2: "sometimes an
        # allocation site is used in many contexts and a large drag may be
        # distributed among several smaller drag groups" under the nested
        # partition).
        self.by_site = _group_by(all_records, lambda r: r.site_label)
        # Fine partition: by nested allocation site (call chain).
        self.by_nested = _group_by(all_records, lambda r: r.nested_alloc or (r.site_label,))
        # By allocation site and last-use site.
        self.by_site_and_use = _group_by(
            all_records, lambda r: (r.site_label, r.last_use_frame)
        )

    # -- totals ---------------------------------------------------------------

    @property
    def total_drag(self) -> int:
        """Observed drag: the sum over *logged* records, uncorrected."""
        return sum(r.drag for r in self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    @property
    def object_count(self) -> int:
        return len(self.records)

    # Weight-corrected (Horvitz-Thompson) population estimates. On a
    # full-rate profile every record weight is 1.0 and these are the
    # observed ints, so consumers (lint correlation, the optimize
    # verifier, serve payloads) can read the ``est_*`` forms
    # unconditionally.

    @property
    def est_total_drag(self) -> float:
        return self._est_sum("weighted_drag")

    @property
    def est_total_bytes(self) -> float:
        return self._est_sum("weighted_size")

    @property
    def est_object_count(self) -> float:
        return self._est_sum("weighted_count")

    def _est_sum(self, attr: str):
        # WeightedTotal, not sum(): its value is order-independent, so
        # batch totals equal streaming/sharded ones exactly.
        total = WeightedTotal()
        for record in self.records:
            total.add(getattr(record, attr))
        return total.value

    @property
    def sampled(self) -> bool:
        """True when any record carries a non-unit weight."""
        return any(r.weight != 1.0 for r in self.records)

    @property
    def effective_sample_rate(self) -> float:
        """Observed bytes / estimated bytes — 1.0 for full-rate logs."""
        est = self.est_total_bytes
        return self.total_bytes / est if est > 0 else 1.0

    # -- sorted views (the tool's primary output) -------------------------------
    #
    # Rankings order by *estimated* drag, which equals observed drag
    # (as an int) for full-rate profiles — the pre-weight sort order.

    def sorted_sites(self, limit: Optional[int] = None) -> List[SiteGroup]:
        groups = sorted(self.by_site.values(), key=lambda g: (-g.est_drag, str(g.key)))
        return groups[:limit] if limit else groups

    def sorted_nested(self, limit: Optional[int] = None) -> List[SiteGroup]:
        groups = sorted(self.by_nested.values(), key=lambda g: (-g.est_drag, str(g.key)))
        return groups[:limit] if limit else groups

    def never_used_sites(self, limit: Optional[int] = None) -> List[SiteGroup]:
        """Sites whose drag is entirely due to never-used objects —
        'a sure bet for code rewriting' (§2.2)."""
        groups = [
            g
            for g in self.by_site.values()
            if g.count > 0 and g.never_used_count == g.count and g.total_drag > 0
        ]
        groups.sort(key=lambda g: (-g.est_drag, str(g.key)))
        return groups[:limit] if limit else groups

    def site(self, label: str) -> Optional[SiteGroup]:
        return self.by_site.get(label)

    def drag_share(self, group: SiteGroup) -> float:
        total = self.est_total_drag
        return group.est_drag / total if total > 0 else 0.0


class DragDelta:
    """The difference between two drag analyses (original vs revised) —
    the quantity every row of the paper's Table 5 reports, and the
    pipeline's verification criterion ("total drag must not increase")."""

    __slots__ = ("before", "after")

    def __init__(self, before: "DragAnalysis", after: "DragAnalysis") -> None:
        self.before = before
        self.after = after

    @property
    def total_before(self) -> int:
        """Estimated total drag of the original run (the exact observed
        int when the profile was full-rate)."""
        return self.before.est_total_drag

    @property
    def total_after(self) -> int:
        return self.after.est_total_drag

    @property
    def delta(self) -> int:
        """after − before; negative is a drag reduction."""
        return self.total_after - self.total_before

    @property
    def pct(self) -> float:
        """Delta as a percentage of the original total (0.0 when the
        original had no drag)."""
        if self.total_before == 0:
            return 0.0
        return 100.0 * self.delta / self.total_before

    @property
    def non_increasing(self) -> bool:
        return self.total_after <= self.total_before

    @property
    def decreased(self) -> bool:
        return self.total_after < self.total_before

    def per_site(self, limit: Optional[int] = None):
        """(site label, drag before, drag after) rows for every site in
        either run, largest absolute change first."""
        labels = set(self.before.by_site) | set(self.after.by_site)
        rows = []
        for label in labels:
            b = self.before.by_site.get(label)
            a = self.after.by_site.get(label)
            rows.append((label, b.est_drag if b else 0, a.est_drag if a else 0))
        rows.sort(key=lambda row: (-abs(row[2] - row[1]), row[0]))
        return rows[:limit] if limit else rows

    def summary(self) -> str:
        return (
            f"total drag {self.total_before} -> {self.total_after} "
            f"({self.pct:+.1f}%)"
        )

    def __repr__(self) -> str:
        return f"<drag-delta {self.summary()}>"


def drag_delta(before, after) -> DragDelta:
    """Build a :class:`DragDelta` from two runs. Each argument may be a
    :class:`DragAnalysis` or an iterable of :class:`ObjectRecord`."""

    def as_analysis(x):
        return x if isinstance(x, DragAnalysis) else DragAnalysis(x)

    return DragDelta(as_analysis(before), as_analysis(after))
