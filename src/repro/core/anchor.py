"""Anchor allocation sites (§3.4).

"We choose a nested allocation site with high drag. The bottom level is
likely to be an allocation site in JDK or other library code, e.g.,
allocating a character array in java.util.String. We follow the call
chain upwards looking for the first place in application code where a
reference to the allocated object ... is stored in a variable. We call
this place the anchor allocation site."

Our approximation: walk the nested allocation chain (innermost frame
first) and return the first frame belonging to a non-library class.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bytecode.program import CompiledProgram
from repro.core.analyzer import SiteGroup


def _frame_class(label: str) -> str:
    # labels look like "Class.method:line"
    return label.split(".", 1)[0]


def anchor_frame(nested_chain: Iterable[str], program: CompiledProgram) -> Optional[str]:
    """First application (non-library) frame label in a nested chain,
    scanning from the allocation outward; None if the whole chain is
    library code."""
    for label in nested_chain:
        cls = program.classes.get(_frame_class(label))
        if cls is not None and not cls.is_library:
            return label
    return None


def anchor_site(group: SiteGroup, program: CompiledProgram) -> Optional[str]:
    """Anchor allocation site for a drag group: the dominant application
    frame among the group's nested allocation chains."""
    votes = {}
    for record in group.records:
        frame = anchor_frame(record.nested_alloc, program)
        if frame is not None:
            votes[frame] = votes.get(frame, 0) + record.drag
    if not votes:
        return None
    return max(sorted(votes), key=lambda k: votes[k])
