"""The ``repro serve`` daemon: drag profiling as a service.

One asyncio process accepts many concurrent v2 profile streams over
TCP, routes raw RECORD frames to N shard workers by allocation-site
hash (see :mod:`repro.serve.shard` for why the loop never decodes a
record), and answers HTTP on a second port:

* ``GET /rankings?top=K&table=site|nested|never_used`` — live per-site
  drag rankings, merged on demand from the shard snapshots; the body is
  exactly :func:`repro.serve.merge.rankings_payload`, i.e. the same
  serialization ``repro report`` produces from a batch analysis.
* ``GET /summary`` — stream/shard totals.
* ``GET /timeline?top=K`` — the live heap timeline
  (:meth:`~repro.obs.timeline.TimelineBuilder.payload`): binned
  Figure-2 series, per-site drag strips, lifetime histograms, and the
  deep-GC snapshot markers decoded from SAMPLE frames. Shards maintain
  the record-derived series; the loop keeps the markers (SAMPLE frames
  are never routed) and splices them in at serve time.
* ``GET /healthz`` — liveness + drain state.
* ``GET /metrics`` — Prometheus text from the PR 5
  :class:`~repro.obs.metrics.MetricsRegistry`.

SIGTERM/SIGINT drain gracefully: stop accepting, let in-flight streams
finish (bounded by ``drain_timeout``), take a final merge, stop the
workers, exit 0.
"""

from __future__ import annotations

import asyncio
import socket
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.sampler import ByteSampler
from repro.errors import ProfileError
from repro.obs.metrics import MetricsRegistry
from repro.serve.merge import merge_snapshots, rankings_payload
from repro.serve.protocol import (
    DEFAULT_PORT,
    ProtocolError,
    encode_json_frame,
    read_hello,
)
from repro.serve.shard import InlineShard, make_shards, site_shard
from repro.obs.timeline import DEFAULT_BIN_BYTES
from repro.stream.codec import (
    FRAME_RECORD,
    FRAME_SAMPLE,
    FrameParser,
    _read_uvarint,
    peek_record_size,
    peek_site_label,
    record_weight,
    reweight_record,
)

_MERGE_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class ServeConfig:
    """Everything ``repro serve`` needs to boot."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        http_port: Optional[int] = None,
        workers: int = 4,
        inline: bool = False,
        top_k: int = 10,
        drain_timeout: float = 10.0,
        quiet: bool = False,
        sample_bytes: Optional[int] = None,
        seed: int = 0,
        snapshot_file: Optional[str] = None,
        timeline_bin_bytes: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        # port 0 means "any free port"; http can't default to 0+1 then.
        self.http_port = (
            http_port if http_port is not None else (port + 1 if port else 0)
        )
        self.workers = workers
        self.inline = inline
        self.top_k = top_k
        self.drain_timeout = drain_timeout
        self.quiet = quiet
        # Server-side byte resampling: each ingest stream gets its own
        # deterministic ByteSampler (seeded off ``seed`` + stream id).
        # Already-weighted records compose multiplicatively.
        self.sample_bytes = sample_bytes
        self.seed = seed
        # Optional heap snapshot file (from `profile --snapshot`): when
        # set, GET /snapshot serves its dominator-tree retained-size
        # summary. The file is parsed lazily and re-read when it grows,
        # so a profiler can stream snapshots into it mid-run.
        self.snapshot_file = snapshot_file
        # Heap-timeline bin width for GET /timeline. Defaults on (the
        # builder is O(bins + sites) and adds only dict arithmetic per
        # record); 0 disables the timeline entirely.
        self.timeline_bin_bytes = (
            DEFAULT_BIN_BYTES if timeline_bin_bytes is None else timeline_bin_bytes
        )


class StreamInfo:
    """Book-keeping for one client connection."""

    __slots__ = (
        "stream_id", "peer", "metadata", "frames", "records", "samples",
        "bytes", "ended", "truncated", "end_time", "sampler", "sampled_out",
    )

    def __init__(self, stream_id: int, peer: str, metadata: dict) -> None:
        self.stream_id = stream_id
        self.peer = peer
        self.metadata = metadata
        self.frames = 0
        self.records = 0
        self.samples = 0
        self.bytes = 0
        self.ended = False
        self.truncated = False
        self.end_time: Optional[int] = None
        # Server-side resampling state (None == route every record).
        self.sampler: Optional[ByteSampler] = None
        self.sampled_out = 0

    def to_dict(self) -> dict:
        return {
            "stream_id": self.stream_id,
            "peer": self.peer,
            "metadata": self.metadata,
            "frames": self.frames,
            "records": self.records,
            "samples": self.samples,
            "bytes": self.bytes,
            "ended": self.ended,
            "truncated": self.truncated,
            "end_time": self.end_time,
            "sampled_out": self.sampled_out,
        }


class DragServer:
    """The daemon. Construct, then :meth:`run` (blocking, installs
    signal handlers) or :func:`start_server_thread` (tests, benches)."""

    def __init__(
        self, config: Optional[ServeConfig] = None, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        self.shards = make_shards(
            self.config.workers,
            inline=self.config.inline,
            timeline_bin_bytes=self.config.timeline_bin_bytes or None,
        )
        # Deep-GC snapshot markers for /timeline: SAMPLE frames are not
        # routed to shards, so the accept loop decodes and keeps them.
        self._timeline_samples: List[List[int]] = []
        self.streams: Dict[int, StreamInfo] = {}
        self.final_analysis = None
        self.started_at: Optional[float] = None
        self.ingest_addr: Optional[Tuple[str, int]] = None
        self.http_addr: Optional[Tuple[str, int]] = None
        self._next_stream_id = 0
        self._active = 0
        self._draining = False
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ingest_server = None
        self._http_server = None
        # /snapshot cache: (file size at parse time, summary payload).
        self._snapshot_cache: Optional[Tuple[int, dict]] = None
        # Dedicated pool for blocking shard-pipe calls: sized so every
        # shard can have an in-flight feed plus a snapshot round.
        self._pool = ThreadPoolExecutor(
            max_workers=2 * len(self.shards) + 4,
            thread_name_prefix="repro-serve-shard-io",
        )

        reg = self.registry
        self._m_streams = reg.counter(
            "repro_serve_streams_total", "Client streams accepted")
        self._m_truncated = reg.counter(
            "repro_serve_truncated_streams_total",
            "Streams that disconnected mid-frame or without an END frame")
        self._m_bytes = reg.counter(
            "repro_serve_bytes_ingested_total", "Raw bytes read from clients")
        self._m_frames = reg.counter(
            "repro_serve_frames_total", "v2 frames parsed from clients")
        self._m_records = reg.counter(
            "repro_serve_records_total", "Object records routed to shards")
        self._m_samples = reg.counter(
            "repro_serve_samples_total", "Deep-GC heap samples seen")
        self._m_shard_records = reg.counter(
            "repro_serve_shard_records_total",
            "Object records routed, per shard", labelnames=("shard",))
        self._m_active = reg.gauge(
            "repro_serve_active_clients", "Currently connected profile streams")
        self._m_merges = reg.counter(
            "repro_serve_merges_total", "On-demand shard merges performed")
        self._m_merge_latency = reg.histogram(
            "repro_serve_merge_seconds",
            "Latency of snapshot+merge across all shards",
            buckets=_MERGE_BUCKETS)
        self._m_http = reg.counter(
            "repro_serve_http_requests_total", "HTTP requests served",
            labelnames=("path",))
        # Weight-accounting series: observed vs weight-estimated totals
        # over every record routed to a shard, plus the resulting
        # effective sampling rate (1 == full-rate ingest).
        self._m_weighted_records = reg.counter(
            "repro_serve_weighted_records_total",
            "Weight-estimated object records represented by routed records")
        self._m_weighted_bytes = reg.counter(
            "repro_serve_weighted_bytes_total",
            "Weight-estimated allocation bytes represented by routed records")
        self._m_record_bytes = reg.counter(
            "repro_serve_record_bytes_total",
            "Observed allocation bytes carried by routed records")
        self._m_sampled_out = reg.counter(
            "repro_serve_sampled_out_records_total",
            "Records dropped by server-side byte resampling")
        self._m_rate = reg.gauge(
            "repro_serve_effective_sample_rate",
            "Observed record bytes / weight-estimated bytes (1 = full rate)")
        self._m_rate.set(1.0)
        self._m_timeline_requests = reg.counter(
            "repro_timeline_requests_total", "GET /timeline requests served")
        self._m_timeline_markers = reg.counter(
            "repro_timeline_markers_total",
            "Deep-GC snapshot markers recorded for the timeline")
        self._m_timeline_bins = reg.gauge(
            "repro_timeline_bins", "Bins in the last merged timeline payload")
        self._m_timeline_sites = reg.gauge(
            "repro_timeline_sites", "Sites in the last merged timeline")
        self._m_timeline_bin_bytes = reg.gauge(
            "repro_timeline_bin_bytes",
            "Configured timeline bin width (0 = timeline disabled)")
        self._m_timeline_bin_bytes.set(self.config.timeline_bin_bytes or 0)
        self._observed_record_bytes = 0
        self._weighted_record_bytes = 0
        # Pre-create one series per shard so /metrics shows zeros early.
        for i in range(len(self.shards)):
            self._m_shard_records.labels(shard=str(i))

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"[serve] {message}", file=sys.stderr, flush=True)

    # -- shard plumbing ---------------------------------------------------

    async def _call(self, shard, method: str, *args):
        """Invoke a shard op; inline shards run on the loop, process
        shards on the blocking-IO pool (their pipes backpressure)."""
        fn = getattr(shard, method)
        if isinstance(shard, InlineShard):
            return fn(*args)
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, fn, *args
        )

    async def merged(self):
        """Snapshot every shard and merge associatively — the on-demand
        read path behind /rankings and /summary."""
        started = time.perf_counter()
        snaps = await asyncio.gather(
            *(self._call(shard, "snapshot") for shard in self.shards)
        )
        merged = merge_snapshots(analysis for analysis, _ in snaps)
        self._m_merges.inc()
        self._m_merge_latency.observe(time.perf_counter() - started)
        return merged, [count for _, count in snaps]

    # -- ingest -----------------------------------------------------------

    async def _route_frames(self, info: StreamInfo, parser: FrameParser,
                            frames, sent_strings: int) -> int:
        """Fan a batch of raw frames out to the shards; returns the new
        count of strings already broadcast."""
        nshards = len(self.shards)
        buckets: List[List[bytes]] = [[] for _ in range(nshards)]
        records = 0
        observed_bytes = 0
        weighted_records = 0
        weighted_bytes = 0
        sampler = info.sampler
        for frame_type, payload in frames:
            if frame_type == FRAME_RECORD:
                size = peek_record_size(payload)
                if sampler is not None:
                    # Server-side resampling never decodes the record:
                    # peek the size, roll the stream's sampler, and
                    # either drop the frame or splice the composed
                    # weight into its trailing weight field.
                    extra = sampler.sample(size)
                    if not extra:
                        info.sampled_out += 1
                        self._m_sampled_out.inc()
                        continue
                    if extra != 1.0:
                        payload = reweight_record(
                            payload, record_weight(payload) * extra
                        )
                weight = record_weight(payload)
                observed_bytes += size
                if weight == 1.0:
                    weighted_records += 1
                    weighted_bytes += size
                else:
                    weighted_records += weight
                    weighted_bytes += weight * size
                label = peek_site_label(payload, parser.strings)
                buckets[site_shard(label, nshards)].append(payload)
                records += 1
            elif frame_type == FRAME_SAMPLE:
                info.samples += 1
                self._m_samples.inc()
                if self.config.timeline_bin_bytes:
                    # SAMPLE payload: time, reachable bytes, object
                    # count as uvarints — kept loop-side as timeline
                    # snapshot markers.
                    sample_time, pos = _read_uvarint(payload, 0)
                    reachable, pos = _read_uvarint(payload, pos)
                    count, _ = _read_uvarint(payload, pos)
                    self._timeline_samples.append([sample_time, reachable, count])
                    self._m_timeline_markers.inc()
        info.frames += len(frames)
        info.records += records
        self._m_frames.inc(len(frames))
        if records:
            self._m_records.inc(records)
            self._m_record_bytes.inc(observed_bytes)
            self._m_weighted_records.inc(weighted_records)
            self._m_weighted_bytes.inc(weighted_bytes)
            self._observed_record_bytes += observed_bytes
            self._weighted_record_bytes += weighted_bytes
            if self._weighted_record_bytes > 0:
                self._m_rate.set(
                    self._observed_record_bytes / self._weighted_record_bytes
                )
        new_strings = parser.strings[sent_strings:]
        sends = []
        if new_strings:
            # String ids are stream-scoped and referenced by any later
            # record, so the table delta goes to every shard.
            sends.extend(
                self._call(shard, "feed_strings", info.stream_id, new_strings)
                for shard in self.shards
            )
            sent_strings = len(parser.strings)
        if sends:
            await asyncio.gather(*sends)
        feeds = []
        for index, bucket in enumerate(buckets):
            if bucket:
                self._m_shard_records.labels(shard=str(index)).inc(len(bucket))
                feeds.append(
                    self._call(
                        self.shards[index], "feed_records", info.stream_id, bucket
                    )
                )
        if feeds:
            await asyncio.gather(*feeds)
        return sent_strings

    async def _handle_ingest(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "<unknown>"
        try:
            metadata = await read_hello(reader, source=peer)
        except (ProtocolError, ConnectionError, OSError):
            writer.close()
            return
        self._next_stream_id += 1
        info = StreamInfo(self._next_stream_id, peer, metadata)
        cfg = self.config
        if cfg.sample_bytes is not None and cfg.sample_bytes > 1:
            # Deterministic per stream: the config seed offset by the
            # stream id, so concurrent streams sample independently but
            # a rerun of the same arrival order reproduces exactly.
            info.sampler = ByteSampler(
                cfg.sample_bytes, seed=cfg.seed + info.stream_id
            )
        self.streams[info.stream_id] = info
        self._m_streams.inc()
        self._active += 1
        self._m_active.set(self._active)
        self._log(
            f"stream {info.stream_id} connected from {peer} "
            f"({metadata.get('program', '?')})"
        )
        writer.write(encode_json_frame({
            "ok": True,
            "stream_id": info.stream_id,
            "shards": len(self.shards),
        }))
        parser = FrameParser(source=f"stream-{info.stream_id}")
        corrupt = False
        sent_strings = 0
        try:
            await writer.drain()
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                info.bytes += len(chunk)
                self._m_bytes.inc(len(chunk))
                try:
                    frames = parser.feed_frames(chunk)
                except (ProfileError, IndexError, UnicodeDecodeError):
                    # A poisoned stream kills this connection only; the
                    # shards never see its partial frame.
                    corrupt = True
                    break
                sent_strings = await self._route_frames(
                    info, parser, frames, sent_strings
                )
                if parser.ended:
                    break
        except (ConnectionError, OSError):
            pass
        finally:
            self._active -= 1
            self._m_active.set(self._active)
        info.ended = True
        info.end_time = parser.end_time
        info.truncated = corrupt or parser.truncated
        if info.truncated:
            self._m_truncated.inc()
        await asyncio.gather(
            *(
                self._call(shard, "end_stream", info.stream_id, parser.end_time)
                for shard in self.shards
            )
        )
        self._log(
            f"stream {info.stream_id} finished: {info.records} records, "
            f"{info.bytes} bytes"
            + (" (truncated)" if info.truncated else "")
        )
        try:
            writer.write(encode_json_frame({
                "ok": not info.truncated,
                "stream_id": info.stream_id,
                "records": info.records,
                "truncated": info.truncated,
            }))
            await writer.drain()
            writer.close()
        except (ConnectionError, OSError):
            pass

    # -- http -------------------------------------------------------------

    @staticmethod
    def _http_response(status: str, body: bytes, content_type: str) -> bytes:
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        return head.encode("ascii") + body

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        import json

        try:
            request_line = await reader.readline()
            while True:  # drain headers; GET-only API, no bodies
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2 or parts[0] != "GET":
                writer.write(self._http_response(
                    "405 Method Not Allowed", b"GET only\n", "text/plain"))
                await writer.drain()
                writer.close()
                return
            url = urlsplit(parts[1])
            path = url.path
            query = parse_qs(url.query)
            self._m_http.labels(path=path).inc()
            if path == "/healthz":
                body = json.dumps({
                    "ok": True,
                    "draining": self._draining,
                    "shards": len(self.shards),
                    "active_clients": self._active,
                    "uptime_seconds": (
                        time.time() - self.started_at if self.started_at else 0.0
                    ),
                }).encode("utf-8")
                writer.write(self._http_response("200 OK", body, "application/json"))
            elif path == "/rankings":
                raw_top = query.get("top", [str(self.config.top_k)])[0]
                top = None if raw_top in ("0", "all") else int(raw_top)
                table = query.get("table", ["site"])[0]
                analysis, _ = await self.merged()
                payload = rankings_payload(analysis, top=top, table=table)
                body = json.dumps(payload).encode("utf-8")
                writer.write(self._http_response("200 OK", body, "application/json"))
            elif path == "/summary":
                analysis, shard_counts = await self.merged()
                body = json.dumps({
                    "objects": analysis.object_count,
                    "est_objects": analysis.est_object_count,
                    "total_bytes": analysis.total_bytes,
                    "est_total_bytes": analysis.est_total_bytes,
                    "total_drag": analysis.total_drag,
                    "est_total_drag": analysis.est_total_drag,
                    "effective_sample_rate": analysis.effective_sample_rate,
                    "sample_bytes": self.config.sample_bytes,
                    "end_time": analysis.end_time,
                    "sites": len(analysis.by_site),
                    "samples": sum(
                        info.samples for info in self.streams.values()
                    ),
                    "shards": [
                        {"shard": i, "records": count}
                        for i, count in enumerate(shard_counts)
                    ],
                    "active_clients": self._active,
                    "draining": self._draining,
                    "streams": [
                        info.to_dict()
                        for _, info in sorted(self.streams.items())
                    ],
                }).encode("utf-8")
                writer.write(self._http_response("200 OK", body, "application/json"))
            elif path == "/timeline":
                if not self.config.timeline_bin_bytes:
                    body = json.dumps({
                        "error": "timeline disabled (--timeline-bin-bytes 0)",
                    }).encode("utf-8")
                    writer.write(self._http_response(
                        "404 Not Found", body, "application/json"))
                else:
                    raw_top = query.get("top", [str(self.config.top_k)])[0]
                    top = None if raw_top in ("0", "all") else int(raw_top)
                    analysis, _ = await self.merged()
                    timeline = getattr(analysis, "timeline", None)
                    if timeline is None:
                        # No records routed yet: an empty builder keeps
                        # the payload shape stable for early pollers.
                        from repro.obs.timeline import TimelineBuilder

                        timeline = TimelineBuilder(
                            bin_bytes=self.config.timeline_bin_bytes
                        )
                    payload = timeline.payload(top=top, include_samples=False)
                    payload["samples"] = sorted(self._timeline_samples)
                    self._m_timeline_requests.inc()
                    self._m_timeline_bins.set(payload["bins"])
                    self._m_timeline_sites.set(payload["site_count"])
                    body = json.dumps(payload).encode("utf-8")
                    writer.write(self._http_response(
                        "200 OK", body, "application/json"))
            elif path == "/metrics":
                body = self.registry.exposition().encode("utf-8")
                writer.write(self._http_response(
                    "200 OK", body, "text/plain; version=0.0.4"))
            elif path == "/snapshot":
                payload = await self._loop.run_in_executor(
                    self._pool, self._snapshot_payload
                )
                body = json.dumps(payload).encode("utf-8")
                status = "200 OK" if "error" not in payload else "404 Not Found"
                writer.write(self._http_response(status, body, "application/json"))
            else:
                writer.write(self._http_response(
                    "404 Not Found", b"unknown path\n", "text/plain"))
            await writer.drain()
            writer.close()
        except (ValueError, ConnectionError, OSError):
            try:
                writer.close()
            except OSError:
                pass

    def _snapshot_payload(self) -> dict:
        """The /snapshot body: the configured snapshot file's
        dominator-tree summary, cached by file size so repeated polls
        only re-parse after a profiler appends new captures."""
        import os

        path = self.config.snapshot_file
        if not path:
            return {"error": "no snapshot file configured (--snapshot-file)"}
        try:
            size = os.path.getsize(path)
        except OSError as exc:
            return {"error": f"snapshot file unreadable: {exc}"}
        cached = self._snapshot_cache
        if cached is not None and cached[0] == size:
            return cached[1]
        from repro.snapshot import SnapshotError, read_snapshots, snapshot_summary

        try:
            loaded = read_snapshots(path, strict=False)
        except SnapshotError as exc:
            return {"error": f"snapshot file unreadable: {exc}"}
        payload = dict(snapshot_summary(loaded), file=path)
        self._snapshot_cache = (size, payload)
        return payload

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        cfg = self.config
        self._ingest_server = await asyncio.start_server(
            self._handle_ingest, cfg.host, cfg.port
        )
        self.ingest_addr = self._ingest_server.sockets[0].getsockname()[:2]
        self._http_server = await asyncio.start_server(
            self._handle_http, cfg.host, cfg.http_port
        )
        self.http_addr = self._http_server.sockets[0].getsockname()[:2]
        self.started_at = time.time()
        flavour = "inline" if isinstance(self.shards[0], InlineShard) else "process"
        self._log(
            f"ingest on {self.ingest_addr[0]}:{self.ingest_addr[1]}, "
            f"http on {self.http_addr[0]}:{self.http_addr[1]}, "
            f"{len(self.shards)} {flavour} shard(s)"
        )

    def request_stop(self) -> None:
        """Signal-safe stop trigger (callable from handlers/threads)."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    async def shutdown(self) -> None:
        """Graceful drain: close the door, finish in-flight streams,
        final-merge, stop workers."""
        self._draining = True
        self._log("draining: no longer accepting streams")
        if self._ingest_server is not None:
            self._ingest_server.close()
            await self._ingest_server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout
        while self._active > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        finals = await asyncio.gather(
            *(self._call(shard, "stop") for shard in self.shards)
        )
        self.final_analysis = merge_snapshots(a for a, _ in finals)
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        self._pool.shutdown(wait=False)
        self._log(
            f"stopped: {int(self._m_records.value)} records from "
            f"{int(self._m_streams.value)} stream(s), "
            f"{len(self.final_analysis.by_site)} sites, "
            f"total drag {self.final_analysis.total_drag}"
        )

    async def serve(self) -> None:
        """start(), wait for request_stop(), shutdown()."""
        await self.start()
        await self._stop_event.wait()
        await self.shutdown()

    def run(self, install_signal_handlers: bool = True) -> int:
        """Blocking CLI entry point."""
        import signal

        async def main() -> None:
            await self.start()
            if install_signal_handlers:
                loop = asyncio.get_running_loop()
                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(sig, self.request_stop)
                    except (NotImplementedError, RuntimeError):
                        pass
            await self._stop_event.wait()
            await self.shutdown()

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass
        return 0


class ServerHandle:
    """A server running on a daemon thread — the harness tests and the
    throughput bench drive the real socket path through this."""

    def __init__(self, server: DragServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def ingest_addr(self) -> Tuple[str, int]:
        return self.server.ingest_addr

    @property
    def http_addr(self) -> Tuple[str, int]:
        return self.server.http_addr

    def stop(self, timeout: float = 30.0):
        self.server.request_stop()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise RuntimeError("serve daemon did not stop in time")
        return self.server.final_analysis


def start_server_thread(
    config: Optional[ServeConfig] = None,
    registry: Optional[MetricsRegistry] = None,
    startup_timeout: float = 30.0,
) -> ServerHandle:
    """Boot a :class:`DragServer` on a background thread; returns once
    both listeners are bound (ports resolved, even when 0 was asked)."""
    server = DragServer(config=config, registry=registry)
    ready = threading.Event()
    failure: List[BaseException] = []

    async def main() -> None:
        try:
            await server.start()
        except BaseException as exc:  # bind failures must not hang the caller
            failure.append(exc)
            ready.set()
            raise
        ready.set()
        await server._stop_event.wait()
        await server.shutdown()

    def body() -> None:
        try:
            asyncio.run(main())
        except BaseException:
            ready.set()

    thread = threading.Thread(target=body, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=startup_timeout):
        raise RuntimeError("serve daemon did not start in time")
    if failure:
        raise failure[0]
    return ServerHandle(server, thread)
