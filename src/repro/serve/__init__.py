"""Drag profiling as a service.

The ``repro serve`` daemon turns the paper's offline two-phase profiler
into an always-on aggregation service: many concurrent profiled runs
stream their v2 object logs over TCP, frames fan out by allocation-site
hash to shard workers each running an incremental
:class:`~repro.stream.aggregate.StreamingDragAnalysis`, shards merge
associatively on demand, and live per-site drag rankings plus
Prometheus metrics are one HTTP GET away. Layout:

* :mod:`repro.serve.protocol` — handshake + wire framing;
* :mod:`repro.serve.shard` — site-hash partitioner and shard workers;
* :mod:`repro.serve.merge` — associative merge and the rankings
  payload, plus the merge-equals-batch proof;
* :mod:`repro.serve.server` — the asyncio daemon;
* :mod:`repro.serve.client` — ``ServeSink`` (live profile streaming),
  log replay, and HTTP fetch helpers.
"""

from repro.serve.client import (
    ServeSink,
    fetch_json,
    fetch_metrics_text,
    fetch_rankings,
    replay_log,
)
from repro.serve.merge import (
    merge_snapshots,
    prove_merge_equals_batch,
    rankings_payload,
    render_rankings_text,
)
from repro.serve.protocol import DEFAULT_PORT, parse_hostport
from repro.serve.server import (
    DragServer,
    ServeConfig,
    ServerHandle,
    start_server_thread,
)
from repro.serve.shard import (
    InlineShard,
    ProcessShard,
    make_shards,
    partition_records,
    site_shard,
)

__all__ = [
    "ServeSink",
    "replay_log",
    "fetch_json",
    "fetch_rankings",
    "fetch_metrics_text",
    "merge_snapshots",
    "rankings_payload",
    "render_rankings_text",
    "prove_merge_equals_batch",
    "DEFAULT_PORT",
    "parse_hostport",
    "DragServer",
    "ServeConfig",
    "ServerHandle",
    "start_server_thread",
    "InlineShard",
    "ProcessShard",
    "make_shards",
    "partition_records",
    "site_shard",
]
