"""Shard workers: where the daemon's aggregation actually happens.

The accept loop never decodes a RECORD frame. It peeks the allocation
site label (:func:`repro.stream.codec.peek_site_label`), hashes it to a
shard index, and forwards the raw frame payload; the shard worker owns
the full decode and folds the record into its own incremental
:class:`~repro.stream.aggregate.StreamingDragAnalysis`. Because the
partition key is the site label, every site's stats live wholly in one
shard, and the on-demand merge (:mod:`repro.serve.merge`) only has to
union disjoint-ish tables — but correctness never depends on the
partition: per-site sums are associative, so *any* assignment of
records to shards merges to the batch answer.

String-table frames are broadcast to every shard (record payloads
reference string ids, and ids are per-stream), keyed by stream id so
concurrent clients cannot alias each other's tables.

Two interchangeable shard flavours:

* :class:`InlineShard` — in-process, for tests, ``--inline`` serving,
  and the merge proof;
* :class:`ProcessShard` — a daemonized worker process fed over a
  :mod:`multiprocessing` pipe. Sends block when the pipe is full, which
  is the backpressure path: the accept loop awaits the send in an
  executor thread, stops reading that client's socket, and TCP flow
  control does the rest.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.stream.aggregate import StreamingDragAnalysis
from repro.stream.codec import _decode_record


def site_shard(label: str, nshards: int) -> int:
    """Stable allocation-site partitioner.

    crc32 rather than ``hash()``: the mapping must agree across worker
    processes and across runs (PYTHONHASHSEED randomizes ``str.__hash__``).
    """
    return zlib.crc32(label.encode("utf-8")) % nshards


def partition_records(records: Sequence, nshards: int) -> List[List]:
    """Split decoded records by site hash — the proof-side mirror of the
    daemon's frame routing."""
    shards: List[List] = [[] for _ in range(nshards)]
    for record in records:
        shards[site_shard(record.site_label, nshards)].append(record)
    return shards


class _ShardState:
    """The aggregation state shared by both shard flavours."""

    def __init__(self, timeline_bin_bytes: Optional[int] = None) -> None:
        self.analysis = StreamingDragAnalysis()
        if timeline_bin_bytes:
            from repro.obs.timeline import TimelineBuilder

            # Rides along on the analysis so snapshot pickling and the
            # merge (StreamingDragAnalysis.merge adopts timelines) need
            # no extra plumbing.
            self.analysis.timeline = TimelineBuilder(bin_bytes=timeline_bin_bytes)
        self.tables: Dict[int, List[str]] = {}
        self.records_seen = 0

    def add_strings(self, stream_id: int, strings: Sequence[str]) -> None:
        self.tables.setdefault(stream_id, []).extend(strings)

    def add_records(self, stream_id: int, payloads: Sequence[bytes]) -> None:
        table = self.tables.setdefault(stream_id, [])
        add = self.analysis.add
        for payload in payloads:
            add(_decode_record(payload, table))
        self.records_seen += len(payloads)

    def end_stream(self, stream_id: int, end_time: Optional[int]) -> None:
        self.tables.pop(stream_id, None)
        if end_time is not None:
            if self.analysis.end_time is None:
                self.analysis.end_time = end_time
            else:
                self.analysis.end_time = max(self.analysis.end_time, end_time)
            if self.analysis.timeline is not None:
                self.analysis.timeline.note_end(end_time)

    def snapshot(self) -> Tuple[StreamingDragAnalysis, int]:
        return self.analysis, self.records_seen


def _shard_main(index: int, conn, timeline_bin_bytes: Optional[int] = None) -> None:
    """Worker process body: a plain command loop over the pipe."""
    state = _ShardState(timeline_bin_bytes=timeline_bin_bytes)
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        cmd = msg[0]
        if cmd == "strings":
            state.add_strings(msg[1], msg[2])
        elif cmd == "records":
            state.add_records(msg[1], msg[2])
        elif cmd == "end_stream":
            state.end_stream(msg[1], msg[2])
        elif cmd == "snapshot":
            conn.send(state.snapshot())
        elif cmd == "stop":
            conn.send(state.snapshot())
            break
    conn.close()


class InlineShard:
    """In-process shard: the same interface, no pipe, no pickling."""

    def __init__(self, index: int, timeline_bin_bytes: Optional[int] = None) -> None:
        self.index = index
        self._state = _ShardState(timeline_bin_bytes=timeline_bin_bytes)

    def feed_strings(self, stream_id: int, strings: Sequence[str]) -> None:
        self._state.add_strings(stream_id, list(strings))

    def feed_records(self, stream_id: int, payloads: Sequence[bytes]) -> None:
        self._state.add_records(stream_id, payloads)

    def end_stream(self, stream_id: int, end_time: Optional[int] = None) -> None:
        self._state.end_stream(stream_id, end_time)

    def snapshot(self) -> Tuple[StreamingDragAnalysis, int]:
        return self._state.snapshot()

    def stop(self) -> Tuple[StreamingDragAnalysis, int]:
        return self._state.snapshot()


class ProcessShard:
    """One worker process, commanded over a pipe.

    All pipe traffic goes through one lock so concurrent feeder threads
    (one per active connection, via the server's executor) interleave at
    message granularity and a snapshot request cannot splice into the
    middle of a feed. ``feed_*`` block when the pipe buffer is full —
    that blocking *is* the backpressure contract.
    """

    def __init__(
        self,
        index: int,
        mp_context=None,
        timeline_bin_bytes: Optional[int] = None,
    ) -> None:
        import multiprocessing

        ctx = mp_context or multiprocessing.get_context()
        self.index = index
        self._conn, child = ctx.Pipe()
        self._lock = threading.Lock()
        self._proc = ctx.Process(
            target=_shard_main,
            args=(index, child, timeline_bin_bytes),
            name=f"repro-serve-shard-{index}",
            daemon=True,
        )
        self._proc.start()
        child.close()

    def feed_strings(self, stream_id: int, strings: Sequence[str]) -> None:
        with self._lock:
            self._conn.send(("strings", stream_id, list(strings)))

    def feed_records(self, stream_id: int, payloads: Sequence[bytes]) -> None:
        with self._lock:
            self._conn.send(("records", stream_id, list(payloads)))

    def end_stream(self, stream_id: int, end_time: Optional[int] = None) -> None:
        with self._lock:
            self._conn.send(("end_stream", stream_id, end_time))

    def snapshot(self) -> Tuple[StreamingDragAnalysis, int]:
        with self._lock:
            self._conn.send(("snapshot",))
            return self._conn.recv()

    def stop(self) -> Tuple[StreamingDragAnalysis, int]:
        """Final snapshot + worker shutdown; idempotent-ish (a second
        call returns empty state rather than hanging)."""
        with self._lock:
            if self._proc is None:
                return StreamingDragAnalysis(), 0
            try:
                self._conn.send(("stop",))
                final = self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                final = (StreamingDragAnalysis(), 0)
            self._conn.close()
            self._proc.join(timeout=10)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=5)
            self._proc = None
            return final

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()


def make_shards(
    n: int,
    inline: bool = False,
    timeline_bin_bytes: Optional[int] = None,
) -> List:
    """N shards of the requested flavour (inline when n == 0 too)."""
    if inline or n <= 0:
        return [
            InlineShard(i, timeline_bin_bytes=timeline_bin_bytes)
            for i in range(max(1, n))
        ]
    return [ProcessShard(i, timeline_bin_bytes=timeline_bin_bytes) for i in range(n)]
