"""Clients of the serve daemon: live sinks, replayers, HTTP readers.

:class:`ServeSink` is a :class:`~repro.stream.sinks.ProfileSink`, so
``repro profile --serve HOST:PORT`` plugs the daemon into the exact
place a log file would go — the profiler cannot tell the difference,
and a TeeSink can feed both at once. On the wire it is a
:class:`~repro.stream.codec.V2FrameEncoder` writing to the socket, so
the daemon ingests byte-for-byte what a ``.dlog2`` file would hold.

:func:`replay_log` is the load generator: it streams a recorded log to
the daemon, either raw (v2 bytes copied verbatim — maximum ingest
pressure) or re-encoded record by record (the cost profile of a live
profiler client).
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Optional, Union

from repro.errors import ProfileError
from repro.serve.protocol import (
    DEFAULT_PORT,
    encode_hello,
    parse_hostport,
    read_json_frame_sync,
)
from repro.stream.codec import MAGIC, V2FrameEncoder
from repro.stream.sinks import ProfileSink


def _connect(host: str, port: int, timeout: Optional[float]):
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class ServeSink(ProfileSink):
    """Stream profile events to a serve daemon over TCP.

    The handshake happens in the constructor, so a refused connection
    fails fast — before the profiled run starts — rather than surfacing
    mid-run. ``on_end`` sends the END frame, waits for the daemon's FIN
    acknowledging how many records it routed, and closes.
    """

    def __init__(
        self,
        host: str,
        port: int = DEFAULT_PORT,
        metadata: Optional[dict] = None,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.stream_id: Optional[int] = None
        self.server_records: Optional[int] = None
        self.server_truncated: Optional[bool] = None
        self._closed = False
        try:
            self._sock = _connect(host, port, timeout)
        except OSError as exc:
            raise ProfileError(
                f"cannot reach serve daemon at {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._file.write(encode_hello(metadata))
        self._file.flush()
        ack = read_json_frame_sync(self._file, source=f"{host}:{port}")
        if not ack.get("ok"):
            raise ProfileError(f"{host}:{port}: serve daemon refused stream: {ack}")
        self.stream_id = ack.get("stream_id")
        self.shards = ack.get("shards")
        self._encoder = V2FrameEncoder(self._file, metadata=metadata)

    @property
    def count(self) -> int:
        return self._encoder.count

    def on_record(self, record) -> None:
        self._encoder.write_record(record)

    def on_sample(self, sample) -> None:
        self._encoder.write_sample(sample)
        self._file.flush()  # deep-GC points are the live-ness heartbeat

    def on_end(self, end_time: int, finalizer_errors: int = 0) -> None:
        if self._closed:
            return
        self._encoder.write_end(
            end_time=end_time, finalizer_errors=finalizer_errors
        )
        self._file.flush()
        self._sock.shutdown(socket.SHUT_WR)
        try:
            fin = read_json_frame_sync(
                self._file, source=f"{self.host}:{self.port}"
            )
            self.server_records = fin.get("records")
            self.server_truncated = fin.get("truncated")
        except ProfileError:
            pass
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._file.close()
            except OSError:
                pass
            self._sock.close()


def replay_log(
    path: Union[str, Path],
    host: str,
    port: int = DEFAULT_PORT,
    mode: str = "records",
    metadata: Optional[dict] = None,
    chunk_size: int = 1 << 16,
    timeout: Optional[float] = 60.0,
    rate: Optional[float] = None,
    sample_bytes: Optional[int] = None,
    seed: int = 0,
) -> dict:
    """Feed a recorded profile log to the daemon; returns the FIN ack.

    ``mode="records"`` decodes the log (v1 or v2) and re-encodes every
    record through the sink path — each replay client pays the same
    per-record cost a live profiler would, which is what the throughput
    bench wants N of. ``mode="raw"`` requires a v2 file and copies its
    bytes verbatim — the fastest possible single producer, for stressing
    the ingest loop itself.

    ``rate`` (records mode only) paces the replay to roughly that many
    records per second — open-loop load generation, which is how a real
    profiler client behaves: it produces at the profiled program's
    allocation rate, not at socket speed.

    ``sample_bytes``/``seed`` (records mode only) byte-resample the log
    client-side before sending: each surviving record's weight is
    multiplied by the new Horvitz-Thompson correction, so the daemon's
    weighted aggregates still estimate the full log. ``sample_bytes=1``
    (or None) sends every record unchanged.
    """
    path = Path(path)
    if mode == "raw":
        with open(path, "rb") as f:
            head = f.read(len(MAGIC))
            if head != MAGIC:
                raise ProfileError(f"{path}: raw replay needs a v2 log")
            sock = _connect(host, port, timeout)
            fp = sock.makefile("rwb")
            try:
                fp.write(encode_hello(metadata or {"replay": str(path)}))
                fp.write(head)
                while True:
                    chunk = f.read(chunk_size)
                    if not chunk:
                        break
                    fp.write(chunk)
                fp.flush()
                read_json_frame_sync(fp, source=f"{host}:{port}")  # ACK
                sock.shutdown(socket.SHUT_WR)
                return read_json_frame_sync(fp, source=f"{host}:{port}")
            finally:
                fp.close()
                sock.close()
    if mode != "records":
        raise ValueError(f"unknown replay mode {mode!r}")
    from repro.core.logfile import read_log

    loaded = read_log(path, strict=False)
    records = loaded.records
    if sample_bytes is not None and sample_bytes > 1:
        from repro.core.sampler import ByteSampler

        sampler = ByteSampler(sample_bytes, seed=seed)
        resampled = []
        for record in records:
            weight = sampler.sample(record.size)
            if weight:
                resampled.append(
                    record
                    if weight == 1.0
                    else record.with_weight(record.weight * weight)
                )
        records = resampled
    sink = ServeSink(
        host, port, metadata=metadata or {"replay": str(path)}, timeout=timeout
    )
    if rate:
        import time as _time

        started = _time.perf_counter()
        for index, record in enumerate(records):
            sink.on_record(record)
            if index % 64 == 63:
                ahead = (index + 1) / rate - (_time.perf_counter() - started)
                if ahead > 0:
                    _time.sleep(ahead)
    else:
        for record in records:
            sink.on_record(record)
    for sample in loaded.samples:
        sink.on_sample(sample)
    sink.on_end(loaded.end_time or 0, finalizer_errors=loaded.finalizer_errors or 0)
    return {
        "ok": not sink.server_truncated,
        "records": sink.server_records,
        "sent": sink.count,
        "truncated": sink.server_truncated,
    }


# -- HTTP read side --------------------------------------------------------


def fetch_json(
    hostport: Union[str, tuple], path: str, timeout: float = 30.0
) -> dict:
    """GET a JSON endpoint from the daemon's HTTP port."""
    import json
    from urllib.request import urlopen

    host, port = (
        parse_hostport(hostport) if isinstance(hostport, str) else hostport
    )
    with urlopen(f"http://{host}:{port}{path}", timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def fetch_rankings(
    hostport: Union[str, tuple],
    top: Optional[int] = None,
    table: str = "site",
    timeout: float = 30.0,
) -> dict:
    """GET /rankings; ``top=None`` asks for the full table."""
    top_arg = "all" if top is None else str(top)
    return fetch_json(
        hostport, f"/rankings?top={top_arg}&table={table}", timeout=timeout
    )


def fetch_metrics_text(hostport: Union[str, tuple], timeout: float = 30.0) -> str:
    """GET /metrics (Prometheus text exposition)."""
    from urllib.request import urlopen

    host, port = (
        parse_hostport(hostport) if isinstance(hostport, str) else hostport
    )
    with urlopen(f"http://{host}:{port}/metrics", timeout=timeout) as resp:
        return resp.read().decode("utf-8")
