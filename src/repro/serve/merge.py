"""Associative shard merge and the rankings it serves.

The merge primitive is :meth:`StreamingDragAnalysis.merge` from PR 1 —
per-site sums are associative and commutative, so folding the shard
snapshots in any order equals a single-stream analysis of the
concatenated logs, which in turn is bit-identical to the batch
:class:`~repro.core.analyzer.DragAnalysis` (pinned by
``tests/stream/test_aggregate.py``). :func:`prove_merge_equals_batch`
is the executable form of that argument: it shards a record list K
ways, merges, and requires the full (untruncated) rankings payload to
be equal — not approximately, ``==`` on the JSON-able structure — to
the batch analyzer's.

:func:`rankings_payload` is deliberately duck-typed over both analyzers
so the server (merged shards) and ``repro report`` (batch) serialize
through literally the same code path; "bit-identical rankings" then
means equality of these payloads.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.stream.aggregate import StreamingDragAnalysis


def merge_snapshots(
    snapshots: Iterable[StreamingDragAnalysis],
) -> StreamingDragAnalysis:
    """Fold shard snapshots into one fresh analysis (inputs untouched)."""
    merged = StreamingDragAnalysis()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged


def _key_json(key) -> object:
    """Partition keys JSON-ably: site labels stay strings, nested
    chains and (site, last-use) pairs become lists."""
    if isinstance(key, str):
        return key
    return list(key)


def rankings_payload(
    analysis, top: Optional[int] = None, table: str = "site"
) -> dict:
    """The /rankings response body, computed from either analyzer.

    ``table`` is ``"site"`` (plain allocation site), ``"nested"`` (call
    chain), or ``"never_used"`` (§2.2's sure-bet partition). ``top``
    of None means all groups — what the equivalence proof compares.
    """
    if table == "site":
        groups = analysis.sorted_sites(top)
    elif table == "nested":
        groups = analysis.sorted_nested(top)
    elif table == "never_used":
        groups = analysis.never_used_sites(top)
    else:
        raise ValueError(f"unknown rankings table {table!r}")
    total_drag = analysis.total_drag
    est_total_drag = analysis.est_total_drag
    sites = [
        {
            "rank": rank,
            "site": _key_json(group.key),
            "drag": group.total_drag,
            # Weight-corrected estimate; == "drag" (same int) for
            # full-rate streams, so pre-sampling payloads are unchanged
            # except for the added est_*/effective_sample_rate keys.
            "est_drag": group.est_drag,
            "drag_share": (
                group.est_drag / est_total_drag if est_total_drag > 0 else 0.0
            ),
            "objects": group.count,
            "est_objects": group.est_count,
            "bytes": group.total_bytes,
            "est_bytes": group.est_bytes,
            "in_use": group.total_in_use,
            "never_used": group.never_used_count,
            "never_used_drag": group.never_used_drag,
            # Sorted, not insertion-ordered: arrival order differs per
            # shard, so only the set is associative under merge.
            "types": sorted(group.type_names),
        }
        for rank, group in enumerate(groups, start=1)
    ]
    est_bytes = analysis.est_total_bytes
    return {
        "table": table,
        "objects": analysis.object_count,
        "est_objects": analysis.est_object_count,
        "total_bytes": analysis.total_bytes,
        "est_total_bytes": est_bytes,
        "total_drag": total_drag,
        "est_total_drag": est_total_drag,
        "effective_sample_rate": (
            analysis.total_bytes / est_bytes if est_bytes > 0 else 1.0
        ),
        "sites": sites,
    }


def render_rankings_text(rankings: dict, summary: Optional[dict] = None) -> str:
    """``repro report --serve``'s phase-2-style text over a /rankings
    body (plus /summary context when available)."""
    mb2 = float(1 << 20) ** 2
    lines = ["=== Drag report (from serve daemon) ==="]
    lines.append(
        f"objects logged: {rankings['objects']}"
        f"   total drag: {rankings['total_drag'] / mb2:.4f} MB^2"
    )
    rate = rankings.get("effective_sample_rate", 1.0)
    if rate != 1.0 or rankings.get("est_total_drag", 0) != rankings["total_drag"]:
        lines.append(
            f"byte-sampled: effective rate {rate:.6f}"
            f"   est objects: {rankings['est_objects']:.1f}"
            f"   est total drag: {rankings['est_total_drag'] / mb2:.4f} MB^2"
        )
    if summary:
        streams = summary.get("streams", [])
        truncated = sum(1 for s in streams if s.get("truncated"))
        lines.append(
            f"streams: {len(streams)}"
            f"   active: {summary.get('active_clients', 0)}"
            f"   shards: {len(summary.get('shards', []))}"
            + (f"   truncated: {truncated}" if truncated else "")
        )
    table = rankings.get("table", "site")
    label = {"site": "allocation sites", "nested": "nested allocation sites",
             "never_used": "never-used allocation sites"}[table]
    sites = rankings["sites"]
    lines.append("")
    lines.append(f"--- top {len(sites)} {label} by drag ---")
    for entry in sites:
        key = entry["site"]
        name = key if isinstance(key, str) else " <- ".join(key)
        lines.append(
            f"#{entry['rank']} {name}"
        )
        lines.append(
            f"    drag {entry.get('est_drag', entry['drag']) / mb2:.4f} MB^2"
            f" ({100.0 * entry['drag_share']:.1f}% of total)"
            f"   objects {entry['objects']}"
            f"   bytes {entry['bytes']}"
            f"   never-used {entry['never_used']}"
        )
        if entry["types"]:
            lines.append(f"    types: {', '.join(entry['types'])}")
    if not sites:
        lines.append("(no records ingested yet)")
    return "\n".join(lines)


def prove_merge_equals_batch(
    records: Sequence,
    shard_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    by_site_hash: bool = True,
    timelines: bool = False,
    timeline_bin_bytes: Optional[int] = None,
    end_time: Optional[int] = None,
) -> dict:
    """Verify merge-equals-batch on ``records``; returns the proof.

    For every K in ``shard_counts`` the records are split K ways — by
    the daemon's site-hash partitioner, and (when a ``seed`` RNG is
    given) additionally by a uniformly random assignment, which is the
    stronger claim: associativity cannot lean on the partition being
    site-aligned. Each split is aggregated per-shard, merged, and the
    *full* rankings payloads (site, nested, and never-used tables) are
    required to equal the batch analyzer's. Raises AssertionError on
    the first mismatch.

    With ``timelines=True``, each per-shard analysis also carries a
    :class:`~repro.obs.timeline.TimelineBuilder` (as the serve shards
    do) and the merged untruncated ``/timeline`` payload must equal a
    batch builder's over the same records — every bin of every series,
    site strip, and histogram bucket. ``end_time`` pins the declared
    stream end on both sides, mirroring the END frame.
    """
    from repro.core.analyzer import DragAnalysis

    from repro.serve.shard import partition_records

    batch = DragAnalysis(records)
    expected = {
        table: rankings_payload(batch, table=table)
        for table in ("site", "nested", "never_used")
    }
    expected_timeline = None
    bin_bytes = None
    if timelines:
        from repro.obs.timeline import DEFAULT_BIN_BYTES, TimelineBuilder

        bin_bytes = timeline_bin_bytes or DEFAULT_BIN_BYTES
        batch_timeline = TimelineBuilder(bin_bytes=bin_bytes).consume(records)
        batch_timeline.note_end(end_time)
        expected_timeline = batch_timeline.payload(top=None, include_samples=False)
    rng = random.Random(seed)
    checked = 0
    for k in shard_counts:
        splits: List[List[List]] = []
        if by_site_hash:
            splits.append(partition_records(records, k))
        random_split: List[List] = [[] for _ in range(k)]
        for record in records:
            random_split[rng.randrange(k)].append(record)
        splits.append(random_split)
        for split in splits:
            analyses = []
            for shard in split:
                analysis = StreamingDragAnalysis()
                if timelines:
                    from repro.obs.timeline import TimelineBuilder

                    analysis.timeline = TimelineBuilder(bin_bytes=bin_bytes)
                analysis.consume(shard)
                if timelines:
                    analysis.timeline.note_end(end_time)
                analyses.append(analysis)
            merged = merge_snapshots(analyses)
            for table, want in expected.items():
                got = rankings_payload(merged, table=table)
                assert got == want, (
                    f"merge != batch for K={k} shards, table={table!r}"
                )
            if timelines:
                got_timeline = merged.timeline.payload(
                    top=None, include_samples=False
                )
                assert got_timeline == expected_timeline, (
                    f"timeline merge != batch for K={k} shards"
                )
            checked += 1
    proof = {
        "records": len(records),
        "shard_counts": list(shard_counts),
        "splits_checked": checked,
        "sites": len(expected["site"]["sites"]),
        "total_drag": expected["site"]["total_drag"],
    }
    if timelines:
        proof["timeline_bins"] = expected_timeline["bins"]
        proof["timeline_bin_bytes"] = bin_bytes
    return proof
