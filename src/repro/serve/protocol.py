"""Wire protocol between profile clients and the serve daemon.

One TCP connection carries one profile stream::

    client -> server   HELLO: "RSV1" VERSION(1 byte) uvarint(len) JSON
    server -> client   ACK:   uvarint(len) JSON {ok, stream_id, shards}
    client -> server   the v2 log byte stream ("RDL2" header + frames)
    server -> client   FIN:   uvarint(len) JSON {ok, records, truncated}

The HELLO JSON carries run metadata (program name, run label, whatever
``repro profile`` knows); the server threads it into the stream's
identity for /summary. Everything after the ACK is byte-identical to a
v2 log file, so a recorded ``.dlog2`` can be replayed verbatim and the
server's per-connection parser is exactly the file parser
(:class:`repro.stream.codec.FrameParser`).
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

from repro.errors import ProfileError
from repro.stream.codec import _read_uvarint, _write_uvarint

HELLO_MAGIC = b"RSV1"
PROTOCOL_VERSION = 1

#: Default TCP ingest port; the HTTP port defaults to this + 1.
DEFAULT_PORT = 7091


class ProtocolError(ProfileError):
    """A peer violated the serve handshake."""


def encode_json_frame(obj: dict) -> bytes:
    """uvarint(len) + JSON — the ACK/FIN framing."""
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    buf = bytearray()
    _write_uvarint(buf, len(payload))
    return bytes(buf) + payload


def encode_hello(metadata: Optional[dict] = None) -> bytes:
    """The client's opening bytes: magic, version, metadata frame."""
    hello = {"protocol": PROTOCOL_VERSION}
    if metadata:
        hello["metadata"] = metadata
    return HELLO_MAGIC + bytes([PROTOCOL_VERSION]) + encode_json_frame(hello)


def _decode_json(payload: bytes, source: str) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"{source}: bad JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"{source}: JSON frame is not an object")
    return obj


def read_json_frame_sync(fp, source: str = "<peer>") -> dict:
    """Read one length-prefixed JSON frame from a blocking file-like."""
    length = 0
    shift = 0
    while True:
        byte = fp.read(1)
        if not byte:
            raise ProtocolError(f"{source}: connection closed mid-frame")
        length |= (byte[0] & 0x7F) << shift
        if not byte[0] & 0x80:
            break
        shift += 7
    payload = fp.read(length)
    if len(payload) != length:
        raise ProtocolError(f"{source}: connection closed mid-frame")
    return _decode_json(payload, source)


async def read_json_frame(reader, source: str = "<peer>") -> dict:
    """Read one length-prefixed JSON frame from an asyncio StreamReader."""
    import asyncio

    length = 0
    shift = 0
    try:
        while True:
            byte = await reader.readexactly(1)
            length |= (byte[0] & 0x7F) << shift
            if not byte[0] & 0x80:
                break
            shift += 7
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(f"{source}: connection closed mid-frame") from exc
    return _decode_json(payload, source)


async def read_hello(reader, source: str = "<peer>") -> dict:
    """Server side: consume and validate the client HELLO; returns its
    metadata dict (possibly empty)."""
    import asyncio

    try:
        magic = await reader.readexactly(len(HELLO_MAGIC) + 1)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(f"{source}: connection closed before HELLO") from exc
    if magic[: len(HELLO_MAGIC)] != HELLO_MAGIC:
        raise ProtocolError(f"{source}: not a repro serve client (bad magic)")
    version = magic[len(HELLO_MAGIC)]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"{source}: unsupported protocol version {version}")
    hello = await read_json_frame(reader, source)
    return hello.get("metadata") or {}


def decode_json_frame(data: bytes, pos: int = 0) -> Tuple[dict, int]:
    """Decode one JSON frame at ``pos`` in a buffer; returns
    (object, next_pos). For tests and offline tools."""
    length, pos = _read_uvarint(data, pos)
    return _decode_json(data[pos : pos + length], "<buffer>"), pos + length


def parse_hostport(spec: str, default_port: int = DEFAULT_PORT) -> Tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` → (host, port)."""
    host, sep, port = spec.rpartition(":")
    if not sep:
        return spec or "127.0.0.1", default_port
    try:
        return host or "127.0.0.1", int(port)
    except ValueError as exc:
        raise ProtocolError(f"bad host:port {spec!r}") from exc
