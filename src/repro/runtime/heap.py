"""The simulated heap.

The heap owns the *byte-allocation clock*: time, everywhere in this
reproduction, is "bytes allocated since the beginning of program
execution" (§2.1.1). Every allocation advances the clock by the object's
size and notifies the attached profiler, which may request a deep GC at
the next safe point (instruction boundary).

Python's own memory management is irrelevant here: reachability is
defined purely by this heap's object graph and the interpreter's roots,
so drag semantics match a tracing JVM, not CPython's refcounting.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import OutOfMemory
from repro.bytecode.program import CompiledClass
from repro.runtime.objects import ArrayObject, HeapObject, Instance, default_field_values


class HeapStats:
    """Allocation/GC counters used by the runtime cost model (Table 4)."""

    __slots__ = (
        "objects_allocated",
        "bytes_allocated",
        "gc_runs",
        "objects_marked",
        "objects_swept",
        "bytes_reclaimed",
        "finalizers_run",
        "minor_gc_runs",
        "major_gc_runs",
        "gc_pause_seconds",
        "deep_gc_runs",
    )

    def __init__(self) -> None:
        self.objects_allocated = 0
        self.bytes_allocated = 0
        self.gc_runs = 0
        self.objects_marked = 0
        self.objects_swept = 0
        self.bytes_reclaimed = 0
        self.finalizers_run = 0
        self.minor_gc_runs = 0
        self.major_gc_runs = 0
        # Wall-clock time spent inside collections (stop-the-world
        # pause), and §2.1.1 deep-GC cycle count. Wall time is outside
        # the deterministic core — it never feeds the byte clock or the
        # profile — but it is what "the GC is eating my run" questions
        # need answered.
        self.gc_pause_seconds = 0.0
        self.deep_gc_runs = 0


class Heap:
    """Handle-based object store with a byte clock.

    ``profiler`` (if set) receives ``on_alloc``/``on_free`` callbacks and
    can request sampling via ``sample_pending``. ``max_bytes`` bounds the
    live heap; exceeding it after a forced GC raises :class:`OutOfMemory`
    (which the interpreter turns into a mini-Java OutOfMemoryError).
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        self.objects: Dict[int, HeapObject] = {}
        self.next_handle = 1
        self.clock = 0  # bytes allocated since program start
        self.live_bytes = 0
        self.max_bytes = max_bytes
        self.interned: Dict[str, Instance] = {}
        self.temp_roots: List[HeapObject] = []
        self.profiler = None  # set by Interpreter when profiling
        # Optional repro.obs.Telemetry; collectors report pause/occupancy
        # metrics through it. None keeps every GC path check-free past
        # one attribute test per collection.
        self.telemetry = None
        self.stats = HeapStats()
        # Called when an allocation would exceed max_bytes; should run a
        # synchronous full GC. Installed by the interpreter.
        self.gc_request: Optional[Callable[[], None]] = None
        # Generational-collector hooks: new-object notification, the
        # old-to-young write barrier, a poll asking whether a (minor)
        # collection is due, and the resulting pending flag the
        # interpreter services at the next instruction boundary.
        self.on_new_object: Optional[Callable[[HeapObject], None]] = None
        self.barrier: Optional[Callable[[HeapObject, object], None]] = None
        self.gc_poll: Optional[Callable[[], bool]] = None
        self.gc_pending = False

    # -- allocation ----------------------------------------------------------

    def _register(self, obj: HeapObject) -> HeapObject:
        if self.max_bytes is not None and self.live_bytes + obj.size > self.max_bytes:
            if self.gc_request is not None:
                self.temp_roots.append(obj)
                try:
                    self.gc_request()
                finally:
                    self.temp_roots.pop()
            if self.live_bytes + obj.size > self.max_bytes:
                raise OutOfMemory(
                    f"live {self.live_bytes}B + {obj.size}B exceeds {self.max_bytes}B"
                )
        self.objects[obj.handle] = obj
        self.clock += obj.size
        self.live_bytes += obj.size
        self.stats.objects_allocated += 1
        self.stats.bytes_allocated += obj.size
        if self.on_new_object is not None:
            self.on_new_object(obj)
        if self.profiler is not None:
            self.profiler.on_alloc(obj)
        if self.gc_poll is not None and self.gc_poll():
            self.gc_pending = True
        return obj

    def new_instance(self, cls: CompiledClass) -> Instance:
        handle = self.next_handle
        self.next_handle += 1
        obj = Instance(
            handle,
            cls.name,
            cls.layout.instance_bytes,
            default_field_values(cls.layout.descriptors),
        )
        self._register(obj)
        return obj

    def new_array(self, elem_desc: str, elem_repr: str, length: int) -> ArrayObject:
        handle = self.next_handle
        self.next_handle += 1
        obj = ArrayObject(handle, elem_desc, elem_repr, length)
        self._register(obj)
        return obj

    # -- use events ------------------------------------------------------------

    def note_use(self, obj: HeapObject) -> None:
        """Record a use of ``obj`` at the current clock (profiler hook)."""
        if self.profiler is not None:
            self.profiler.on_use(obj)

    # -- reclamation (called by the collector) ----------------------------------

    def reclaim(self, obj: HeapObject) -> None:
        del self.objects[obj.handle]
        self.live_bytes -= obj.size
        self.stats.objects_swept += 1
        self.stats.bytes_reclaimed += obj.size
        if self.profiler is not None:
            self.profiler.on_free(obj)

    # -- queries ---------------------------------------------------------------

    def iter_objects(self) -> Iterable[HeapObject]:
        return self.objects.values()

    def object_count(self) -> int:
        return len(self.objects)

    def reachable_bytes_now(self) -> int:
        """Live (registered) bytes — between GCs this over-approximates
        reachability; right after a GC it equals reachable bytes."""
        return self.live_bytes
