"""The mini-Java virtual machine: heap, garbage collector, interpreter.

This package is the stand-in for Sun's classic JVM 1.2 that the paper
instrumented. It reproduces the properties drag measurement depends on:

* a handle-indirected heap whose object sizes include header and 8-byte
  alignment padding,
* reachability-based mark-sweep GC with finalization and *deep GC*
  (collect → finalize → collect),
* an interpreter that can report every *object use* event — getfield,
  putfield, invokevirtual, monitorenter/exit, array access, and native
  handle dereference — to an attached profiler.

Execution is layered (see :mod:`repro.runtime.engine`): the
``baseline`` engine is the classic if/elif interpreter, the
``compiled`` engine pre-translates each method into handler closures
with profiler hooks specialized in or out, and :class:`Engine` /
:class:`VMConfig` are the facade every caller wires VMs through.
"""

from repro.runtime.heap import Heap
from repro.runtime.compiled import CompiledInterpreter
from repro.runtime.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    Engine,
    VMConfig,
    create_vm,
    run_program,
)
from repro.runtime.hooks import NullHooks, ProfilerHooks, RuntimeHooks
from repro.runtime.interpreter import Interpreter
from repro.runtime.library import LIBRARY_SOURCE, library_program, link

__all__ = [
    "Heap",
    "Interpreter",
    "CompiledInterpreter",
    "Engine",
    "VMConfig",
    "create_vm",
    "run_program",
    "ENGINES",
    "DEFAULT_ENGINE",
    "RuntimeHooks",
    "NullHooks",
    "ProfilerHooks",
    "LIBRARY_SOURCE",
    "library_program",
    "link",
]
