"""Reachability-based mark-sweep collector with finalization support.

The paper's *deep GC* (§2.1.1) is: (1) GC, (2) run finalizers for all
objects waiting for finalization, (3) GC. The collector implements steps
1 and 3 plus the discovery of finalizable objects; actually *running*
finalizers requires executing mini-Java code, so the interpreter drives
the full deep-GC cycle (see ``Interpreter.deep_gc``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, List

from repro.bytecode.program import CompiledProgram
from repro.runtime.heap import Heap
from repro.runtime.objects import HeapObject, Instance


class MarkSweepCollector:
    """Classic stop-the-world mark-sweep over the whole heap."""

    def __init__(self, heap: Heap, program: CompiledProgram) -> None:
        self.heap = heap
        self.program = program
        # Objects discovered unreachable whose finalize() has not run yet.
        self.finalize_queue: List[Instance] = []

    def has_finalizer(self, obj: HeapObject) -> bool:
        if not isinstance(obj, Instance):
            return False
        method = self.program.lookup_method(obj.class_name, "finalize")
        return method is not None and not method.is_native

    def mark(self, roots: Iterable[HeapObject]) -> int:
        """Mark all objects reachable from ``roots``; return mark count."""
        stack: List[HeapObject] = []
        for obj in roots:
            if isinstance(obj, HeapObject) and not obj.marked:
                obj.marked = True
                stack.append(obj)
        marked = len(stack)
        while stack:
            obj = stack.pop()
            for ref in obj.iter_references():
                if not ref.marked:
                    ref.marked = True
                    marked += 1
                    stack.append(ref)
        return marked

    def collect(self, roots: Iterable[HeapObject], force_major: bool = False) -> int:
        """One GC: mark from roots, sweep unmarked, queue finalizables.

        Returns the number of bytes reclaimed. Objects with a pending
        finalizer are resurrected onto the finalize queue instead of
        being reclaimed (and are treated as roots until finalized).
        ``force_major`` is accepted for interface compatibility with the
        generational collector; every mark-sweep collection is major.
        """
        heap = self.heap
        heap.stats.gc_runs += 1
        started = perf_counter()
        # Finalize-queue members must survive until their finalizer runs.
        marked = self.mark(list(roots) + list(self.finalize_queue) + heap.temp_roots)
        heap.stats.objects_marked += marked
        reclaimed = 0
        dead = [obj for obj in heap.objects.values() if not obj.marked]
        # Resurrect finalizable objects first so that anything they keep
        # alive is excluded from this cycle's sweep.
        for obj in dead:
            if not obj.marked and self.has_finalizer(obj) and not obj.finalize_scheduled:
                obj.finalize_scheduled = True
                self.finalize_queue.append(obj)
                self.mark([obj])
        for obj in dead:
            if not obj.marked:
                heap.reclaim(obj)
                reclaimed += obj.size
        for obj in heap.objects.values():
            obj.marked = False
        pause = perf_counter() - started
        heap.stats.gc_pause_seconds += pause
        if heap.telemetry is not None:
            heap.telemetry.record_gc(
                pause, reclaimed, heap.live_bytes, heap.object_count(), kind="major"
            )
        return reclaimed
