"""A two-generation copying-free generational collector.

Table 4 of the paper reports runtime under Sun HotSpot Client 1.3
because "it uses a generational GC. A generational GC delays the
collection of some unreachable objects in order to get better
performance. Thus, the potential benefit for saving drag time for an
object is decreased." This collector reproduces those dynamics:

* new objects are *young*; a minor collection scans only roots, the
  remembered set (old objects into which a reference to a young object
  was stored — maintained by a write barrier), and the young object
  graph;
* young survivors age and are promoted to the old generation;
* a major collection is a full mark-sweep (used under memory pressure
  and for the profiler's deep GCs).

Minor collections therefore do work proportional to the young
generation + remembered set, not the whole heap — which is exactly why
eliminating allocations (the paper's rewrites) reduces GC time.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, List

from repro.bytecode.program import CompiledProgram
from repro.runtime.gc import MarkSweepCollector
from repro.runtime.heap import Heap
from repro.runtime.objects import HeapObject


class GenerationalCollector(MarkSweepCollector):
    """Young/old collector with a remembered set. Drop-in replacement
    for :class:`MarkSweepCollector` (pass as ``collector_factory``)."""

    def __init__(
        self,
        heap: Heap,
        program: CompiledProgram,
        young_threshold: int = 256 * 1024,
        promote_age: int = 2,
    ) -> None:
        super().__init__(heap, program)
        self.young_threshold = young_threshold
        self.promote_age = promote_age
        self.young: dict = {}  # handle -> age
        self.young_bytes = 0
        self.remembered: set = set()  # old objects that may point to young
        heap.on_new_object = self._note_new
        heap.barrier = self._write_barrier

    # -- heap hooks -----------------------------------------------------------

    def _note_new(self, obj: HeapObject) -> None:
        self.young[obj.handle] = 0
        self.young_bytes += obj.size

    def _write_barrier(self, container: HeapObject, value) -> None:
        if (
            isinstance(value, HeapObject)
            and container.handle not in self.young
            and value.handle in self.young
        ):
            self.remembered.add(container)

    def is_young(self, obj: HeapObject) -> bool:
        return obj.handle in self.young

    # -- collections ---------------------------------------------------------

    def collect(self, roots: Iterable[HeapObject], force_major: bool = False) -> int:
        """Policy entry point: minor unless forced or the young
        generation is empty relative to pressure."""
        if force_major:
            return self.collect_major(roots)
        return self.collect_minor(roots)

    def should_collect_minor(self) -> bool:
        return self.young_bytes >= self.young_threshold

    def collect_minor(self, roots: Iterable[HeapObject]) -> int:
        heap = self.heap
        heap.stats.gc_runs += 1
        heap.stats.minor_gc_runs += 1
        started = perf_counter()
        young = self.young
        marked: set = set()
        stack: List[HeapObject] = []

        def visit(obj) -> None:
            if (
                isinstance(obj, HeapObject)
                and obj.handle in young
                and obj.handle not in marked
            ):
                marked.add(obj.handle)
                stack.append(obj)

        for obj in roots:
            visit(obj)
        for obj in heap.temp_roots:
            visit(obj)
        for obj in self.finalize_queue:
            visit(obj)
        for old_obj in self.remembered:
            if old_obj.handle in heap.objects:  # may have died in a major GC
                for ref in old_obj.iter_references():
                    visit(ref)
        while stack:
            obj = stack.pop()
            for ref in obj.iter_references():
                visit(ref)
        heap.stats.objects_marked += len(marked)

        dead = [
            heap.objects[h] for h in list(young) if h not in marked and h in heap.objects
        ]
        # Finalizable young objects are resurrected, like the full GC.
        for obj in dead:
            if obj.handle not in marked and self.has_finalizer(obj) and not obj.finalize_scheduled:
                obj.finalize_scheduled = True
                self.finalize_queue.append(obj)
                marked.add(obj.handle)
                stack.append(obj)
                while stack:
                    keep = stack.pop()
                    for ref in keep.iter_references():
                        visit(ref)
        reclaimed = 0
        for obj in dead:
            if obj.handle not in marked:
                self.young_bytes -= obj.size
                del young[obj.handle]
                heap.reclaim(obj)
                reclaimed += obj.size
        # Age and promote survivors.
        promoted: List[HeapObject] = []
        for handle in list(young):
            young[handle] += 1
            if young[handle] >= self.promote_age:
                obj = heap.objects[handle]
                self.young_bytes -= obj.size
                del young[handle]
                promoted.append(obj)
        for obj in promoted:
            if any(ref.handle in young for ref in obj.iter_references()):
                self.remembered.add(obj)
        pause = perf_counter() - started
        heap.stats.gc_pause_seconds += pause
        if heap.telemetry is not None:
            heap.telemetry.record_gc(
                pause, reclaimed, heap.live_bytes, heap.object_count(), kind="minor"
            )
        return reclaimed

    def collect_major(self, roots: Iterable[HeapObject]) -> int:
        heap = self.heap
        heap.stats.major_gc_runs += 1
        reclaimed = super().collect(roots)
        # Rebuild young bookkeeping: reclaimed young objects drop out.
        self.young = {h: age for h, age in self.young.items() if h in heap.objects}
        self.young_bytes = sum(heap.objects[h].size for h in self.young)
        self.remembered = {o for o in self.remembered if o.handle in heap.objects}
        return reclaimed
