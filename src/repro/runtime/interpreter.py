"""The bytecode interpreter.

Executes a :class:`repro.bytecode.program.CompiledProgram` over the
simulated heap. When a profiler is attached (see
:mod:`repro.core.profiler`), the interpreter reports:

* every allocation, with the allocation-site id of the allocating
  instruction and the current call chain (*nested allocation site*);
* every *object use* — getfield, putfield, invoking a method on the
  object, monitor enter/exit, array element access and length, and
  handle dereference inside native methods (§2.1.1's five event kinds);
* a safe point at every instruction boundary where the profiler may run
  a *deep GC* (collect → run finalizers → collect) and take a sample.

The interpreter is deterministic: no wall-clock, no hashing order
dependence on measurement paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import MiniJavaException, OutOfMemory, VMError
from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod, CompiledProgram
from repro.runtime.frames import Frame, make_locals
from repro.runtime.gc import MarkSweepCollector
from repro.runtime.heap import Heap
from repro.runtime.objects import ArrayObject, HeapObject, Instance


class MJThrow(Exception):
    """Internal signal: a mini-Java throwable is propagating."""

    __slots__ = ("obj",)

    def __init__(self, obj: Instance) -> None:
        super().__init__(obj.class_name)
        self.obj = obj


class ProgramResult:
    """Outcome of a program run: output and cost counters.

    ``finalizer_errors`` counts mini-Java exceptions thrown (and, as in
    Java, swallowed) by finalize() methods during the run — invisible
    in stdout, so surfaced here and in the CLI summaries.
    """

    __slots__ = ("stdout", "instructions", "heap_stats", "clock", "finalizer_errors")

    def __init__(
        self,
        stdout: List[str],
        instructions: int,
        heap_stats,
        clock: int,
        finalizer_errors: int = 0,
    ) -> None:
        self.stdout = stdout
        self.instructions = instructions
        self.heap_stats = heap_stats
        self.clock = clock
        self.finalizer_errors = finalizer_errors

    @property
    def output_text(self) -> str:
        return "\n".join(self.stdout)


class Interpreter:
    """A mini-JVM instance bound to one compiled program."""

    def __init__(
        self,
        program: CompiledProgram,
        max_heap: Optional[int] = None,
        profiler=None,
        collector_factory=None,
        natives=None,
        liveness_roots: bool = False,
        telemetry=None,
    ) -> None:
        self.program = program
        self.heap = Heap(max_bytes=max_heap)
        # Optional repro.obs.Telemetry. Observes only: spans and metric
        # updates read the byte clock but never advance it, so telemetry
        # on/off cannot change stdout, instruction counts, or profiles.
        self.telemetry = telemetry
        if telemetry is not None:
            self.heap.telemetry = telemetry
            telemetry.bind_clock(lambda: self.heap.clock)
        self.heap.gc_request = self.full_gc
        factory = collector_factory or MarkSweepCollector
        self.collector = factory(self.heap, program)
        if hasattr(self.collector, "should_collect_minor"):
            self.heap.gc_poll = self.collector.should_collect_minor
        self.frames: List[Frame] = []
        self.statics: Dict[str, Dict[str, object]] = {}
        self.stdout: List[str] = []
        self.instr_count = 0
        self.alloc_site: Optional[int] = None  # site id of the allocating instr
        self._return_value: object = None
        self._sampling = False
        self._finalizer_errors = 0
        self._vm_sites: Dict[str, int] = {}
        if natives is None:
            from repro.runtime.natives import default_natives

            natives = default_natives()
        self.natives = natives
        self.profiler = profiler
        if profiler is not None:
            profiler.attach(self)
            self.heap.profiler = profiler
        # Agesen-style liveness-aided GC (§5.1): dead local reference
        # slots are excluded from the root set, so objects held only by
        # dead locals are collected without any source rewrite.
        self.liveness_roots = liveness_roots
        self._liveness_cache: Dict[str, object] = {}
        self._init_statics()

    # ------------------------------------------------------------------
    # setup & roots
    # ------------------------------------------------------------------

    def _init_statics(self) -> None:
        for name, cls in self.program.classes.items():
            values: Dict[str, object] = {}
            for field in cls.static_fields:
                desc = cls.static_descriptors[field]
                if desc == "ref":
                    values[field] = None
                elif desc == "boolean":
                    values[field] = False
                else:
                    values[field] = 0
            self.statics[name] = values

    def iter_roots(self):
        """GC roots: frame locals and stacks, static fields, interned
        strings. (The collector adds temp roots and the finalize queue.)

        With ``liveness_roots`` enabled, a frame's dead local slots are
        skipped (the operand stack and ``this`` are always included)."""
        for frame in self.frames:
            if not self.liveness_roots or frame.method.is_native:
                yield from frame.iter_refs()
                continue
            live = self._method_liveness(frame.method)
            live_slots = live.live_slots_at(frame.pc)
            keep_this = 0 if frame.method.is_static else 1
            for slot, value in enumerate(frame.locals):
                if isinstance(value, HeapObject) and (
                    slot < keep_this or slot in live_slots
                ):
                    yield value
            for value in frame.stack:
                if isinstance(value, HeapObject):
                    yield value
        for values in self.statics.values():
            for value in values.values():
                if isinstance(value, HeapObject):
                    yield value
        yield from self.heap.interned.values()

    def _method_liveness(self, method: CompiledMethod):
        key = method.qualified_name
        cached = self._liveness_cache.get(key)
        if cached is None:
            from repro.analysis.liveness import liveness

            cached = self._liveness_cache[key] = liveness(method)
        return cached

    # ------------------------------------------------------------------
    # GC entry points
    # ------------------------------------------------------------------

    def full_gc(self) -> int:
        """One synchronous full (major) collection."""
        return self.collector.collect(self.iter_roots(), force_major=True)

    def run_finalizers(self) -> int:
        """Run every queued finalizer; returns how many ran."""
        ran = 0
        while self.collector.finalize_queue:
            obj = self.collector.finalize_queue.pop(0)
            method = self.program.lookup_method(obj.class_name, "finalize")
            if method is None or method.is_native:
                continue
            try:
                self.call_method(method, obj, [])
            except MiniJavaException:
                self._finalizer_errors += 1  # Java swallows these too
            ran += 1
            self.heap.stats.finalizers_run += 1
        return ran

    def deep_gc(self) -> None:
        """The paper's deep GC: GC, run all finalizers, GC (§2.1.1)."""
        self.heap.stats.deep_gc_runs += 1
        telemetry = self.telemetry
        if telemetry is None:
            self.full_gc()
            if self.run_finalizers():
                self.full_gc()
            return
        with telemetry.span("gc.deep", category="gc"):
            self.full_gc()
            if self.run_finalizers():
                self.full_gc()
        telemetry.record_deep_gc()

    @property
    def finalizer_errors(self) -> int:
        """Finalizer-thrown (and swallowed) exceptions so far."""
        return self._finalizer_errors

    # ------------------------------------------------------------------
    # program / method entry
    # ------------------------------------------------------------------

    def run(self, args: Optional[List[str]] = None) -> ProgramResult:
        """Run <clinit> of every class, then main(String[]); finish the
        profile (final deep GC + survivor logging) if one is attached."""
        main_class = self.program.main_class
        if main_class is None:
            raise VMError("program has no main class")
        for name in self.program.clinit_order:
            clinit = self.program.classes[name].clinit
            if clinit is not None:
                self.call_method(clinit, None, [])
        arg_objs = []
        for text in args or []:
            s = self.new_string(text)
            s.excluded = True
            chars = s.fields.get("chars")
            if chars is not None:
                chars.excluded = True
            arg_objs.append(s)
        self.heap.temp_roots.extend(arg_objs)
        try:
            arr = self.heap.new_array("ref", "String", len(arg_objs))
        finally:
            del self.heap.temp_roots[len(self.heap.temp_roots) - len(arg_objs):]
        arr.excluded = True
        arr.data[:] = arg_objs
        main = self.program.lookup_method(main_class, "main")
        self.call_method(main, None, [arr])
        if self.profiler is not None:
            self.profiler.on_program_end(self)
        result = ProgramResult(
            self.stdout,
            self.instr_count,
            self.heap.stats,
            self.heap.clock,
            finalizer_errors=self._finalizer_errors,
        )
        if self.telemetry is not None:
            self.telemetry.record_run(self, result)
        return result

    def call_method(self, method: CompiledMethod, receiver, args: List[object]):
        """Invoke a method from the host (or re-entrantly, e.g. for
        finalizers and toString); returns its mini-Java return value."""
        if method.is_native:
            return self._call_native(method, receiver, args)
        floor = len(self.frames)
        locals_ = make_locals(method, args, receiver)
        self.frames.append(Frame(method, locals_))
        self._return_value = None
        try:
            self._run_to(floor)
        except BaseException:
            del self.frames[floor:]
            raise
        return self._return_value

    def call_static(self, class_name: str, method_name: str, args: Optional[List[object]] = None):
        method = self.program.lookup_method(class_name, method_name)
        if method is None:
            raise VMError(f"no method {class_name}.{method_name}")
        return self.call_method(method, None, list(args or []))

    # ------------------------------------------------------------------
    # string helpers
    # ------------------------------------------------------------------

    def new_string(self, text: str, excluded: bool = False) -> Instance:
        """Allocate a String (and its backing char[]) holding ``text``."""
        heap = self.heap
        arr = heap.new_array("char", "char", len(text))
        arr.data[:] = [ord(c) for c in text]
        if excluded:
            arr.excluded = True
        heap.temp_roots.append(arr)
        try:
            s = heap.new_instance(self.program.classes["String"])
        finally:
            heap.temp_roots.pop()
        if excluded:
            s.excluded = True
        s.fields["chars"] = arr
        s.fields["count"] = len(text)
        return s

    def string_value(self, obj: Optional[Instance], use: bool = True) -> str:
        """Extract the Python string from a String instance (a native
        handle dereference: fires use events on the String and chars)."""
        if obj is None:
            raise MJThrow(self.make_throwable("NullPointerException", "null String"))
        if use:
            self.heap.note_use(obj)
        chars = obj.fields.get("chars")
        if chars is None:
            return ""
        if use:
            self.heap.note_use(chars)
        return "".join(map(chr, chars.data))

    def stringify(self, value) -> Instance:
        """Convert any mini-Java value to a String instance (TOSTR)."""
        if isinstance(value, Instance) and value.class_name == "String":
            return value
        if value is None:
            return self.new_string("null")
        if isinstance(value, bool):
            return self.new_string("true" if value else "false")
        if isinstance(value, int):
            return self.new_string(str(value))
        if isinstance(value, Instance):
            method = self.program.lookup_method(value.class_name, "toString")
            if method is not None and not method.is_native:
                result = self.call_method(method, value, [])
                if isinstance(result, Instance) and result.class_name == "String":
                    return result
                return self.new_string("null")
            return self.new_string(f"{value.class_name}@{value.handle}")
        if isinstance(value, ArrayObject):
            return self.new_string(f"{value.type_name()}@{value.handle}")
        raise VMError(f"cannot stringify {value!r}")

    # ------------------------------------------------------------------
    # throwables
    # ------------------------------------------------------------------

    def make_throwable(self, class_name: str, message: str = "") -> Instance:
        """Allocate a VM-raised throwable (NPE, OOM, ...) directly."""
        cls = self.program.classes.get(class_name)
        if cls is None:
            raise VMError(f"missing library exception class {class_name}")
        if class_name not in self._vm_sites:
            self._vm_sites[class_name] = self.program.add_site(
                "<vm>", "throw", 0, "new", class_name, True
            )
        self.alloc_site = self._vm_sites[class_name]
        obj = self.heap.new_instance(cls)
        if message:
            self.heap.temp_roots.append(obj)
            try:
                obj.fields["message"] = self.new_string(message)
            finally:
                self.heap.temp_roots.pop()
        return obj

    def throw(self, class_name: str, message: str = ""):
        raise MJThrow(self.make_throwable(class_name, message))

    # ------------------------------------------------------------------
    # natives
    # ------------------------------------------------------------------

    def _call_native(self, method: CompiledMethod, receiver, args: List[object]):
        fn = self.natives.get((method.class_name, method.name))
        if fn is None:
            raise VMError(f"unbound native method {method.qualified_name}")
        # The receiver and args were popped off the operand stack, so a
        # GC triggered by an allocation inside the native would not see
        # them as roots; pin them for the duration of the call.
        temp = self.heap.temp_roots
        pinned = [v for v in [receiver] + args if isinstance(v, HeapObject)]
        temp.extend(pinned)
        try:
            return fn(self, receiver, args)
        finally:
            del temp[len(temp) - len(pinned):]

    # ------------------------------------------------------------------
    # type tests
    # ------------------------------------------------------------------

    def value_conforms(self, obj, type_repr_: str) -> bool:
        if obj is None:
            return True
        if type_repr_ == "Object":
            return True
        if type_repr_.endswith("[]"):
            if not isinstance(obj, ArrayObject):
                return False
            want = type_repr_[:-2]
            have = obj.elem_repr
            if want == have:
                return True
            # covariant reference arrays: Bar[] conforms to Foo[]
            if (
                not want.endswith("[]")
                and not have.endswith("[]")
                and want in self.program.classes
                and have in self.program.classes
            ):
                return self.program.is_subclass(have, want)
            return False
        if isinstance(obj, Instance):
            return self.program.is_subclass(obj.class_name, type_repr_)
        return False

    # ------------------------------------------------------------------
    # the big loop
    # ------------------------------------------------------------------

    def _run_to(self, floor: int) -> None:
        """Execute until the frame stack returns to ``floor`` frames."""
        frames = self.frames
        heap = self.heap
        program = self.program
        profiler = self.profiler
        while len(frames) > floor:
            if (
                profiler is not None
                and not self._sampling
                and heap.clock >= profiler.next_sample_at
            ):
                self._sampling = True
                try:
                    profiler.take_sample(self)
                finally:
                    self._sampling = False
            if heap.gc_pending:
                heap.gc_pending = False
                self.collector.collect(self.iter_roots())
            frame = frames[-1]
            instr = frame.method.code[frame.pc]
            frame.pc += 1
            self.instr_count += 1
            op = instr.op
            stack = frame.stack
            try:
                if op == Op.LOAD:
                    stack.append(frame.locals[instr.args[0]])
                elif op == Op.STORE:
                    frame.locals[instr.args[0]] = stack.pop()
                elif op == Op.CONST:
                    stack.append(instr.args[0])
                elif op == Op.CONST_NULL:
                    stack.append(None)
                elif op == Op.GETFIELD:
                    obj = stack.pop()
                    if obj is None:
                        self.throw("NullPointerException", f"getfield {instr.args[0]}")
                    heap.note_use(obj)
                    stack.append(obj.fields[instr.args[0]])
                elif op == Op.PUTFIELD:
                    value = stack.pop()
                    obj = stack.pop()
                    if obj is None:
                        self.throw("NullPointerException", f"putfield {instr.args[0]}")
                    heap.note_use(obj)
                    obj.fields[instr.args[0]] = value
                    if heap.barrier is not None:
                        heap.barrier(obj, value)
                elif op == Op.GETSTATIC:
                    cls_name, field = instr.args
                    stack.append(self.statics[cls_name][field])
                elif op == Op.PUTSTATIC:
                    cls_name, field = instr.args
                    self.statics[cls_name][field] = stack.pop()
                elif op == Op.ALOAD:
                    index = stack.pop()
                    arr = stack.pop()
                    if arr is None:
                        self.throw("NullPointerException", "array load")
                    heap.note_use(arr)
                    if index < 0 or index >= len(arr.data):
                        self.throw(
                            "IndexOutOfBoundsException", f"{index} of {len(arr.data)}"
                        )
                    stack.append(arr.data[index])
                elif op == Op.ASTORE:
                    value = stack.pop()
                    index = stack.pop()
                    arr = stack.pop()
                    if arr is None:
                        self.throw("NullPointerException", "array store")
                    heap.note_use(arr)
                    if index < 0 or index >= len(arr.data):
                        self.throw(
                            "IndexOutOfBoundsException", f"{index} of {len(arr.data)}"
                        )
                    arr.data[index] = value
                    if heap.barrier is not None:
                        heap.barrier(arr, value)
                elif op == Op.ARRAYLEN:
                    arr = stack.pop()
                    if arr is None:
                        self.throw("NullPointerException", "array length")
                    heap.note_use(arr)
                    stack.append(len(arr.data))
                elif op == Op.INVOKEV:
                    name, argc = instr.args
                    args = stack[len(stack) - argc:]
                    del stack[len(stack) - argc:]
                    recv = stack.pop()
                    if recv is None:
                        self.throw("NullPointerException", f"invoke {name}")
                    heap.note_use(recv)
                    cls_name = (
                        recv.class_name if isinstance(recv, Instance) else "Object"
                    )
                    method = program.lookup_method(cls_name, name)
                    if method is None:
                        raise VMError(f"no method {cls_name}.{name}")
                    if method.is_native:
                        result = self._call_native(method, recv, args)
                        if method.return_descriptor != "void":
                            stack.append(result)
                    else:
                        frames.append(Frame(method, make_locals(method, args, recv)))
                elif op == Op.INVOKESTATIC:
                    cls_name, name, argc = instr.args
                    args = stack[len(stack) - argc:]
                    del stack[len(stack) - argc:]
                    method = program.lookup_method(cls_name, name)
                    if method is None:
                        raise VMError(f"no method {cls_name}.{name}")
                    if method.is_native:
                        result = self._call_native(method, None, args)
                        if method.return_descriptor != "void":
                            stack.append(result)
                    else:
                        frames.append(Frame(method, make_locals(method, args, None)))
                elif op == Op.INVOKESUPER:
                    start_cls, name, argc = instr.args
                    args = stack[len(stack) - argc:]
                    del stack[len(stack) - argc:]
                    recv = stack.pop()
                    heap.note_use(recv)
                    method = program.lookup_method(start_cls, name)
                    if method is None:
                        raise VMError(f"no method {start_cls}.{name}")
                    if method.is_native:
                        result = self._call_native(method, recv, args)
                        if method.return_descriptor != "void":
                            stack.append(result)
                    else:
                        frames.append(Frame(method, make_locals(method, args, recv)))
                elif op == Op.NEWINIT:
                    cls_name, argc = instr.args
                    args = stack[len(stack) - argc:]
                    del stack[len(stack) - argc:]
                    cls = program.classes[cls_name]
                    self.alloc_site = instr.site
                    obj = heap.new_instance(cls)
                    stack.append(obj)  # rooted while the ctor runs
                    ctor = cls.ctor
                    frames.append(Frame(ctor, make_locals(ctor, args, obj)))
                elif op == Op.SUPERINIT:
                    cls_name, argc = instr.args
                    args = stack[len(stack) - argc:]
                    del stack[len(stack) - argc:]
                    this = frame.locals[0]
                    ctor = program.classes[cls_name].ctor
                    frames.append(Frame(ctor, make_locals(ctor, args, this)))
                elif op == Op.NEWARRAY:
                    elem_desc, elem_repr = instr.args
                    length = stack.pop()
                    if length < 0:
                        self.throw("IndexOutOfBoundsException", f"array size {length}")
                    self.alloc_site = instr.site
                    stack.append(heap.new_array(elem_desc, elem_repr, length))
                elif op == Op.RET:
                    frames.pop()
                    if len(frames) == floor:
                        self._return_value = None
                elif op == Op.RETV:
                    value = stack.pop()
                    frames.pop()
                    if len(frames) == floor:
                        self._return_value = value
                    else:
                        frames[-1].stack.append(value)
                elif op == Op.JUMP:
                    frame.pc = instr.args[0]
                elif op == Op.JIF:
                    if not stack.pop():
                        frame.pc = instr.args[0]
                elif op == Op.JIT:
                    if stack.pop():
                        frame.pc = instr.args[0]
                elif op == Op.ADD:
                    b = stack.pop()
                    stack[-1] = stack[-1] + b
                elif op == Op.SUB:
                    b = stack.pop()
                    stack[-1] = stack[-1] - b
                elif op == Op.MUL:
                    b = stack.pop()
                    stack[-1] = stack[-1] * b
                elif op == Op.DIV:
                    b = stack.pop()
                    a = stack.pop()
                    if b == 0:
                        self.throw("ArithmeticException", "/ by zero")
                    q = abs(a) // abs(b)
                    stack.append(q if (a >= 0) == (b >= 0) else -q)
                elif op == Op.MOD:
                    b = stack.pop()
                    a = stack.pop()
                    if b == 0:
                        self.throw("ArithmeticException", "% by zero")
                    q = abs(a) // abs(b)
                    q = q if (a >= 0) == (b >= 0) else -q
                    stack.append(a - q * b)
                elif op == Op.NEG:
                    stack[-1] = -stack[-1]
                elif op == Op.EQ:
                    b = stack.pop()
                    stack[-1] = stack[-1] == b
                elif op == Op.NE:
                    b = stack.pop()
                    stack[-1] = stack[-1] != b
                elif op == Op.LT:
                    b = stack.pop()
                    stack[-1] = stack[-1] < b
                elif op == Op.LE:
                    b = stack.pop()
                    stack[-1] = stack[-1] <= b
                elif op == Op.GT:
                    b = stack.pop()
                    stack[-1] = stack[-1] > b
                elif op == Op.GE:
                    b = stack.pop()
                    stack[-1] = stack[-1] >= b
                elif op == Op.REFEQ:
                    b = stack.pop()
                    stack[-1] = stack[-1] is b
                elif op == Op.REFNE:
                    b = stack.pop()
                    stack[-1] = stack[-1] is not b
                elif op == Op.NOT:
                    stack[-1] = not stack[-1]
                elif op == Op.CAST_CHAR:
                    stack[-1] = stack[-1] & 0xFFFF
                elif op == Op.POP:
                    stack.pop()
                elif op == Op.DUP:
                    stack.append(stack[-1])
                elif op == Op.CONST_STRING:
                    text = instr.args[0]
                    interned = heap.interned.get(text)
                    if interned is None:
                        self.alloc_site = instr.site
                        interned = self.new_string(text, excluded=True)
                        heap.interned[text] = interned
                    stack.append(interned)
                elif op == Op.TOSTR:
                    self.alloc_site = instr.site
                    value = stack.pop()
                    if instr.args[0] == "char":
                        stack.append(self.new_string(chr(value)))
                    else:
                        stack.append(self.stringify(value))
                elif op == Op.CONCAT:
                    b = stack.pop()
                    a = stack.pop()
                    text = self.string_value(a) + self.string_value(b)
                    self.alloc_site = instr.site
                    stack.append(self.new_string(text))
                elif op == Op.CHECKCAST:
                    obj = stack[-1]
                    if obj is not None and not self.value_conforms(obj, instr.args[0]):
                        self.throw(
                            "ClassCastException",
                            f"{obj.type_name()} to {instr.args[0]}",
                        )
                elif op == Op.INSTANCEOF:
                    obj = stack.pop()
                    if obj is None:
                        stack.append(False)
                    elif isinstance(obj, ArrayObject):
                        stack.append(instr.args[0] == "Object")
                    else:
                        stack.append(
                            program.is_subclass(obj.class_name, instr.args[0])
                        )
                elif op == Op.MONENTER:
                    obj = stack.pop()
                    if obj is None:
                        self.throw("NullPointerException", "monitorenter")
                    heap.note_use(obj)
                    obj.monitor_depth += 1
                elif op == Op.MONEXIT:
                    obj = stack.pop()
                    if obj is None:
                        self.throw("NullPointerException", "monitorexit")
                    heap.note_use(obj)
                    obj.monitor_depth -= 1
                elif op == Op.THROW:
                    obj = stack.pop()
                    if obj is None:
                        self.throw("NullPointerException", "throw null")
                    raise MJThrow(obj)
                else:
                    raise VMError(f"unknown opcode {op}")
            except MJThrow as signal:
                self._unwind(signal.obj, floor)
            except OutOfMemory:
                oom = self.make_throwable("OutOfMemoryError", "heap exhausted")
                self._unwind(oom, floor)

    # ------------------------------------------------------------------
    # unwinding
    # ------------------------------------------------------------------

    def _unwind(self, obj: Instance, floor: int) -> None:
        frames = self.frames
        heap = self.heap
        while len(frames) > floor:
            frame = frames[-1]
            pc = frame.pc - 1  # pc of the faulting instruction
            for entry in frame.method.exception_table:
                if not entry.covers(pc):
                    continue
                if entry.kind == "monitor":
                    monitor = frame.locals[entry.monitor_slot]
                    if isinstance(monitor, (Instance, ArrayObject)):
                        heap.note_use(monitor)
                        monitor.monitor_depth -= 1
                    continue
                if self.program.is_subclass(obj.class_name, entry.exc_class):
                    frame.stack.clear()
                    frame.locals[entry.var_slot] = obj
                    frame.pc = entry.handler
                    return
            frames.pop()
        message = ""
        msg_obj = obj.fields.get("message")
        if isinstance(msg_obj, Instance):
            message = self.string_value(msg_obj, use=False)
        raise MiniJavaException(obj.class_name, message)
