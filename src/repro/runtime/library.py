'''The mini-JDK: runtime library classes written in mini-Java.

The paper rewrites not only application code but also "selected classes
of the JDK itself" (jess's savings partly come from rewriting
java.util.Locale-style eager statics). To reproduce that, the library is
real mini-Java source, compiled together with the application and
flagged ``is_library`` so reports can separate JDK sites from
application sites — and so benchmarks can ship a *revised JDK*.

``link`` merges an application source with the library (every class
without ``extends`` is rooted at Object), letting application-provided
classes override library ones (JDK rewriting).
'''

from __future__ import annotations

from typing import Dict, Optional

from repro.mjava import ast
from repro.mjava.parser import parse_program

LIBRARY_SOURCE = """
class Object {
    public native int hashCode();
    public native String toString();
    public native boolean equals(Object other);
}

class String {
    private char[] chars;
    private int count;
    public native int length();
    public native char charAt(int index);
    public native boolean equals(Object other);
    public native int compareTo(String other);
    public native String substring(int begin, int end);
    public native int indexOf(String needle);
    public native char[] toCharArray();
    public native int hashCode();
    public native String concat(String other);
    public static native String valueOf(char[] data, int count);
    public String toString() { return this; }
}

class StringBuilder {
    private char[] buf;
    private int len;
    StringBuilder(int capacity) {
        buf = new char[capacity];
        len = 0;
    }
    public StringBuilder append(String s) {
        int n = s.length();
        ensure(len + n);
        for (int i = 0; i < n; i = i + 1) {
            buf[len + i] = s.charAt(i);
        }
        len = len + n;
        return this;
    }
    public StringBuilder appendChar(char c) {
        ensure(len + 1);
        buf[len] = c;
        len = len + 1;
        return this;
    }
    public int length() { return len; }
    public String toString() { return String.valueOf(buf, len); }
    private void ensure(int need) {
        if (need > buf.length) {
            int cap = buf.length * 2;
            if (cap < need) { cap = need; }
            char[] bigger = new char[cap];
            System.arraycopy(buf, 0, bigger, 0, len);
            buf = bigger;
        }
    }
}

class Throwable {
    protected String message;
    Throwable(String message) { this.message = message; }
    public String getMessage() { return message; }
    public String toString() {
        if (message == null) { return "Throwable"; }
        return message;
    }
}

class Exception extends Throwable {
    Exception(String message) { super(message); }
}

class RuntimeException extends Exception {
    RuntimeException(String message) { super(message); }
}

class NullPointerException extends RuntimeException {
    NullPointerException(String message) { super(message); }
}

class ArithmeticException extends RuntimeException {
    ArithmeticException(String message) { super(message); }
}

class IndexOutOfBoundsException extends RuntimeException {
    IndexOutOfBoundsException(String message) { super(message); }
}

class ClassCastException extends RuntimeException {
    ClassCastException(String message) { super(message); }
}

class NumberFormatException extends RuntimeException {
    NumberFormatException(String message) { super(message); }
}

class Error extends Throwable {
    Error(String message) { super(message); }
}

class OutOfMemoryError extends Error {
    OutOfMemoryError(String message) { super(message); }
}

class System {
    public static native void println(String line);
    public static native void printInt(int value);
    public static native void arraycopy(Object src, int srcPos, Object dst, int dstPos, int count);
    public static native int allocatedBytes();
    public static native void gc();
}

class Math {
    public static native int isqrt(int value);
    public static int abs(int value) {
        if (value < 0) { return 0 - value; }
        return value;
    }
    public static int min(int a, int b) {
        if (a < b) { return a; }
        return b;
    }
    public static int max(int a, int b) {
        if (a > b) { return a; }
        return b;
    }
}

class Integer {
    public static int parseInt(String text) {
        int n = text.length();
        if (n == 0) { throw new NumberFormatException("empty string"); }
        int sign = 1;
        int start = 0;
        if (text.charAt(0) == '-') {
            sign = -1;
            start = 1;
            if (n == 1) { throw new NumberFormatException("lone minus"); }
        }
        int value = 0;
        for (int i = start; i < n; i = i + 1) {
            int digit = text.charAt(i) - '0';
            if (digit < 0 || digit > 9) {
                throw new NumberFormatException(text);
            }
            value = value * 10 + digit;
        }
        return sign * value;
    }
}

class Random {
    private int seed;
    Random(int seed) {
        this.seed = seed % 2147483647;
        if (this.seed <= 0) { this.seed = this.seed + 2147483646; }
    }
    public int next() {
        seed = seed * 48271 % 2147483647;
        return seed;
    }
    public int nextInt(int bound) {
        return next() % bound;
    }
}

class Vector {
    private Object[] data;
    private int count;
    Vector(int capacity) {
        data = new Object[capacity];
        count = 0;
    }
    public void add(Object item) {
        ensureCapacity(count + 1);
        data[count] = item;
        count = count + 1;
    }
    public Object get(int index) {
        if (index < 0 || index >= count) {
            throw new IndexOutOfBoundsException("vector get");
        }
        return data[index];
    }
    public void set(int index, Object item) {
        if (index < 0 || index >= count) {
            throw new IndexOutOfBoundsException("vector set");
        }
        data[index] = item;
    }
    // NOTE: like the vector-like array the paper found in jess, this
    // "tries to handle" removal but leaves data[count] referencing the
    // removed element — the element stays reachable although dead.
    public Object removeLast() {
        if (count == 0) {
            throw new IndexOutOfBoundsException("vector empty");
        }
        count = count - 1;
        return data[count];
    }
    public int size() { return count; }
    public boolean isEmpty() { return count == 0; }
    public boolean contains(Object item) {
        for (int i = 0; i < count; i = i + 1) {
            if (item.equals(data[i])) { return true; }
        }
        return false;
    }
    private void ensureCapacity(int need) {
        if (need > data.length) {
            int cap = data.length * 2;
            if (cap < need) { cap = need; }
            Object[] bigger = new Object[cap];
            System.arraycopy(data, 0, bigger, 0, count);
            data = bigger;
        }
    }
}

class HashEntry {
    Object key;
    Object value;
    HashEntry next;
    HashEntry(Object key, Object value, HashEntry next) {
        this.key = key;
        this.value = value;
        this.next = next;
    }
}

class HashTable {
    private HashEntry[] buckets;
    private int count;
    HashTable(int capacity) {
        buckets = new HashEntry[capacity];
        count = 0;
    }
    public void put(Object key, Object value) {
        int h = hash(key);
        HashEntry entry = buckets[h];
        while (entry != null) {
            if (key.equals(entry.key)) {
                entry.value = value;
                return;
            }
            entry = entry.next;
        }
        buckets[h] = new HashEntry(key, value, buckets[h]);
        count = count + 1;
        if (count * 4 > buckets.length * 3) { grow(); }
    }
    private void grow() {
        HashEntry[] old = buckets;
        buckets = new HashEntry[old.length * 2 + 1];
        for (int i = 0; i < old.length; i = i + 1) {
            HashEntry entry = old[i];
            while (entry != null) {
                HashEntry following = entry.next;
                int h = hash(entry.key);
                entry.next = buckets[h];
                buckets[h] = entry;
                entry = following;
            }
        }
    }
    public Object get(Object key) {
        HashEntry entry = buckets[hash(key)];
        while (entry != null) {
            if (key.equals(entry.key)) { return entry.value; }
            entry = entry.next;
        }
        return null;
    }
    public boolean containsKey(Object key) {
        HashEntry entry = buckets[hash(key)];
        while (entry != null) {
            if (key.equals(entry.key)) { return true; }
            entry = entry.next;
        }
        return false;
    }
    public Object remove(Object key) {
        int h = hash(key);
        HashEntry entry = buckets[h];
        HashEntry prev = null;
        while (entry != null) {
            if (key.equals(entry.key)) {
                if (prev == null) { buckets[h] = entry.next; }
                else { prev.next = entry.next; }
                count = count - 1;
                return entry.value;
            }
            prev = entry;
            entry = entry.next;
        }
        return null;
    }
    public int size() { return count; }
    private int hash(Object key) {
        int h = key.hashCode() % buckets.length;
        if (h < 0) { h = 0 - h; }
        return h;
    }
}

// Modelled on java.util.Locale: a table of eagerly created constants,
// most of which a given program never touches — the paper's example of
// never-used objects referenced by public static final JDK fields.
class Locale {
    public static final Locale ENGLISH = new Locale("en");
    public static final Locale FRENCH = new Locale("fr");
    public static final Locale GERMAN = new Locale("de");
    public static final Locale ITALIAN = new Locale("it");
    public static final Locale JAPANESE = new Locale("ja");
    public static final Locale KOREAN = new Locale("ko");
    public static final Locale CHINESE = new Locale("zh");
    public static final Locale SPANISH = new Locale("es");
    public static final Locale PORTUGUESE = new Locale("pt");
    public static final Locale RUSSIAN = new Locale("ru");
    public static final Locale DUTCH = new Locale("nl");
    public static final Locale SWEDISH = new Locale("sv");
    private String language;
    private char[] displayData;
    Locale(String language) {
        this.language = language;
        this.displayData = new char[64];
    }
    public String getLanguage() { return language; }
}
"""

_LIBRARY_AST_CACHE: Optional[ast.Program] = None


def library_program() -> ast.Program:
    """Parse (and cache) the library source, marking classes as library."""
    global _LIBRARY_AST_CACHE
    if _LIBRARY_AST_CACHE is None:
        program = parse_program(LIBRARY_SOURCE)
        for cls in program.classes:
            cls.is_library = True
        _LIBRARY_AST_CACHE = program
    return _LIBRARY_AST_CACHE


def link(
    app: "ast.Program | str",
    library_overrides: Optional[Dict[str, str]] = None,
) -> ast.Program:
    """Merge the library and an application into one program AST.

    ``library_overrides`` maps library class names to replacement
    mini-Java source (a single class each) — this is how benchmarks ship
    a *revised JDK* (e.g. a lazy Locale). An application class with the
    same name as a library class also overrides it.

    Every class except Object that declares no superclass is rooted at
    Object.
    """
    if isinstance(app, str):
        app = parse_program(app)
    merged: Dict[str, ast.ClassDecl] = {}
    for cls in library_program().classes:
        merged[cls.name] = cls
    for name, source in (library_overrides or {}).items():
        override = parse_program(source)
        for cls in override.classes:
            cls.is_library = True
            merged[cls.name] = cls
        if name not in merged:
            raise KeyError(f"override for unknown library class {name}")
    for cls in app.classes:
        # An application class replacing a library class is a JDK
        # rewrite; keep it flagged as library so site classification
        # (application vs JDK) stays consistent across variants.
        cls.is_library = cls.name in merged and merged[cls.name].is_library
        merged[cls.name] = cls
    classes = list(merged.values())
    for cls in classes:
        if cls.superclass is None and cls.name != "Object":
            cls.superclass = "Object"
    return ast.Program(classes)
