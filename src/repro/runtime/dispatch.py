"""The per-method closure compiler behind the ``compiled`` engine.

At first execution of a method, :func:`compile_method` translates its
bytecode into a list of *handler closures*, one per instruction. Each
closure has its operands, resolved callees, and VM plumbing (heap,
frame stack, statics) bound as cell variables, so the dispatch loop in
:mod:`repro.runtime.compiled` does no opcode comparison and no operand
decoding — it indexes ``handlers[frame.pc]`` and calls.

Two properties the rest of the system depends on:

* **Bit-identical semantics.** Every handler replays the baseline
  interpreter's arm for its opcode exactly — same event order, same
  exception messages, same allocation-site updates, same pc discipline
  (``pc`` is incremented *before* the handler runs, so profiler frames
  and jump targets match the baseline). The differential suite in
  ``tests/runtime/test_engine_equivalence.py`` enforces this.
* **Hook specialization.** Use-event opcodes come in two variants. When
  no profiler is attached (``on_use is None``) the emitted closure
  contains *no hook call site at all* — not a disabled one, none; when
  a profiler is attached the closure binds its ``on_use`` bound method
  directly. ``tests/runtime/test_dispatch.py`` asserts the unprofiled
  closures are hook-free by inspecting their code objects.

Compilation is per (method, VM) because closures bind VM-instance state
(the heap, the frame list, a profiler's bound methods); the cache lives
on the :class:`~repro.runtime.compiled.CompiledInterpreter`.
"""

from __future__ import annotations

from typing import Callable, List

from repro.errors import VMError
from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod
from repro.runtime.frames import Frame, make_locals
from repro.runtime.interpreter import MJThrow
from repro.runtime.objects import ArrayObject, Instance

Handler = Callable[[Frame], None]


class DispatchContext:
    """Everything a handler may bind at translation time."""

    __slots__ = ("vm", "heap", "frames", "program", "statics", "on_use", "stats")

    def __init__(self, vm, on_use=None, stats=None) -> None:
        self.vm = vm
        self.heap = vm.heap
        self.frames = vm.frames
        self.program = vm.program
        self.statics = vm.statics
        # None => emit no hook calls; else bound HeapProfiler.on_use.
        self.on_use = on_use
        # None => emit no telemetry call sites; else a
        # repro.obs.DispatchStats whose inline-cache counters the
        # INVOKEV handlers increment. Same specialization discipline as
        # on_use: the disabled variant is absent, not gated.
        self.stats = stats


# ---------------------------------------------------------------------------
# per-opcode closure factories: factory(instr, ctx) -> handler
# ---------------------------------------------------------------------------


def _c_load(instr, ctx):
    slot = instr.args[0]

    def op_load(frame):
        frame.stack.append(frame.locals[slot])

    return op_load


def _c_store(instr, ctx):
    slot = instr.args[0]

    def op_store(frame):
        frame.locals[slot] = frame.stack.pop()

    return op_store


def _c_const(instr, ctx):
    value = instr.args[0]

    def op_const(frame):
        frame.stack.append(value)

    return op_const


def _c_const_null(instr, ctx):
    def op_const_null(frame):
        frame.stack.append(None)

    return op_const_null


def _c_getfield(instr, ctx):
    field = instr.args[0]
    npe = f"getfield {field}"
    vm = ctx.vm
    if ctx.on_use is None:

        def op_getfield(frame):
            stack = frame.stack
            obj = stack.pop()
            if obj is None:
                vm.throw("NullPointerException", npe)
            stack.append(obj.fields[field])

        return op_getfield

    on_use = ctx.on_use

    def op_getfield_profiled(frame):
        stack = frame.stack
        obj = stack.pop()
        if obj is None:
            vm.throw("NullPointerException", npe)
        on_use(obj)
        stack.append(obj.fields[field])

    return op_getfield_profiled


def _c_putfield(instr, ctx):
    field = instr.args[0]
    npe = f"putfield {field}"
    vm = ctx.vm
    heap = ctx.heap
    if ctx.on_use is None:

        def op_putfield(frame):
            stack = frame.stack
            value = stack.pop()
            obj = stack.pop()
            if obj is None:
                vm.throw("NullPointerException", npe)
            obj.fields[field] = value
            if heap.barrier is not None:
                heap.barrier(obj, value)

        return op_putfield

    on_use = ctx.on_use

    def op_putfield_profiled(frame):
        stack = frame.stack
        value = stack.pop()
        obj = stack.pop()
        if obj is None:
            vm.throw("NullPointerException", npe)
        on_use(obj)
        obj.fields[field] = value
        if heap.barrier is not None:
            heap.barrier(obj, value)

    return op_putfield_profiled


def _c_getstatic(instr, ctx):
    cls_name, field = instr.args
    values = ctx.statics[cls_name]

    def op_getstatic(frame):
        frame.stack.append(values[field])

    return op_getstatic


def _c_putstatic(instr, ctx):
    cls_name, field = instr.args
    values = ctx.statics[cls_name]

    def op_putstatic(frame):
        values[field] = frame.stack.pop()

    return op_putstatic


def _c_aload(instr, ctx):
    vm = ctx.vm
    if ctx.on_use is None:

        def op_aload(frame):
            stack = frame.stack
            index = stack.pop()
            arr = stack.pop()
            if arr is None:
                vm.throw("NullPointerException", "array load")
            data = arr.data
            if index < 0 or index >= len(data):
                vm.throw("IndexOutOfBoundsException", f"{index} of {len(data)}")
            stack.append(data[index])

        return op_aload

    on_use = ctx.on_use

    def op_aload_profiled(frame):
        stack = frame.stack
        index = stack.pop()
        arr = stack.pop()
        if arr is None:
            vm.throw("NullPointerException", "array load")
        on_use(arr)
        data = arr.data
        if index < 0 or index >= len(data):
            vm.throw("IndexOutOfBoundsException", f"{index} of {len(data)}")
        stack.append(data[index])

    return op_aload_profiled


def _c_astore(instr, ctx):
    vm = ctx.vm
    heap = ctx.heap
    if ctx.on_use is None:

        def op_astore(frame):
            stack = frame.stack
            value = stack.pop()
            index = stack.pop()
            arr = stack.pop()
            if arr is None:
                vm.throw("NullPointerException", "array store")
            data = arr.data
            if index < 0 or index >= len(data):
                vm.throw("IndexOutOfBoundsException", f"{index} of {len(data)}")
            data[index] = value
            if heap.barrier is not None:
                heap.barrier(arr, value)

        return op_astore

    on_use = ctx.on_use

    def op_astore_profiled(frame):
        stack = frame.stack
        value = stack.pop()
        index = stack.pop()
        arr = stack.pop()
        if arr is None:
            vm.throw("NullPointerException", "array store")
        on_use(arr)
        data = arr.data
        if index < 0 or index >= len(data):
            vm.throw("IndexOutOfBoundsException", f"{index} of {len(data)}")
        data[index] = value
        if heap.barrier is not None:
            heap.barrier(arr, value)

    return op_astore_profiled


def _c_arraylen(instr, ctx):
    vm = ctx.vm
    if ctx.on_use is None:

        def op_arraylen(frame):
            stack = frame.stack
            arr = stack.pop()
            if arr is None:
                vm.throw("NullPointerException", "array length")
            stack.append(len(arr.data))

        return op_arraylen

    on_use = ctx.on_use

    def op_arraylen_profiled(frame):
        stack = frame.stack
        arr = stack.pop()
        if arr is None:
            vm.throw("NullPointerException", "array length")
        on_use(arr)
        stack.append(len(arr.data))

    return op_arraylen_profiled


def _c_invokev(instr, ctx):
    name, argc = instr.args
    npe = f"invoke {name}"
    vm = ctx.vm
    frames = ctx.frames
    program = ctx.program
    # Per-call-site inline cache: receiver class name -> resolved
    # method. lookup_method is deterministic over an immutable class
    # graph, so memoizing it cannot change behaviour.
    cache = {}
    on_use = ctx.on_use
    stats = ctx.stats
    if on_use is None and stats is None:

        def op_invokev(frame):
            stack = frame.stack
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            recv = stack.pop()
            if recv is None:
                vm.throw("NullPointerException", npe)
            cls_name = recv.class_name if isinstance(recv, Instance) else "Object"
            method = cache.get(cls_name)
            if method is None:
                method = program.lookup_method(cls_name, name)
                if method is None:
                    raise VMError(f"no method {cls_name}.{name}")
                cache[cls_name] = method
            if method.is_native:
                result = vm._call_native(method, recv, args)
                if method.return_descriptor != "void":
                    stack.append(result)
            else:
                frames.append(Frame(method, make_locals(method, args, recv)))

        return op_invokev

    if on_use is None:

        def op_invokev_traced(frame):
            stack = frame.stack
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            recv = stack.pop()
            if recv is None:
                vm.throw("NullPointerException", npe)
            cls_name = recv.class_name if isinstance(recv, Instance) else "Object"
            method = cache.get(cls_name)
            if method is None:
                stats.ic_misses += 1
                method = program.lookup_method(cls_name, name)
                if method is None:
                    raise VMError(f"no method {cls_name}.{name}")
                cache[cls_name] = method
            else:
                stats.ic_hits += 1
            if method.is_native:
                result = vm._call_native(method, recv, args)
                if method.return_descriptor != "void":
                    stack.append(result)
            else:
                frames.append(Frame(method, make_locals(method, args, recv)))

        return op_invokev_traced

    if stats is None:

        def op_invokev_profiled(frame):
            stack = frame.stack
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            recv = stack.pop()
            if recv is None:
                vm.throw("NullPointerException", npe)
            on_use(recv)
            cls_name = recv.class_name if isinstance(recv, Instance) else "Object"
            method = cache.get(cls_name)
            if method is None:
                method = program.lookup_method(cls_name, name)
                if method is None:
                    raise VMError(f"no method {cls_name}.{name}")
                cache[cls_name] = method
            if method.is_native:
                result = vm._call_native(method, recv, args)
                if method.return_descriptor != "void":
                    stack.append(result)
            else:
                frames.append(Frame(method, make_locals(method, args, recv)))

        return op_invokev_profiled

    def op_invokev_profiled_traced(frame):
        stack = frame.stack
        args = stack[len(stack) - argc:]
        del stack[len(stack) - argc:]
        recv = stack.pop()
        if recv is None:
            vm.throw("NullPointerException", npe)
        on_use(recv)
        cls_name = recv.class_name if isinstance(recv, Instance) else "Object"
        method = cache.get(cls_name)
        if method is None:
            stats.ic_misses += 1
            method = program.lookup_method(cls_name, name)
            if method is None:
                raise VMError(f"no method {cls_name}.{name}")
            cache[cls_name] = method
        else:
            stats.ic_hits += 1
        if method.is_native:
            result = vm._call_native(method, recv, args)
            if method.return_descriptor != "void":
                stack.append(result)
        else:
            frames.append(Frame(method, make_locals(method, args, recv)))

    return op_invokev_profiled_traced


def _c_invokestatic(instr, ctx):
    cls_name, name, argc = instr.args
    vm = ctx.vm
    frames = ctx.frames
    # Static binding: resolvable at translation time.
    method = ctx.program.lookup_method(cls_name, name)
    if method is None:
        message = f"no method {cls_name}.{name}"

        def op_invokestatic_unbound(frame):
            raise VMError(message)

        return op_invokestatic_unbound
    if method.is_native:
        push_result = method.return_descriptor != "void"

        def op_invokestatic_native(frame):
            stack = frame.stack
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            result = vm._call_native(method, None, args)
            if push_result:
                stack.append(result)

        return op_invokestatic_native

    def op_invokestatic(frame):
        stack = frame.stack
        args = stack[len(stack) - argc:]
        del stack[len(stack) - argc:]
        frames.append(Frame(method, make_locals(method, args, None)))

    return op_invokestatic


def _c_invokesuper(instr, ctx):
    start_cls, name, argc = instr.args
    vm = ctx.vm
    frames = ctx.frames
    on_use = ctx.on_use
    method = ctx.program.lookup_method(start_cls, name)
    if method is None:
        message = f"no method {start_cls}.{name}"

        def op_invokesuper_unbound(frame):
            raise VMError(message)

        return op_invokesuper_unbound
    if method.is_native:
        push_result = method.return_descriptor != "void"
        if on_use is None:

            def op_invokesuper_native(frame):
                stack = frame.stack
                args = stack[len(stack) - argc:]
                del stack[len(stack) - argc:]
                recv = stack.pop()
                result = vm._call_native(method, recv, args)
                if push_result:
                    stack.append(result)

            return op_invokesuper_native

        def op_invokesuper_native_profiled(frame):
            stack = frame.stack
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            recv = stack.pop()
            on_use(recv)
            result = vm._call_native(method, recv, args)
            if push_result:
                stack.append(result)

        return op_invokesuper_native_profiled
    if on_use is None:

        def op_invokesuper(frame):
            stack = frame.stack
            args = stack[len(stack) - argc:]
            del stack[len(stack) - argc:]
            recv = stack.pop()
            frames.append(Frame(method, make_locals(method, args, recv)))

        return op_invokesuper

    def op_invokesuper_profiled(frame):
        stack = frame.stack
        args = stack[len(stack) - argc:]
        del stack[len(stack) - argc:]
        recv = stack.pop()
        on_use(recv)
        frames.append(Frame(method, make_locals(method, args, recv)))

    return op_invokesuper_profiled


def _c_missing_class(cls_name):
    def op_missing_class(frame):
        # Matches the baseline's failure mode (KeyError at execution,
        # not at translation) for an unreachable reference to a class
        # the program does not define.
        raise KeyError(cls_name)

    return op_missing_class


def _c_newinit(instr, ctx):
    cls_name, argc = instr.args
    vm = ctx.vm
    heap = ctx.heap
    frames = ctx.frames
    cls = ctx.program.classes.get(cls_name)
    if cls is None:
        return _c_missing_class(cls_name)
    ctor = cls.ctor
    site = instr.site

    def op_newinit(frame):
        stack = frame.stack
        args = stack[len(stack) - argc:]
        del stack[len(stack) - argc:]
        vm.alloc_site = site
        obj = heap.new_instance(cls)
        stack.append(obj)  # rooted while the ctor runs
        frames.append(Frame(ctor, make_locals(ctor, args, obj)))

    return op_newinit


def _c_superinit(instr, ctx):
    cls_name, argc = instr.args
    frames = ctx.frames
    cls = ctx.program.classes.get(cls_name)
    if cls is None:
        return _c_missing_class(cls_name)
    ctor = cls.ctor

    def op_superinit(frame):
        stack = frame.stack
        args = stack[len(stack) - argc:]
        del stack[len(stack) - argc:]
        this = frame.locals[0]
        frames.append(Frame(ctor, make_locals(ctor, args, this)))

    return op_superinit


def _c_newarray(instr, ctx):
    elem_desc, elem_repr = instr.args
    vm = ctx.vm
    heap = ctx.heap
    site = instr.site

    def op_newarray(frame):
        stack = frame.stack
        length = stack.pop()
        if length < 0:
            vm.throw("IndexOutOfBoundsException", f"array size {length}")
        vm.alloc_site = site
        stack.append(heap.new_array(elem_desc, elem_repr, length))

    return op_newarray


def _c_ret(instr, ctx):
    vm = ctx.vm
    frames = ctx.frames

    def op_ret(frame):
        frames.pop()
        if len(frames) == vm._floor:
            vm._return_value = None

    return op_ret


def _c_retv(instr, ctx):
    vm = ctx.vm
    frames = ctx.frames

    def op_retv(frame):
        value = frame.stack.pop()
        frames.pop()
        if len(frames) == vm._floor:
            vm._return_value = value
        else:
            frames[-1].stack.append(value)

    return op_retv


def _c_jump(instr, ctx):
    target = instr.args[0]

    def op_jump(frame):
        frame.pc = target

    return op_jump


def _c_jif(instr, ctx):
    target = instr.args[0]

    def op_jif(frame):
        if not frame.stack.pop():
            frame.pc = target

    return op_jif


def _c_jit(instr, ctx):
    target = instr.args[0]

    def op_jit(frame):
        if frame.stack.pop():
            frame.pc = target

    return op_jit


def _c_add(instr, ctx):
    def op_add(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] + b

    return op_add


def _c_sub(instr, ctx):
    def op_sub(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] - b

    return op_sub


def _c_mul(instr, ctx):
    def op_mul(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] * b

    return op_mul


def _c_div(instr, ctx):
    vm = ctx.vm

    def op_div(frame):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        if b == 0:
            vm.throw("ArithmeticException", "/ by zero")
        q = abs(a) // abs(b)
        stack.append(q if (a >= 0) == (b >= 0) else -q)

    return op_div


def _c_mod(instr, ctx):
    vm = ctx.vm

    def op_mod(frame):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        if b == 0:
            vm.throw("ArithmeticException", "% by zero")
        q = abs(a) // abs(b)
        q = q if (a >= 0) == (b >= 0) else -q
        stack.append(a - q * b)

    return op_mod


def _c_neg(instr, ctx):
    def op_neg(frame):
        stack = frame.stack
        stack[-1] = -stack[-1]

    return op_neg


def _c_eq(instr, ctx):
    def op_eq(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] == b

    return op_eq


def _c_ne(instr, ctx):
    def op_ne(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] != b

    return op_ne


def _c_lt(instr, ctx):
    def op_lt(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] < b

    return op_lt


def _c_le(instr, ctx):
    def op_le(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] <= b

    return op_le


def _c_gt(instr, ctx):
    def op_gt(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] > b

    return op_gt


def _c_ge(instr, ctx):
    def op_ge(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] >= b

    return op_ge


def _c_refeq(instr, ctx):
    def op_refeq(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] is b

    return op_refeq


def _c_refne(instr, ctx):
    def op_refne(frame):
        stack = frame.stack
        b = stack.pop()
        stack[-1] = stack[-1] is not b

    return op_refne


def _c_not(instr, ctx):
    def op_not(frame):
        stack = frame.stack
        stack[-1] = not stack[-1]

    return op_not


def _c_cast_char(instr, ctx):
    def op_cast_char(frame):
        stack = frame.stack
        stack[-1] = stack[-1] & 0xFFFF

    return op_cast_char


def _c_pop(instr, ctx):
    def op_pop(frame):
        frame.stack.pop()

    return op_pop


def _c_dup(instr, ctx):
    def op_dup(frame):
        stack = frame.stack
        stack.append(stack[-1])

    return op_dup


def _c_const_string(instr, ctx):
    text = instr.args[0]
    site = instr.site
    vm = ctx.vm
    interned_map = ctx.heap.interned

    def op_const_string(frame):
        interned = interned_map.get(text)
        if interned is None:
            vm.alloc_site = site
            interned = vm.new_string(text, excluded=True)
            interned_map[text] = interned
        frame.stack.append(interned)

    return op_const_string


def _c_tostr(instr, ctx):
    vm = ctx.vm
    site = instr.site
    if instr.args[0] == "char":

        def op_tostr_char(frame):
            stack = frame.stack
            vm.alloc_site = site
            stack.append(vm.new_string(chr(stack.pop())))

        return op_tostr_char

    def op_tostr(frame):
        stack = frame.stack
        vm.alloc_site = site
        stack.append(vm.stringify(stack.pop()))

    return op_tostr


def _c_concat(instr, ctx):
    vm = ctx.vm
    site = instr.site

    def op_concat(frame):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        text = vm.string_value(a) + vm.string_value(b)
        vm.alloc_site = site
        stack.append(vm.new_string(text))

    return op_concat


def _c_checkcast(instr, ctx):
    type_repr = instr.args[0]
    vm = ctx.vm

    def op_checkcast(frame):
        obj = frame.stack[-1]
        if obj is not None and not vm.value_conforms(obj, type_repr):
            vm.throw("ClassCastException", f"{obj.type_name()} to {type_repr}")

    return op_checkcast


def _c_instanceof(instr, ctx):
    target = instr.args[0]
    is_object = target == "Object"
    program = ctx.program

    def op_instanceof(frame):
        stack = frame.stack
        obj = stack.pop()
        if obj is None:
            stack.append(False)
        elif isinstance(obj, ArrayObject):
            stack.append(is_object)
        else:
            stack.append(program.is_subclass(obj.class_name, target))

    return op_instanceof


def _c_monenter(instr, ctx):
    vm = ctx.vm
    if ctx.on_use is None:

        def op_monenter(frame):
            obj = frame.stack.pop()
            if obj is None:
                vm.throw("NullPointerException", "monitorenter")
            obj.monitor_depth += 1

        return op_monenter

    on_use = ctx.on_use

    def op_monenter_profiled(frame):
        obj = frame.stack.pop()
        if obj is None:
            vm.throw("NullPointerException", "monitorenter")
        on_use(obj)
        obj.monitor_depth += 1

    return op_monenter_profiled


def _c_monexit(instr, ctx):
    vm = ctx.vm
    if ctx.on_use is None:

        def op_monexit(frame):
            obj = frame.stack.pop()
            if obj is None:
                vm.throw("NullPointerException", "monitorexit")
            obj.monitor_depth -= 1

        return op_monexit

    on_use = ctx.on_use

    def op_monexit_profiled(frame):
        obj = frame.stack.pop()
        if obj is None:
            vm.throw("NullPointerException", "monitorexit")
        on_use(obj)
        obj.monitor_depth -= 1

    return op_monexit_profiled


def _c_throw(instr, ctx):
    vm = ctx.vm

    def op_throw(frame):
        obj = frame.stack.pop()
        if obj is None:
            vm.throw("NullPointerException", "throw null")
        raise MJThrow(obj)

    return op_throw


OP_COMPILERS = {
    Op.LOAD: _c_load,
    Op.STORE: _c_store,
    Op.CONST: _c_const,
    Op.CONST_NULL: _c_const_null,
    Op.GETFIELD: _c_getfield,
    Op.PUTFIELD: _c_putfield,
    Op.GETSTATIC: _c_getstatic,
    Op.PUTSTATIC: _c_putstatic,
    Op.ALOAD: _c_aload,
    Op.ASTORE: _c_astore,
    Op.ARRAYLEN: _c_arraylen,
    Op.INVOKEV: _c_invokev,
    Op.INVOKESTATIC: _c_invokestatic,
    Op.INVOKESUPER: _c_invokesuper,
    Op.NEWINIT: _c_newinit,
    Op.SUPERINIT: _c_superinit,
    Op.NEWARRAY: _c_newarray,
    Op.RET: _c_ret,
    Op.RETV: _c_retv,
    Op.JUMP: _c_jump,
    Op.JIF: _c_jif,
    Op.JIT: _c_jit,
    Op.ADD: _c_add,
    Op.SUB: _c_sub,
    Op.MUL: _c_mul,
    Op.DIV: _c_div,
    Op.MOD: _c_mod,
    Op.NEG: _c_neg,
    Op.EQ: _c_eq,
    Op.NE: _c_ne,
    Op.LT: _c_lt,
    Op.LE: _c_le,
    Op.GT: _c_gt,
    Op.GE: _c_ge,
    Op.REFEQ: _c_refeq,
    Op.REFNE: _c_refne,
    Op.NOT: _c_not,
    Op.CAST_CHAR: _c_cast_char,
    Op.POP: _c_pop,
    Op.DUP: _c_dup,
    Op.CONST_STRING: _c_const_string,
    Op.TOSTR: _c_tostr,
    Op.CONCAT: _c_concat,
    Op.CHECKCAST: _c_checkcast,
    Op.INSTANCEOF: _c_instanceof,
    Op.MONENTER: _c_monenter,
    Op.MONEXIT: _c_monexit,
    Op.THROW: _c_throw,
}


def _c_unknown(instr, ctx):
    op = instr.op

    def op_unknown(frame):
        # Matches the baseline: unknown opcodes fail at execution time,
        # not at translation time.
        raise VMError(f"unknown opcode {op}")

    return op_unknown


def compile_method(
    method: CompiledMethod, ctx: DispatchContext
) -> List[Handler]:
    """Translate one method's bytecode into handler closures."""
    handlers: List[Handler] = []
    for instr in method.code:
        factory = OP_COMPILERS.get(instr.op, _c_unknown)
        handlers.append(factory(instr, ctx))
    stats = ctx.stats
    if stats is not None:
        stats.methods_translated += 1
        stats.handlers_emitted += len(handlers)
    return handlers
