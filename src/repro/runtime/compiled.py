"""The ``compiled`` execution engine.

:class:`CompiledInterpreter` shares everything with the baseline
:class:`~repro.runtime.interpreter.Interpreter` — heap, GC entry
points, natives, string helpers, unwinding — and replaces only the
dispatch loop: instead of re-decoding ``instr.op`` through a ~50-arm
if/elif chain, it executes the handler closures produced by
:mod:`repro.runtime.dispatch`, translated lazily the first time each
method runs and cached for the life of the VM.

The loop comes in two specializations, chosen once per ``_run_to``
entry from the attached :class:`~repro.runtime.hooks.RuntimeHooks`
configuration:

* **unprofiled** — no sampling poll at all; the handlers themselves
  were compiled hook-free (zero profiler call sites);
* **profiled** — the baseline's exact instruction-boundary safepoint
  (sample when the byte clock crosses ``next_sample_at``, then service
  any pending minor GC), with handlers that bind ``profiler.on_use``
  directly.

Both specializations keep the baseline's per-instruction discipline —
``pc`` pre-incremented, safepoints at every boundary, MJThrow/OOM
unwound per instruction — which is what makes the two engines
bit-identical (stdout, instruction counts, byte clock, profile logs);
``tests/runtime/test_engine_equivalence.py`` holds them to it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import OutOfMemory
from repro.bytecode.program import CompiledMethod
from repro.runtime.dispatch import DispatchContext, Handler, compile_method
from repro.runtime.hooks import hooks_for, resolve_dispatch_stats, resolve_on_use
from repro.runtime.interpreter import Interpreter, MJThrow


class CompiledInterpreter(Interpreter):
    """A mini-JVM that runs precompiled handler closures."""

    def __init__(self, program, **kwargs) -> None:
        super().__init__(program, **kwargs)
        # The frame-stack depth at which the innermost _run_to stops;
        # RET/RETV handlers read it to route return values.
        self._floor = 0
        self.hooks = hooks_for(self.profiler)
        self._ctx = DispatchContext(
            self,
            on_use=resolve_on_use(self.hooks),
            stats=resolve_dispatch_stats(self.telemetry),
        )
        self._code_cache: Dict[CompiledMethod, List[Handler]] = {}

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------

    def handlers_for(self, method: CompiledMethod) -> List[Handler]:
        """The method's handler closures, translating on first use."""
        handlers = self._code_cache.get(method)
        if handlers is None:
            handlers = self._code_cache[method] = compile_method(
                method, self._ctx
            )
        return handlers

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------

    def _run_to(self, floor: int) -> None:
        frames = self.frames
        heap = self.heap
        profiler = self.profiler
        cache = self._code_cache
        prev_floor = self._floor
        self._floor = floor
        frame = None
        handlers = None
        count = 0
        try:
            if profiler is None:
                while len(frames) > floor:
                    if heap.gc_pending:
                        heap.gc_pending = False
                        self.collector.collect(self.iter_roots())
                    top = frames[-1]
                    if top is not frame:
                        frame = top
                        handlers = cache.get(frame.method)
                        if handlers is None:
                            handlers = self.handlers_for(frame.method)
                    handler = handlers[frame.pc]
                    frame.pc += 1
                    count += 1
                    try:
                        handler(frame)
                    except MJThrow as signal:
                        self._unwind(signal.obj, floor)
                    except OutOfMemory:
                        oom = self.make_throwable(
                            "OutOfMemoryError", "heap exhausted"
                        )
                        self._unwind(oom, floor)
            else:
                take_sample = profiler.take_sample
                while len(frames) > floor:
                    if (
                        not self._sampling
                        and heap.clock >= profiler.next_sample_at
                    ):
                        self._sampling = True
                        try:
                            take_sample(self)
                        finally:
                            self._sampling = False
                    if heap.gc_pending:
                        heap.gc_pending = False
                        self.collector.collect(self.iter_roots())
                    top = frames[-1]
                    if top is not frame:
                        frame = top
                        handlers = cache.get(frame.method)
                        if handlers is None:
                            handlers = self.handlers_for(frame.method)
                    handler = handlers[frame.pc]
                    frame.pc += 1
                    count += 1
                    try:
                        handler(frame)
                    except MJThrow as signal:
                        self._unwind(signal.obj, floor)
                    except OutOfMemory:
                        oom = self.make_throwable(
                            "OutOfMemoryError", "heap exhausted"
                        )
                        self._unwind(oom, floor)
        finally:
            # The counter is kept in a local for speed and flushed on
            # every exit (including re-entrant calls unwinding through
            # here); nested _run_to calls add their own deltas.
            self.instr_count += count
            self._floor = prev_floor
