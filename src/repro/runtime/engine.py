"""One front door to the VM: engine selection and wiring.

Historically every caller — the CLI, the profiler, the benchmark
harness, the examples — constructed :class:`Interpreter` by hand and
re-did the same wiring (heap limit, collector factory, natives,
liveness roots, profiler attachment). This module centralizes that:

* :class:`VMConfig` — a value object naming the execution engine and
  every wiring knob;
* :func:`create_vm` — build the right interpreter for a config;
* :class:`Engine` — program + config, with :meth:`Engine.run`;
* :func:`run_program` — one-call convenience.

Two engines exist, both producing bit-identical results (enforced by
``tests/runtime/test_engine_equivalence.py``):

* ``baseline`` — the classic if/elif interpreter;
* ``compiled`` — per-method closure translation with profiler hooks
  specialized out when no profiler is attached (see
  :mod:`repro.runtime.dispatch`).

The process-wide default is ``baseline`` unless the ``REPRO_ENGINE``
environment variable says otherwise — which lets CI (or a curious
user) run the entire test suite and benchmark harness under the
compiled engine without touching any call site.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import VMError
from repro.bytecode.program import CompiledProgram
from repro.runtime.compiled import CompiledInterpreter
from repro.runtime.interpreter import Interpreter, ProgramResult

ENGINES = {
    "baseline": Interpreter,
    "compiled": CompiledInterpreter,
}

DEFAULT_ENGINE = "baseline"

_ENV_VAR = "REPRO_ENGINE"


def default_engine() -> str:
    """The engine used when a config does not name one: the
    ``REPRO_ENGINE`` environment variable, or ``baseline``."""
    name = os.environ.get(_ENV_VAR, "").strip()
    if not name:
        return DEFAULT_ENGINE
    if name not in ENGINES:
        raise VMError(
            f"{_ENV_VAR}={name!r} is not an engine (have {sorted(ENGINES)})"
        )
    return name


class VMConfig:
    """Everything needed to wire up one VM instance.

    ``engine`` selects the dispatch strategy; the rest are the wiring
    knobs the interpreters accept. A config is reusable across
    programs and runs (each :func:`create_vm` builds a fresh VM), with
    the caveat that an attached ``profiler`` instance belongs to a
    single run.
    """

    __slots__ = (
        "engine",
        "max_heap",
        "profiler",
        "collector_factory",
        "natives",
        "liveness_roots",
        "telemetry",
    )

    def __init__(
        self,
        engine: Optional[str] = None,
        max_heap: Optional[int] = None,
        profiler=None,
        collector_factory=None,
        natives=None,
        liveness_roots: bool = False,
        telemetry=None,
    ) -> None:
        if engine is None:
            engine = default_engine()
        if engine not in ENGINES:
            raise VMError(
                f"unknown engine {engine!r} (have {sorted(ENGINES)})"
            )
        self.engine = engine
        self.max_heap = max_heap
        self.profiler = profiler
        self.collector_factory = collector_factory
        self.natives = natives
        self.liveness_roots = liveness_roots
        # Optional repro.obs.Telemetry: spans + metrics for GC, dispatch
        # and run totals. None means telemetry call sites are never
        # emitted (the compiled engine specializes them out).
        self.telemetry = telemetry

    def replace(self, **overrides) -> "VMConfig":
        """A copy with some fields replaced."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(overrides)
        return VMConfig(**fields)

    def __repr__(self) -> str:
        return (
            f"<VMConfig engine={self.engine}"
            f"{' profiled' if self.profiler is not None else ''}>"
        )


def create_vm(
    program: CompiledProgram, config: Optional[VMConfig] = None, **overrides
) -> Interpreter:
    """Build a ready-to-run VM for ``program``.

    Accepts a :class:`VMConfig`, keyword overrides, or both (overrides
    win). This is the single construction path the CLI, profiler,
    benchmark harness, and examples all go through.
    """
    if config is None:
        config = VMConfig(**overrides)
    elif overrides:
        config = config.replace(**overrides)
    vm_class = ENGINES[config.engine]
    return vm_class(
        program,
        max_heap=config.max_heap,
        profiler=config.profiler,
        collector_factory=config.collector_factory,
        natives=config.natives,
        liveness_roots=config.liveness_roots,
        telemetry=config.telemetry,
    )


class Engine:
    """A program bound to a VM configuration.

    The facade owns the VM's wiring; callers deal in programs, args,
    and results. The VM is built eagerly (so a profiler in the config
    is attached immediately) and is exposed as :attr:`vm` for callers
    that need heap stats or GC entry points after the run.
    """

    def __init__(
        self,
        program: CompiledProgram,
        config: Optional[VMConfig] = None,
        **overrides,
    ) -> None:
        if config is None:
            config = VMConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.program = program
        self.config = config
        self.vm = create_vm(program, config)

    def run(self, args=None) -> ProgramResult:
        """Run <clinit>s then main(String[]); see Interpreter.run."""
        return self.vm.run(args or [])


def run_program(
    program: CompiledProgram,
    args=None,
    config: Optional[VMConfig] = None,
    **overrides,
) -> ProgramResult:
    """Build a VM and run ``program`` in one call."""
    return Engine(program, config, **overrides).run(args)
