"""Call-stack frames for the interpreter."""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.program import CompiledMethod
from repro.runtime.objects import HeapObject


class Frame:
    """One activation: method, pc, locals, operand stack."""

    __slots__ = ("method", "pc", "locals", "stack")

    def __init__(self, method: CompiledMethod, locals_: List[object]) -> None:
        self.method = method
        self.pc = 0
        self.locals = locals_
        self.stack: List[object] = []

    @property
    def current_line(self) -> int:
        code = self.method.code
        pc = min(self.pc, len(code) - 1)
        if pc < 0 or not code:
            return self.method.line
        return code[pc].line

    def site_label(self) -> str:
        return f"{self.method.class_name}.{self.method.name}:{self.current_line}"

    def iter_refs(self):
        for value in self.locals:
            if isinstance(value, HeapObject):
                yield value
        for value in self.stack:
            if isinstance(value, HeapObject):
                yield value

    def __repr__(self) -> str:
        return f"<frame {self.method.qualified_name} pc={self.pc}>"


def make_locals(method: CompiledMethod, args: List[object], receiver: Optional[object] = None) -> List[object]:
    """Build the locals array: [this?] + args + uninitialized slots."""
    locals_: List[object] = []
    if receiver is not None or not method.is_static:
        locals_.append(receiver)
    locals_.extend(args)
    while len(locals_) < method.nlocals:
        locals_.append(None)
    return locals_
