"""The profiler-hook layer: how a VM reports runtime events.

Both execution engines feed the same three event kinds to whatever is
observing a run (normally the :class:`repro.core.profiler.HeapProfiler`):

* ``on_alloc(obj)`` — an object was just registered with the heap;
* ``on_use(obj)`` — the paper's §2.1.1 *object use* (getfield, putfield,
  invoking a method on the object, monitor enter/exit, array element
  access/length, native handle dereference);
* ``safepoint(vm)`` — an instruction boundary where the observer may
  run a deep GC and take a sample.

:class:`RuntimeHooks` is the protocol. The baseline interpreter checks
``self.profiler`` inline on every event (the historical hot-path tax);
the closure-compiling engine instead *specializes at translation time*:
with :class:`NullHooks` (no profiler) the generated handler closures
contain no hook call sites at all, and with :class:`ProfilerHooks` they
bind the profiler's bound methods directly, skipping the per-event
``is None`` test. Determinism is unaffected either way — hooks observe
the byte clock, they never advance it.

Byte-weighted sampling lives *behind* this layer: the per-allocation
inclusion decision is the profiler's ``on_alloc`` (a sampling profiler
rebinds it as an instance attribute, so ``ProfilerHooks`` picks up the
sampled variant automatically at construction).  The pairing contract
holds at the hook level: ``on_alloc`` either attaches a trailer
(sampled, weight ``>= 1``) or attaches nothing, and ``on_use``/free
logging ignore trailer-less objects — so a freed object is logged iff
its allocation was sampled, with the same weight.
"""

from __future__ import annotations

from typing import Optional


class RuntimeHooks:
    """Protocol for runtime event observers.

    The base class is the null object: every event is a no-op and
    :attr:`active` is False, which tells the closure compiler to emit
    hook-free handlers.
    """

    #: True when events must actually be delivered. The closure
    #: compiler reads this once, at method-translation time.
    active = False

    def on_alloc(self, obj) -> None:
        """``obj`` was just allocated (heap registration complete)."""

    def on_use(self, obj) -> None:
        """``obj`` was used in the §2.1.1 sense."""

    def safepoint(self, vm) -> None:
        """An instruction boundary; the observer may sample/deep-GC."""


class NullHooks(RuntimeHooks):
    """No observer attached — the zero-overhead specialization."""

    __slots__ = ()


class ProfilerHooks(RuntimeHooks):
    """Adapt a :class:`~repro.core.profiler.HeapProfiler` to the
    protocol, exposing its bound methods for direct binding."""

    __slots__ = ("profiler", "on_alloc", "on_use")

    active = True

    def __init__(self, profiler) -> None:
        self.profiler = profiler
        # Bound methods, so the closure compiler (and the heap) can
        # call them without re-resolving attributes per event.  Reading
        # the *attribute* (not the class method) is load-bearing: a
        # sampling profiler shadows ``on_alloc`` with its byte-sampled
        # variant, and this binding is where that takes effect.
        self.on_alloc = profiler.on_alloc
        self.on_use = profiler.on_use

    def safepoint(self, vm) -> None:
        """Take a deep-GC sample if the byte clock has crossed the next
        sampling threshold. Both engines inline this exact check in
        their dispatch loops; this method is the reference semantics."""
        profiler = self.profiler
        if not vm._sampling and vm.heap.clock >= profiler.next_sample_at:
            vm._sampling = True
            try:
                profiler.take_sample(vm)
            finally:
                vm._sampling = False


def hooks_for(profiler) -> RuntimeHooks:
    """The hook object for an optional profiler."""
    return NullHooks() if profiler is None else ProfilerHooks(profiler)


def resolve_on_use(hooks: Optional[RuntimeHooks]):
    """The ``on_use`` callable the closure compiler should bind, or
    None when hook calls must not be emitted at all."""
    if hooks is None or not hooks.active:
        return None
    return hooks.on_use


def resolve_dispatch_stats(telemetry):
    """The :class:`repro.obs.DispatchStats` the closure compiler should
    bind, or None when telemetry counters must not be emitted at all
    (the same specialize-at-translation-time discipline as
    :func:`resolve_on_use`)."""
    if telemetry is None:
        return None
    return telemetry.dispatch_stats
