"""Native method implementations for the mini-JDK.

Natives are keyed by ``(class_name, method_name)``. Each receives
``(interp, receiver, args)`` and returns the mini-Java result value.

Per §2.1.1, manipulating an object inside native code goes through its
handle, and *dereferencing a handle is a use* — so natives fire
``note_use`` on every object whose contents they touch.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from repro.runtime.interpreter import Interpreter
from repro.runtime.objects import ArrayObject, Instance

NativeFn = Callable[[Interpreter, object, list], object]


def _use(interp: Interpreter, obj) -> None:
    if obj is not None:
        interp.heap.note_use(obj)


def _chars(interp: Interpreter, string: Instance) -> ArrayObject:
    _use(interp, string)
    arr = string.fields.get("chars")
    if arr is not None:
        _use(interp, arr)
    return arr


# ---------------------------------------------------------------------------
# Object
# ---------------------------------------------------------------------------


def object_hash_code(interp, recv, args):
    _use(interp, recv)
    return recv.handle


def object_to_string(interp, recv, args):
    _use(interp, recv)
    interp.alloc_site = _native_site(interp, "Object.toString")
    return interp.new_string(f"{recv.type_name()}@{recv.handle}")


def object_equals(interp, recv, args):
    _use(interp, recv)
    return recv is args[0]


# ---------------------------------------------------------------------------
# String
# ---------------------------------------------------------------------------


def string_length(interp, recv, args):
    _use(interp, recv)
    return recv.fields["count"]


def string_char_at(interp, recv, args):
    arr = _chars(interp, recv)
    index = args[0]
    if arr is None or index < 0 or index >= len(arr.data):
        interp.throw("IndexOutOfBoundsException", f"charAt({index})")
    return arr.data[index]


def string_equals(interp, recv, args):
    other = args[0]
    _use(interp, recv)
    if not isinstance(other, Instance) or other.class_name != "String":
        return False
    return interp.string_value(recv) == interp.string_value(other)


def string_compare_to(interp, recv, args):
    a = interp.string_value(recv)
    b = interp.string_value(args[0])
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def string_substring(interp, recv, args):
    text = interp.string_value(recv)
    begin, end = args
    if begin < 0 or end > len(text) or begin > end:
        interp.throw("IndexOutOfBoundsException", f"substring({begin},{end})")
    interp.alloc_site = _native_site(interp, "String.substring")
    return interp.new_string(text[begin:end])


def string_index_of(interp, recv, args):
    text = interp.string_value(recv)
    needle = interp.string_value(args[0])
    return text.find(needle)


def string_to_char_array(interp, recv, args):
    text = interp.string_value(recv)
    interp.alloc_site = _native_site(interp, "String.toCharArray")
    arr = interp.heap.new_array("char", "char", len(text))
    arr.data[:] = [ord(c) for c in text]
    return arr


def string_hash_code(interp, recv, args):
    text = interp.string_value(recv)
    h = 0
    for ch in text:
        h = (h * 31 + ord(ch)) & 0x7FFFFFFF
    return h


def string_value_of(interp, recv, args):
    arr, count = args
    if arr is None:
        interp.throw("NullPointerException", "String.valueOf(null)")
    _use(interp, arr)
    if count < 0 or count > len(arr.data):
        interp.throw("IndexOutOfBoundsException", f"valueOf count {count}")
    interp.alloc_site = _native_site(interp, "String.valueOf")
    return interp.new_string("".join(map(chr, arr.data[:count])))


def string_concat(interp, recv, args):
    text = interp.string_value(recv) + interp.string_value(args[0])
    interp.alloc_site = _native_site(interp, "String.concat")
    return interp.new_string(text)


# ---------------------------------------------------------------------------
# System
# ---------------------------------------------------------------------------


def system_println(interp, recv, args):
    s = args[0]
    interp.stdout.append(interp.string_value(s) if s is not None else "null")
    return None


def system_print_int(interp, recv, args):
    interp.stdout.append(str(args[0]))
    return None


def system_arraycopy(interp, recv, args):
    src, src_pos, dst, dst_pos, count = args
    if src is None or dst is None:
        interp.throw("NullPointerException", "arraycopy")
    if not isinstance(src, ArrayObject) or not isinstance(dst, ArrayObject):
        interp.throw("ClassCastException", "arraycopy of non-arrays")
    _use(interp, src)
    _use(interp, dst)
    if (
        count < 0
        or src_pos < 0
        or dst_pos < 0
        or src_pos + count > len(src.data)
        or dst_pos + count > len(dst.data)
    ):
        interp.throw("IndexOutOfBoundsException", "arraycopy bounds")
    dst.data[dst_pos:dst_pos + count] = src.data[src_pos:src_pos + count]
    return None


def system_allocated_bytes(interp, recv, args):
    return interp.heap.clock


def system_gc(interp, recv, args):
    interp.full_gc()
    return None


# ---------------------------------------------------------------------------
# Math
# ---------------------------------------------------------------------------


def math_isqrt(interp, recv, args):
    value = args[0]
    if value < 0:
        interp.throw("ArithmeticException", "isqrt of negative")
    return math.isqrt(value)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def _native_site(interp: Interpreter, label: str) -> int:
    """Allocation site for objects created inside a native method,
    attributed to the caller's current line (handle-deref allocation)."""
    cache = interp._vm_sites
    if label not in cache:
        cls, method = label.split(".", 1)
        cache[label] = interp.program.add_site(cls, method, 0, "native", "String", True)
    return cache[label]


def default_natives() -> Dict[Tuple[str, str], NativeFn]:
    return {
        ("Object", "hashCode"): object_hash_code,
        ("Object", "toString"): object_to_string,
        ("Object", "equals"): object_equals,
        ("String", "length"): string_length,
        ("String", "charAt"): string_char_at,
        ("String", "equals"): string_equals,
        ("String", "compareTo"): string_compare_to,
        ("String", "substring"): string_substring,
        ("String", "indexOf"): string_index_of,
        ("String", "toCharArray"): string_to_char_array,
        ("String", "hashCode"): string_hash_code,
        ("String", "valueOf"): string_value_of,
        ("String", "concat"): string_concat,
        ("System", "println"): system_println,
        ("System", "printInt"): system_print_int,
        ("System", "arraycopy"): system_arraycopy,
        ("System", "allocatedBytes"): system_allocated_bytes,
        ("System", "gc"): system_gc,
        ("Math", "isqrt"): math_isqrt,
    }
