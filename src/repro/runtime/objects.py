"""Heap object representations: instances and arrays.

Every heap object carries a ``handle`` (its identity in reports), its
``size`` in bytes (header + body + alignment, per §2.1.1 — the handle and
the profiling trailer are *not* counted), an ``excluded`` flag (Class
objects and interned constant-pool strings are excluded from reports),
and a ``trailer`` slot the profiler attaches to.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bytecode.program import ARRAY_HEADER_BYTES, ELEM_SIZES, align


class HeapObject:
    """Common base for instances and arrays."""

    __slots__ = (
        "handle",
        "size",
        "trailer",
        "excluded",
        "marked",
        "finalize_scheduled",
        "monitor_depth",
    )

    def __init__(self, handle: int, size: int) -> None:
        self.handle = handle
        self.size = size
        self.trailer = None
        self.excluded = False
        self.marked = False
        self.finalize_scheduled = False
        self.monitor_depth = 0

    def type_name(self) -> str:
        raise NotImplementedError

    def iter_references(self):
        """Yield the heap objects this object references (GC marking)."""
        raise NotImplementedError


class Instance(HeapObject):
    """An object instance: class name plus a field map."""

    __slots__ = ("class_name", "fields")

    def __init__(self, handle: int, class_name: str, size: int, field_defaults: Dict[str, object]) -> None:
        super().__init__(handle, size)
        self.class_name = class_name
        self.fields = dict(field_defaults)

    def type_name(self) -> str:
        return self.class_name

    def iter_references(self):
        for value in self.fields.values():
            if isinstance(value, HeapObject):
                yield value

    def __repr__(self) -> str:
        return f"<{self.class_name}@{self.handle}>"


class ArrayObject(HeapObject):
    """An array: element descriptor, element source-type, backing list."""

    __slots__ = ("elem_desc", "elem_repr", "data")

    def __init__(self, handle: int, elem_desc: str, elem_repr: str, length: int) -> None:
        size = align(ARRAY_HEADER_BYTES + ELEM_SIZES[elem_desc] * length)
        super().__init__(handle, size)
        self.elem_desc = elem_desc
        self.elem_repr = elem_repr
        if elem_desc == "ref":
            default: object = None
        elif elem_desc == "boolean":
            default = False
        else:
            default = 0
        self.data: List[object] = [default] * length

    @property
    def length(self) -> int:
        return len(self.data)

    def type_name(self) -> str:
        return f"{self.elem_repr}[]"

    def iter_references(self):
        if self.elem_desc == "ref":
            for value in self.data:
                if isinstance(value, HeapObject):
                    yield value

    def __repr__(self) -> str:
        return f"<{self.elem_repr}[{self.length}]@{self.handle}>"


def default_field_values(descriptors: Dict[str, str]) -> Dict[str, object]:
    """Zero/false/null defaults for a class field layout."""
    out: Dict[str, object] = {}
    for name, desc in descriptors.items():
        if desc == "ref":
            out[name] = None
        elif desc == "boolean":
            out[name] = False
        else:
            out[name] = 0
    return out
