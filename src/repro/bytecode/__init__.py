"""Stack bytecode for the mini-Java VM.

The instruction set mirrors the JVM operations that matter to the paper's
profiler: object/array allocation, field gets and puts, virtual invokes,
monitor enter/exit, and array element access — the events §2.1.1 counts as
*object uses* — plus ordinary arithmetic and control flow.
"""

from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.program import (
    CompiledClass,
    CompiledMethod,
    CompiledProgram,
    ExceptionEntry,
    FieldLayout,
)
from repro.bytecode.disasm import disassemble_method, disassemble_program

__all__ = [
    "Instr",
    "Op",
    "CompiledClass",
    "CompiledMethod",
    "CompiledProgram",
    "ExceptionEntry",
    "FieldLayout",
    "disassemble_method",
    "disassemble_program",
]
