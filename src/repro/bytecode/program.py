"""Compiled program representation: classes, methods, field layouts, sites.

A :class:`CompiledProgram` is what the compiler produces and the
interpreter executes. It also carries the allocation-site registry that
the profiler keys every measurement on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode.instr import Instr

# Field/array element descriptors and their sizes in bytes, matching the
# classic JVM's 32-bit layout the paper measured on (references are
# 4-byte handles; the handle itself is excluded from object size).
ELEM_SIZES = {"int": 4, "char": 2, "boolean": 1, "ref": 4}

OBJECT_HEADER_BYTES = 8
ARRAY_HEADER_BYTES = 12
ALIGNMENT = 8


def align(nbytes: int) -> int:
    """Round up to the 8-byte allocation boundary (paper §2.1.1: length
    includes header and alignment)."""
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


class ExceptionEntry:
    """One exception-table entry.

    ``kind`` is "catch" for a source-level catch clause (jump to
    ``handler`` with the throwable stored in ``var_slot``) or "monitor"
    for a synthetic synchronized-region entry (exit the monitor in
    ``monitor_slot`` and keep unwinding).
    """

    __slots__ = ("start", "end", "handler", "exc_class", "var_slot", "kind", "monitor_slot")

    def __init__(
        self,
        start: int,
        end: int,
        handler: int = -1,
        exc_class: str = "",
        var_slot: int = -1,
        kind: str = "catch",
        monitor_slot: int = -1,
    ) -> None:
        self.start = start
        self.end = end
        self.handler = handler
        self.exc_class = exc_class
        self.var_slot = var_slot
        self.kind = kind
        self.monitor_slot = monitor_slot

    def covers(self, pc: int) -> bool:
        return self.start <= pc < self.end

    def __repr__(self) -> str:
        if self.kind == "monitor":
            return f"monitor[{self.start},{self.end}) slot={self.monitor_slot}"
        return f"catch[{self.start},{self.end})->{self.handler} {self.exc_class} slot={self.var_slot}"


class CompiledMethod:
    """Bytecode plus metadata for one method, constructor, or <clinit>."""

    __slots__ = (
        "class_name",
        "name",
        "param_count",
        "nlocals",
        "code",
        "exception_table",
        "mods",
        "is_static",
        "is_ctor",
        "is_native",
        "return_descriptor",
        "slot_names",
        "slot_types",
        "line",
        "param_descriptors",
        "qualified_name",
    )

    def __init__(
        self,
        class_name: str,
        name: str,
        param_count: int,
        nlocals: int,
        code: List[Instr],
        exception_table: List[ExceptionEntry],
        mods,
        is_static: bool,
        is_ctor: bool,
        is_native: bool,
        return_descriptor: str,
        slot_names: List[str],
        slot_types: List[str],
        line: int = 0,
        param_descriptors: Optional[List[str]] = None,
    ) -> None:
        self.class_name = class_name
        self.name = name
        self.param_count = param_count
        self.nlocals = nlocals
        self.code = code
        self.exception_table = exception_table
        self.mods = mods
        self.is_static = is_static
        self.is_ctor = is_ctor
        self.is_native = is_native
        self.return_descriptor = return_descriptor  # 'void'|'int'|'boolean'|'char'|'ref'
        self.slot_names = slot_names  # debug: local slot -> source name
        self.slot_types = slot_types  # debug: local slot -> descriptor
        self.line = line
        self.param_descriptors = param_descriptors or []
        self.qualified_name = f"{class_name}.{name}"

    def __repr__(self) -> str:
        return f"<method {self.qualified_name}/{self.param_count}>"


class FieldLayout:
    """Resolved layout of instance fields for a class (own + inherited)."""

    __slots__ = ("names", "descriptors", "declaring", "instance_bytes")

    def __init__(self) -> None:
        self.names: List[str] = []
        self.descriptors: Dict[str, str] = {}
        self.declaring: Dict[str, str] = {}
        self.instance_bytes: int = 0

    def compute_size(self) -> None:
        body = sum(ELEM_SIZES[self.descriptors[n]] for n in self.names)
        self.instance_bytes = align(OBJECT_HEADER_BYTES + body)


class CompiledClass:
    """Runtime class: methods, ctor, static layout, superclass link."""

    __slots__ = (
        "name",
        "super_name",
        "methods",
        "ctor",
        "clinit",
        "layout",
        "static_fields",
        "static_descriptors",
        "static_mods",
        "field_mods",
        "is_library",
        "line",
    )

    def __init__(self, name: str, super_name: Optional[str], is_library: bool, line: int = 0) -> None:
        self.name = name
        self.super_name = super_name
        self.methods: Dict[str, CompiledMethod] = {}
        self.ctor: Optional[CompiledMethod] = None
        self.clinit: Optional[CompiledMethod] = None
        self.layout = FieldLayout()
        self.static_fields: List[str] = []
        self.static_descriptors: Dict[str, str] = {}
        self.static_mods: Dict[str, object] = {}
        self.field_mods: Dict[str, object] = {}
        self.is_library = is_library
        self.line = line

    def __repr__(self) -> str:
        return f"<class {self.name}>"


class Site:
    """An allocation (or last-use) site: a program point identified by
    class, method and line, plus what is allocated there."""

    __slots__ = ("site_id", "class_name", "method_name", "line", "kind", "created", "is_library")

    def __init__(
        self,
        site_id: int,
        class_name: str,
        method_name: str,
        line: int,
        kind: str,
        created: str,
        is_library: bool,
    ) -> None:
        self.site_id = site_id
        self.class_name = class_name
        self.method_name = method_name
        self.line = line
        self.kind = kind  # 'new' | 'newarray' | 'string' | 'concat' | 'tostr' | 'native'
        self.created = created  # class name or array descriptor
        self.is_library = is_library

    @property
    def label(self) -> str:
        return f"{self.class_name}.{self.method_name}:{self.line}"

    def __repr__(self) -> str:
        return f"<site {self.site_id} {self.label} new {self.created}>"


class CompiledProgram:
    """All compiled classes plus the allocation-site registry."""

    def __init__(self) -> None:
        self.classes: Dict[str, CompiledClass] = {}
        self.sites: List[Site] = []
        self.main_class: Optional[str] = None
        # Order in which <clinit> methods run at startup.
        self.clinit_order: List[str] = []

    def add_site(
        self,
        class_name: str,
        method_name: str,
        line: int,
        kind: str,
        created: str,
        is_library: bool,
    ) -> int:
        site_id = len(self.sites)
        self.sites.append(
            Site(site_id, class_name, method_name, line, kind, created, is_library)
        )
        return site_id

    def site(self, site_id: int) -> Site:
        return self.sites[site_id]

    def lookup_method(self, class_name: str, method_name: str) -> Optional[CompiledMethod]:
        """Resolve a method by walking up the superclass chain."""
        cls: Optional[CompiledClass] = self.classes.get(class_name)
        while cls is not None:
            method = cls.methods.get(method_name)
            if method is not None:
                return method
            cls = self.classes.get(cls.super_name) if cls.super_name else None
        return None

    def is_subclass(self, sub: str, sup: str) -> bool:
        name: Optional[str] = sub
        while name is not None:
            if name == sup:
                return True
            cls = self.classes.get(name)
            name = cls.super_name if cls else None
        return False

    def superclass_chain(self, name: str) -> List[str]:
        chain = []
        current: Optional[str] = name
        while current is not None:
            chain.append(current)
            cls = self.classes.get(current)
            current = cls.super_name if cls else None
        return chain

    def all_methods(self) -> List[CompiledMethod]:
        out = []
        for cls in self.classes.values():
            out.extend(cls.methods.values())
            if cls.ctor is not None:
                out.append(cls.ctor)
            if cls.clinit is not None:
                out.append(cls.clinit)
        return out
