"""Human-readable disassembly of compiled methods and programs."""

from __future__ import annotations

from typing import List

from repro.bytecode.program import CompiledMethod, CompiledProgram


def disassemble_method(method: CompiledMethod) -> str:
    """Render one method's bytecode, one instruction per line."""
    lines: List[str] = [f"{method.qualified_name} (locals={method.nlocals}):"]
    for pc, instr in enumerate(method.code):
        site = f"  ; site {instr.site}" if instr.site is not None else ""
        lines.append(f"  {pc:4d}: {instr!r}{site}")
    for entry in method.exception_table:
        lines.append(f"  {entry!r}")
    return "\n".join(lines)


def disassemble_program(program: CompiledProgram) -> str:
    """Render every class and method in the program."""
    chunks: List[str] = []
    for cls in program.classes.values():
        chunks.append(f"class {cls.name}" + (f" extends {cls.super_name}" if cls.super_name else ""))
        members = list(cls.methods.values())
        if cls.ctor is not None:
            members.append(cls.ctor)
        if cls.clinit is not None:
            members.append(cls.clinit)
        for method in members:
            if method.is_native:
                chunks.append(f"  native {method.qualified_name}")
            else:
                chunks.append(disassemble_method(method))
    return "\n".join(chunks)
