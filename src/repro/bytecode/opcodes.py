"""Opcode definitions.

Each opcode documents its stack effect as ``... before -> ... after``
(top of stack on the right).
"""

from __future__ import annotations


class Op:
    """Namespace of opcode constants (plain strings for easy debugging)."""

    # constants / locals
    CONST = "CONST"              # -> value          (int/bool/char payload)
    CONST_NULL = "CONST_NULL"    # -> null
    CONST_STRING = "CONST_STRING"  # -> str-ref      (interned constant-pool string)
    LOAD = "LOAD"                # -> value          (arg: slot)
    STORE = "STORE"              # value ->          (arg: slot)
    POP = "POP"                  # value ->
    DUP = "DUP"                  # v -> v v

    # objects
    NEWINIT = "NEWINIT"          # args... -> obj    (arg: class, argc, site)
    SUPERINIT = "SUPERINIT"      # args... ->        (arg: class, argc) runs super ctor on `this`
    NEWARRAY = "NEWARRAY"        # length -> arr     (arg: elem descriptor, site)
    GETFIELD = "GETFIELD"        # obj -> value      (arg: field name)       [use]
    PUTFIELD = "PUTFIELD"        # obj value ->      (arg: field name)       [use]
    GETSTATIC = "GETSTATIC"      # -> value          (arg: class, field)
    PUTSTATIC = "PUTSTATIC"      # value ->          (arg: class, field)
    ALOAD = "ALOAD"              # arr idx -> value                          [use]
    ASTORE = "ASTORE"            # arr idx value ->                          [use]
    ARRAYLEN = "ARRAYLEN"        # arr -> int                                [use]
    CHECKCAST = "CHECKCAST"      # obj -> obj        (arg: type descriptor)
    INSTANCEOF = "INSTANCEOF"    # obj -> bool       (arg: class)

    # calls
    INVOKEV = "INVOKEV"          # obj args... -> [result]  (arg: name, argc) [use]
    INVOKESTATIC = "INVOKESTATIC"  # args... -> [result]    (arg: class, name, argc)
    INVOKESUPER = "INVOKESUPER"  # args... -> [result]      (arg: class, name, argc) [use of this]
    RET = "RET"                  # ->                (return void)
    RETV = "RETV"                # value ->          (return value)

    # arithmetic / logic (ints and chars are ints at runtime)
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"                  # throws ArithmeticException on /0
    MOD = "MOD"
    NEG = "NEG"
    EQ = "EQ"
    NE = "NE"
    LT = "LT"
    LE = "LE"
    GT = "GT"
    GE = "GE"
    REFEQ = "REFEQ"              # ref ref -> bool (identity)
    REFNE = "REFNE"
    NOT = "NOT"
    CAST_CHAR = "CAST_CHAR"      # int -> int (wraps to 0..65535)

    # strings
    TOSTR = "TOSTR"              # value -> str-ref  (arg: mode in {int,char,bool,ref}) allocates [site]
    CONCAT = "CONCAT"            # str str -> str    allocates [site]

    # control flow
    JUMP = "JUMP"                # ->                (arg: target pc)
    JIF = "JIF"                  # bool ->           jump if false
    JIT = "JIT"                  # bool ->           jump if true
    THROW = "THROW"              # throwable ->

    # monitors
    MONENTER = "MONENTER"        # obj ->                                    [use]
    MONEXIT = "MONEXIT"          # obj ->                                    [use]


# Opcodes whose execution constitutes a *use* of their receiver object in
# the sense of the paper (§2.1.1): getfield, putfield, invoking a method on
# the object, monitor enter/exit, and handle dereference (array access and
# length, native calls).
USE_OPS = frozenset(
    [
        Op.GETFIELD,
        Op.PUTFIELD,
        Op.INVOKEV,
        Op.ALOAD,
        Op.ASTORE,
        Op.ARRAYLEN,
        Op.MONENTER,
        Op.MONEXIT,
    ]
)

# Opcodes that allocate heap objects (and therefore carry a site id).
ALLOC_OPS = frozenset([Op.NEWINIT, Op.NEWARRAY, Op.TOSTR, Op.CONCAT, Op.CONST_STRING])
