"""The Instr class: one bytecode instruction."""

from __future__ import annotations

from typing import Optional, Tuple


class Instr:
    """A single instruction.

    ``args`` is a tuple whose meaning depends on the opcode (see
    :class:`repro.bytecode.opcodes.Op`). ``line`` is the source line the
    instruction was compiled from; ``site`` is the allocation-site id for
    allocating opcodes (None otherwise).
    """

    __slots__ = ("op", "args", "line", "site")

    def __init__(
        self,
        op: str,
        args: Tuple = (),
        line: int = 0,
        site: Optional[int] = None,
    ) -> None:
        self.op = op
        self.args = args
        self.line = line
        self.site = site

    def __repr__(self) -> str:
        parts = [self.op]
        if self.args:
            parts.append(", ".join(repr(a) for a in self.args))
        if self.site is not None:
            parts.append(f"@site{self.site}")
        return " ".join(parts)
