"""Interprocedural use analysis: whole-program verdicts for the linter.

The §5 analyses in :mod:`repro.analysis` are per-method (liveness,
lazy points) or per-field-scope (usage, indirect usage). This module
upgrades them to whole-program verdicts over the CHA call graph:

* **never-used fields/locals** — the usage + indirect-usage fixpoint
  restricted to call-graph-reachable methods (§5.4's "(R)" refinement),
  with the §5.5 exception gate (removal is only proposed when no
  handler could observe the removed code's OutOfMemoryError). This is
  literally :func:`repro.transform.dead_code.dead_allocation_candidates`
  — the linter and the rewriter share one analysis core by design.

* **must-used fields** — a forward must-analysis (intersection merge,
  TOP initialization, :func:`repro.analysis.dataflow.solve_forward_must`)
  computing per-method summaries "fields definitely read by the time
  the method finishes", propagated top-down over the call graph to a
  greatest fixpoint. Exception soundness: the per-method CFGs carry
  exception edges (a protected call merges the pre-call fact into its
  handler), and THROW exits participate in the summary intersection, so
  a path that leaves a method exceptionally never inflates its summary.
  The whole-program verdict unions main's summary with every
  ``<clinit>``'s (they always run). Instance fields are tracked by
  name (the bytecode's own resolution granularity) — good enough for
  the only consumer, severity adjustment of lazy candidates.

* **droppable locals** — reference locals that provably hold a fresh
  heap object and have a liveness-safe nulling point strictly before
  the method's last statement ("last use before allocation-site
  exit"): the §3.3.1 assign-null opportunity, validated by the same
  :func:`~repro.transform.assign_null.null_insertion_candidates` sweep
  the rewriter uses.

* **lazy field candidates** — constructor-assigned allocation fields
  with their §3.3.3 safety gates evaluated (single assignment, constant
  args, ``lazy_safe`` constructor purity, no OutOfMemoryError handler
  anywhere — the last via :mod:`repro.analysis.exceptions`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.dataflow import solve_forward_must
from repro.analysis.purity import ctor_purity
from repro.bytecode.opcodes import Op
from repro.bytecode.program import CompiledMethod
from repro.mjava import ast
from repro.transform.assign_null import null_insertion_candidates
from repro.transform.dead_code import DeadAllocationCandidates, dead_allocation_candidates

MethodKey = Tuple[str, str]

# Instructions whose result is a freshly allocated (or newly
# materialized) heap reference.
_FRESH_REF_OPS = {Op.NEWINIT, Op.NEWARRAY, Op.CONCAT, Op.TOSTR, Op.CONST_STRING}


class DroppableLocal(NamedTuple):
    """A local reference with a safe early nulling point."""

    class_name: str
    method_name: str
    var_name: str
    alloc_line: int  # line of the store that fills it
    null_after_line: int  # earliest liveness-safe insertion line
    trailing_lines: int  # how many source lines of code follow the point


class LazyFieldCandidate(NamedTuple):
    """A constructor-allocated field with its §3.3.3 gate results."""

    class_name: str
    field_name: str
    alloc_line: int  # line of the ctor assignment / field initializer
    allocated: str  # what is allocated, for the message
    single_assignment: bool
    constant_args: bool
    ctor_lazy_safe: bool
    oom_unhandled: bool
    definitely_used: bool  # per the must-analysis: used on every run

    @property
    def all_gates_pass(self) -> bool:
        return (
            self.single_assignment
            and self.constant_args
            and self.ctor_lazy_safe
            and self.oom_unhandled
        )


class InterproceduralUseAnalysis:
    """Whole-program use facts for one compiled+linked program.

    Built from a :class:`repro.lint.passes.AnalysisContext`; every
    underlying artifact (compiled program, call graph, CFGs, thrown-
    exception sets) comes from the context's shared cache, so running
    this analysis after others re-runs nothing.
    """

    def __init__(self, context) -> None:
        self.context = context
        self._dead: Optional[DeadAllocationCandidates] = None
        self._must_summaries: Optional[Dict[MethodKey, FrozenSet[str]]] = None
        self._must_used: Optional[FrozenSet[str]] = None

    # -- never-used (the §5.1 fixpoint, reachability-restricted) ----------

    @property
    def dead(self) -> DeadAllocationCandidates:
        if self._dead is None:
            ctx = self.context
            self._dead = dead_allocation_candidates(
                ctx.program_ast,
                ctx.main_class,
                table=ctx.table,
                compiled=ctx.compiled,
                callgraph=ctx.callgraph,
            )
        return self._dead

    # -- must-used fields (forward must-analysis over the call graph) -----

    def _field_token(self, instr) -> Optional[str]:
        if instr.op == Op.GETFIELD:
            return instr.args[0]
        if instr.op == Op.GETSTATIC:
            return f"{instr.args[0]}.{instr.args[1]}"
        return None

    def _call_targets(self, instr) -> List[MethodKey]:
        callgraph = self.context.callgraph
        if instr.op == Op.INVOKEV:
            name, argc = instr.args
            return callgraph._virtual_targets(name, argc)
        if instr.op in (Op.NEWINIT, Op.SUPERINIT):
            return [(instr.args[0], "<init>")]
        if instr.op in (Op.INVOKESTATIC, Op.INVOKESUPER):
            cls_name, name, _ = instr.args
            target = callgraph._static_target(cls_name, name)
            return [target] if target else []
        return []

    def _method_must_use(
        self,
        method: CompiledMethod,
        summaries: Dict[MethodKey, FrozenSet[str]],
        universe: FrozenSet[str],
    ) -> FrozenSet[str]:
        """Fields definitely read on every path through ``method``
        (normal *or* exceptional exit), given current callee summaries."""
        if method.is_native or not method.code:
            return frozenset()
        cfg = self.context.cfg(method)

        def gen_kill(pc: int):
            instr = method.code[pc]
            token = self._field_token(instr)
            if token is not None:
                return frozenset((token,)), frozenset()
            targets = self._call_targets(instr)
            if targets:
                # A virtual call definitely reads only what *every* CHA
                # target definitely reads.
                gen: FrozenSet[str] = universe
                for target in targets:
                    gen = gen & summaries.get(target, frozenset())
                return gen, frozenset()
            return frozenset(), frozenset()

        _, outs = solve_forward_must(cfg, gen_kill, universe)
        exits = cfg.exits or [len(method.code) - 1]
        summary = universe
        for pc in exits:
            summary = summary & outs[pc]
        return summary

    def must_summaries(self) -> Dict[MethodKey, FrozenSet[str]]:
        """Greatest-fixpoint per-method must-use summaries over the
        reachable portion of the call graph."""
        if self._must_summaries is not None:
            return self._must_summaries
        ctx = self.context
        program = ctx.compiled
        universe: Set[str] = set()
        for cls in program.classes.values():
            universe.update(cls.layout.descriptors)
            for field in cls.static_fields:
                universe.add(f"{cls.name}.{field}")
        top = frozenset(universe)

        summaries: Dict[MethodKey, FrozenSet[str]] = {}
        methods: Dict[MethodKey, CompiledMethod] = {}
        for key in ctx.callgraph.reachable:
            method = ctx.callgraph._method(key)
            if method is None or method.is_native:
                summaries[key] = frozenset()
            else:
                methods[key] = method
                summaries[key] = top  # TOP init: shrink to the fixpoint
        changed = True
        while changed:
            changed = False
            for key, method in methods.items():
                new = self._method_must_use(method, summaries, top)
                if new != summaries[key]:
                    summaries[key] = new
                    changed = True
        self._must_summaries = summaries
        return summaries

    def must_used_fields(self) -> FrozenSet[str]:
        """Field tokens definitely read on *every* program run: the
        union of main's summary and every ``<clinit>``'s."""
        if self._must_used is not None:
            return self._must_used
        ctx = self.context
        summaries = self.must_summaries()
        used: Set[str] = set()
        main_key = (ctx.compiled.main_class, "main")
        used.update(summaries.get(main_key, frozenset()))
        for name, cls in ctx.compiled.classes.items():
            if cls.clinit is not None:
                used.update(summaries.get((name, "<clinit>"), frozenset()))
        self._must_used = frozenset(used)
        return self._must_used

    def field_definitely_used(self, class_name: str, field_name: str, static: bool) -> bool:
        token = f"{class_name}.{field_name}" if static else field_name
        return token in self.must_used_fields()

    # -- droppable locals (§3.3.1, liveness-validated) --------------------

    def droppable_locals(self) -> List[DroppableLocal]:
        ctx = self.context
        out: List[DroppableLocal] = []
        for method in sorted(
            ctx.callgraph.reachable_compiled_methods(),
            key=lambda m: (m.class_name, m.name),
        ):
            cls = ctx.compiled.classes.get(method.class_name)
            if cls is None or cls.is_library or method.is_native or not method.code:
                continue
            last_line = max(i.line for i in method.code)
            first_local = method.param_count + (0 if method.is_static else 1)
            for slot in range(first_local, method.nlocals):
                if method.slot_types[slot] != "ref":
                    continue
                name = method.slot_names[slot]
                if name.startswith("$"):
                    continue
                stores = [
                    pc
                    for pc, i in enumerate(method.code)
                    if i.op == Op.STORE and i.args == (slot,)
                ]
                loads = [
                    pc
                    for pc, i in enumerate(method.code)
                    if i.op == Op.LOAD and i.args == (slot,)
                ]
                if not stores or not loads:
                    continue  # never-loaded locals are DRAG001's business
                if not self._holds_fresh_ref(method, stores):
                    continue
                candidates = null_insertion_candidates(method, name)
                candidates = [line for line in candidates if line < last_line]
                if not candidates:
                    continue
                alloc_line = method.code[stores[0]].line
                out.append(
                    DroppableLocal(
                        method.class_name,
                        method.name,
                        name,
                        alloc_line,
                        candidates[0],
                        last_line - candidates[0],
                    )
                )
        return out

    def _holds_fresh_ref(self, method: CompiledMethod, store_pcs: List[int]) -> bool:
        """Does some store to the slot plausibly bind a fresh heap
        object — a direct allocation, or a call that returns a
        reference (the allocation may happen in the callee)? Plain
        copies (LOAD/GETFIELD) are aliases; nulling an alias saves
        nothing, so they do not qualify."""
        for pc in store_pcs:
            if pc == 0:
                continue
            prev = method.code[pc - 1]
            if prev.op in _FRESH_REF_OPS:
                return True
            if prev.op in (Op.INVOKEV, Op.INVOKESTATIC, Op.INVOKESUPER):
                for target in self._call_targets(prev):
                    target_method = self.context.callgraph._method(target)
                    if target_method is not None and target_method.return_descriptor == "ref":
                        return True
        return False

    # -- lazy allocation candidates (§3.3.3) ------------------------------

    def lazy_field_candidates(self) -> List[LazyFieldCandidate]:
        ctx = self.context
        oom_unhandled = not ctx.exceptions.program_has_handler_for("OutOfMemoryError")
        out: List[LazyFieldCandidate] = []
        for decl in ctx.program_ast.classes:
            compiled_cls = ctx.compiled.classes.get(decl.name)
            if compiled_cls is None or compiled_cls.is_library:
                continue
            assignments = self._ctor_field_allocations(decl)
            for field_name, allocs in sorted(assignments.items()):
                field_decl = next(
                    (f for f in decl.fields if f.name == field_name), None
                )
                if field_decl is None or field_decl.mods.static:
                    continue
                single = len(allocs) == 1 and not self._assigned_outside_ctor(
                    decl, field_name
                )
                expr, line = allocs[0]
                constant = isinstance(expr, ast.New) and all(
                    isinstance(a, (ast.IntLit, ast.CharLit, ast.BoolLit, ast.StringLit, ast.NullLit))
                    for a in expr.args
                )
                lazy_safe = (
                    isinstance(expr, ast.New)
                    and ctx.table.has(expr.class_name)
                    and ctor_purity(ctx.table, expr.class_name).lazy_safe
                )
                out.append(
                    LazyFieldCandidate(
                        decl.name,
                        field_name,
                        line,
                        _describe_alloc(expr),
                        single,
                        constant,
                        lazy_safe,
                        oom_unhandled,
                        self.field_definitely_used(decl.name, field_name, static=False),
                    )
                )
        return out

    def _ctor_field_allocations(self, decl: ast.ClassDecl):
        """field name -> [(alloc expr, line)] for ctor assignments and
        field initializers whose right-hand side allocates."""
        out: Dict[str, List[Tuple[ast.Expr, int]]] = {}
        for field in decl.fields:
            if field.init is not None and isinstance(field.init, (ast.New, ast.NewArray)):
                out.setdefault(field.name, []).append((field.init, field.pos.line))
        field_names = {f.name for f in decl.fields}
        for ctor in decl.ctors:
            for node in ctor.body.walk():
                if not isinstance(node, ast.Assign):
                    continue
                target = node.target
                name = None
                if isinstance(target, ast.Name) and target.ident in field_names:
                    name = target.ident
                elif isinstance(target, ast.FieldAccess) and isinstance(
                    target.target, ast.This
                ):
                    name = target.name
                if name is not None and isinstance(node.value, (ast.New, ast.NewArray)):
                    out.setdefault(name, []).append((node.value, node.pos.line))
        return out

    def _assigned_outside_ctor(self, decl: ast.ClassDecl, field_name: str) -> bool:
        for method in decl.methods:
            if method.body is None:
                continue
            for node in method.body.walk():
                if isinstance(node, ast.Assign):
                    target = node.target
                    if (
                        isinstance(target, ast.Name) and target.ident == field_name
                    ) or (
                        isinstance(target, ast.FieldAccess)
                        and target.name == field_name
                        and isinstance(target.target, ast.This)
                    ):
                        return True
        return False


def _describe_alloc(expr: ast.Expr) -> str:
    if isinstance(expr, ast.New):
        return f"new {expr.class_name}(...)"
    if isinstance(expr, ast.NewArray):
        return "a new array"
    return type(expr).__name__
