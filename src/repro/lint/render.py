"""Render a :class:`~repro.lint.diagnostics.LintResult` as text, JSON,
or SARIF 2.1.0.

Text output is one finding per line (``severity RULEID Class.member:line
message``) plus a summary; JSON is a stable machine shape mirroring the
Diagnostic fields; SARIF follows the 2.1.0 schema closely enough for
code-scanning uploads: one run, one driver with the full rule metadata,
one result per finding with ``ruleId``, ``level``, ``message`` and a
logical location (mini-Java programs are single-file, so the physical
location carries the program path and source line).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.lint.diagnostics import Diagnostic, LintResult
from repro.lint.rules import ALL_RULES

FORMATS = ("text", "json", "sarif")

#: Diagnostic severity -> SARIF result level. SARIF has no "note" rank
#: below "warning" other than "note" itself, so the mapping is direct.
_SARIF_LEVEL = {"error": "error", "warning": "warning", "note": "note"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render(
    result: LintResult,
    fmt: str = "text",
    explain: bool = False,
    top: Optional[int] = None,
) -> str:
    """``top`` limits every format to the N highest-ranked findings
    (the shared ``--top`` semantics of report/lint); None shows all."""
    if fmt == "text":
        return render_text(result, explain=explain, top=top)
    if fmt == "json":
        return json.dumps(to_json(result, top=top), indent=2, sort_keys=True)
    if fmt == "sarif":
        return json.dumps(to_sarif(result, top=top), indent=2, sort_keys=True)
    raise ValueError(f"unknown format {fmt!r}; have {FORMATS}")


def _ranked(result: LintResult, top: Optional[int]) -> List[Diagnostic]:
    """The findings every renderer shows: sorted, optionally capped."""
    diags = result.sorted()
    if top is not None and top >= 0:
        return diags[:top]
    return diags


# ---------------------------------------------------------------------------
# text
# ---------------------------------------------------------------------------


def _drag_suffix(diag: Diagnostic, result: LintResult) -> str:
    if diag.drag is None:
        if result.profile_path is not None:
            return "  [no drag measured]"
        return ""
    share = f", {diag.drag_share:.1%} of total" if diag.drag_share is not None else ""
    return f"  [drag {diag.drag} byte-steps{share}]"


def render_text(
    result: LintResult, explain: bool = False, top: Optional[int] = None
) -> str:
    lines: List[str] = []
    header = f"lint: {result.program_path or '<program>'}"
    if result.main_class:
        header += f" (main {result.main_class})"
    if result.profile_path:
        header += f" + profile {result.profile_path}"
    lines.append(header)
    shown = _ranked(result, top)
    for diag in shown:
        lines.append(
            f"{diag.severity:7s} {diag.rule_id} {diag.span.label}: "
            f"{diag.message}{_drag_suffix(diag, result)}"
        )
        if diag.suggestion:
            lines.append(f"        -> suggested transformation: {diag.suggestion}")
        if explain and diag.extra.get("explain"):
            lines.append(f"        == {diag.extra['explain']}")
    if explain:
        for note in result.notes:
            lines.append(f"note    analysis: {note}")
    counts = result.counts()
    total = sum(counts.values())
    if total:
        summary = ", ".join(f"{rid} x{n}" for rid, n in sorted(counts.items()))
        suffix = f" (showing top {len(shown)})" if len(shown) < total else ""
        lines.append(f"{total} finding(s): {summary}{suffix}")
    else:
        lines.append("no findings")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# json
# ---------------------------------------------------------------------------


def _diag_json(diag: Diagnostic) -> Dict:
    out: Dict = {
        "rule_id": diag.rule_id,
        "rule_name": diag.rule.name,
        "severity": diag.severity,
        "class": diag.span.class_name,
        "member": diag.span.member,
        "line": diag.span.line,
        "label": diag.span.label,
        "message": diag.message,
        "suggestion": diag.suggestion,
        "subject": list(diag.subject),
    }
    if diag.drag is not None:
        out["drag"] = diag.drag
        out["drag_share"] = diag.drag_share
    if diag.extra:
        out["extra"] = {
            k: v for k, v in diag.extra.items() if _json_safe(v)
        }
    return out


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
        return True
    except TypeError:
        return False


def to_json(result: LintResult, top: Optional[int] = None) -> Dict:
    return {
        "program": result.program_path,
        "main_class": result.main_class,
        "profile": result.profile_path,
        "profile_total_drag": result.profile_total_drag,
        "counts": result.counts(),
        "notes": list(result.notes),
        "diagnostics": [_diag_json(d) for d in _ranked(result, top)],
    }


# ---------------------------------------------------------------------------
# sarif
# ---------------------------------------------------------------------------


def _sarif_rules() -> List[Dict]:
    rules = []
    for rule in ALL_RULES:
        rules.append(
            {
                "id": rule.rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": _SARIF_LEVEL[rule.default_severity]},
                "properties": {
                    "paperRef": rule.paper_ref,
                    "transformation": rule.transformation,
                },
            }
        )
    return rules


def _sarif_result(diag: Diagnostic, result: LintResult, rule_index: Dict[str, int]) -> Dict:
    uri = result.program_path or "program.mj"
    out: Dict = {
        "ruleId": diag.rule_id,
        "ruleIndex": rule_index[diag.rule_id],
        "level": _SARIF_LEVEL[diag.severity],
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": max(diag.span.line, 1)},
                },
                "logicalLocations": [
                    {
                        "fullyQualifiedName": diag.span.label,
                        "kind": "member",
                    }
                ],
            }
        ],
    }
    properties: Dict = {"subject": list(diag.subject)}
    if diag.suggestion:
        properties["suggestedTransformation"] = diag.suggestion
    if diag.drag is not None:
        properties["drag"] = diag.drag
        properties["dragShare"] = diag.drag_share
    out["properties"] = properties
    return out


def to_sarif(
    result: LintResult,
    tool_version: Optional[str] = None,
    top: Optional[int] = None,
) -> Dict:
    rule_index = {rule.rule_id: i for i, rule in enumerate(ALL_RULES)}
    driver: Dict = {
        "name": "repro-lint",
        "informationUri": "https://example.invalid/repro",
        "rules": _sarif_rules(),
    }
    if tool_version:
        driver["version"] = tool_version
    run: Dict = {
        "tool": {"driver": driver},
        "results": [
            _sarif_result(d, result, rule_index) for d in _ranked(result, top)
        ],
        "columnKind": "utf16CodeUnits",
    }
    if result.profile_path:
        run["properties"] = {
            "profile": result.profile_path,
            "profileTotalDrag": result.profile_total_drag,
        }
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
