"""Diagnostics: rule-ID'd findings with source spans and drag joins.

A :class:`Diagnostic` is one finding: a rule, a severity, a source
span (class.member:line — the same ``Class.method:line`` labels the
profiler keys allocation sites on, which is what makes the
profile-correlation join exact), a message, and the suggested §3.3
transformation. :class:`LintResult` collects them, deduplicates,
sorts, and — given a phase-1 drag log — ranks findings by measured
drag bytes·time exactly as :class:`repro.core.analyzer.DragAnalysis`
ranks allocation sites.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.rules import Rule, SEVERITY_RANK, severity_at_least


class SourceSpan:
    """A program point: class, member (method / <init> / <clinit> /
    field), and source line."""

    __slots__ = ("class_name", "member", "line")

    def __init__(self, class_name: str, member: str, line: int) -> None:
        self.class_name = class_name
        self.member = member
        self.line = line

    @property
    def label(self) -> str:
        """The profiler's site-label spelling of this point."""
        return f"{self.class_name}.{self.member}:{self.line}"

    def as_tuple(self) -> Tuple[str, str, int]:
        return (self.class_name, self.member, self.line)

    def __eq__(self, other) -> bool:
        return isinstance(other, SourceSpan) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return f"<span {self.label}>"


class Diagnostic:
    """One finding."""

    __slots__ = (
        "rule",
        "severity",
        "span",
        "message",
        "suggestion",
        "subject",
        "drag",
        "drag_share",
        "extra",
    )

    def __init__(
        self,
        rule: Rule,
        span: SourceSpan,
        message: str,
        severity: Optional[str] = None,
        suggestion: Optional[str] = None,
        subject: Optional[Tuple[str, ...]] = None,
        extra: Optional[dict] = None,
    ) -> None:
        self.rule = rule
        self.severity = severity or rule.default_severity
        self.span = span
        self.message = message
        # Human-readable rewrite suggestion; defaults to the rule's
        # transformation name.
        self.suggestion = suggestion or rule.transformation
        # Machine-matchable identity of what the finding is about, e.g.
        # ("field", "Statistics", "table") or ("local", "Main", "cycle",
        # "buffer") — the advisor joins on this.
        self.subject = subject or ()
        # Filled by profile correlation.
        self.drag: Optional[int] = None
        self.drag_share: Optional[float] = None
        self.extra = extra or {}

    @property
    def rule_id(self) -> str:
        return self.rule.rule_id

    @property
    def ref(self) -> str:
        """A stable human-readable reference for this finding, e.g.
        ``DRAG002@Main.cycle:12(local,Main,cycle,buffer)`` — used by
        optimization patches to name their originating diagnostics."""
        base = f"{self.rule_id}@{self.span.label}"
        if self.subject:
            return base + "(" + ",".join(str(s) for s in self.subject) + ")"
        return base

    def sort_key(self):
        """Severity, then measured drag (when correlated), then stable
        source order."""
        return (
            SEVERITY_RANK[self.severity],
            -(self.drag or 0),
            self.rule_id,
            self.span.as_tuple(),
            self.subject,
        )

    def identity(self):
        return (self.rule_id, self.span.as_tuple(), self.subject)

    def __repr__(self) -> str:
        return f"<{self.rule_id} {self.severity} {self.span.label}: {self.message[:40]}>"


class LintResult:
    """All findings for one program, plus run metadata."""

    def __init__(self, program_path: Optional[str] = None, main_class: Optional[str] = None) -> None:
        self.program_path = program_path
        self.main_class = main_class
        self.diagnostics: List[Diagnostic] = []
        self.profile_path: Optional[str] = None
        self.profile_total_drag: Optional[int] = None
        # Analysis-level remarks (e.g. the heap-liveness soundness
        # escape hatch explaining a degradation to TOP); rendered by
        # ``lint --explain``.
        self.notes: List[str] = []
        self._seen = set()

    # -- collection -------------------------------------------------------

    def add(self, diag: Diagnostic) -> bool:
        """Add one finding; duplicates (same rule, span and subject) are
        dropped so passes can overlap without double-reporting."""
        key = diag.identity()
        if key in self._seen:
            return False
        self._seen.add(key)
        self.diagnostics.append(diag)
        return True

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for diag in diags:
            self.add(diag)

    # -- views ------------------------------------------------------------

    def sorted(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=lambda d: d.sort_key())

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.sorted() if d.rule_id == rule_id]

    def at_least(self, threshold: str) -> List[Diagnostic]:
        return [d for d in self.sorted() if severity_at_least(d.severity, threshold)]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for diag in self.diagnostics:
            out[diag.rule_id] = out.get(diag.rule_id, 0) + 1
        return out

    def find(self, rule_id: str, *subject_prefix) -> List[Diagnostic]:
        """Findings of one rule whose subject starts with the given
        components — the advisor's join primitive."""
        out = []
        for diag in self.diagnostics:
            if diag.rule_id != rule_id:
                continue
            if diag.subject[: len(subject_prefix)] == subject_prefix:
                out.append(diag)
        return out

    # -- profile correlation ----------------------------------------------

    def correlate(self, analysis, profile_path: Optional[str] = None) -> None:
        """Join findings against a drag analysis (batch
        :class:`~repro.core.analyzer.DragAnalysis` or streaming
        :class:`~repro.stream.aggregate.StreamingDragAnalysis` — both
        expose ``by_site`` keyed on site labels and ``total_drag``).

        A finding's span is the allocation point it talks about, so
        ``span.label`` matches the profiler's site label exactly; the
        measured drag bytes·time lands on the finding and re-ranks the
        output. Findings about sites the run never allocated keep
        ``drag=None`` and sort after measured ones of equal severity.
        """
        self.profile_path = profile_path
        # Weight-corrected estimates: for a byte-sampled profile these
        # are the Horvitz-Thompson drag estimates; for a full-rate
        # profile they are the exact observed ints, so correlation is
        # transparent to whether the log was sampled.
        total = analysis.est_total_drag
        self.profile_total_drag = total
        for diag in self.diagnostics:
            stats = analysis.by_site.get(diag.span.label)
            if stats is None and diag.extra.get("alt_labels"):
                for label in diag.extra["alt_labels"]:
                    stats = analysis.by_site.get(label)
                    if stats is not None:
                        break
            if stats is not None:
                diag.drag = stats.est_drag
                diag.drag_share = stats.est_drag / total if total > 0 else 0.0
