"""The drag-lint rule registry.

Each rule names one §5-automatable rewrite opportunity (or a piece of
static information §3.2 says the tool should surface). Rule IDs are
stable — they appear in text output, JSON, SARIF, CI gates and the
advisor's provenance trail — so new rules must append, never renumber.

Severity vocabulary (ordered): ``error`` > ``warning`` > ``note``.
``error`` means "the analyses prove the §3.3 transformation safe and
profitable in any run"; ``warning`` means "safe, profitability depends
on the workload"; ``note`` is informational (e.g. the transformation's
safety gates did not all pass, or the finding is advisory).
"""

from __future__ import annotations

from typing import Dict, List, Optional

SEVERITIES = ("error", "warning", "note")

#: Numeric rank for gating: error=0 (most severe).
SEVERITY_RANK: Dict[str, int] = {name: i for i, name in enumerate(SEVERITIES)}


class Rule:
    """One registered diagnostic rule."""

    __slots__ = ("rule_id", "name", "summary", "default_severity", "transformation", "paper_ref")

    def __init__(
        self,
        rule_id: str,
        name: str,
        summary: str,
        default_severity: str,
        transformation: Optional[str],
        paper_ref: str,
    ) -> None:
        if default_severity not in SEVERITY_RANK:
            raise ValueError(f"unknown severity {default_severity!r}")
        self.rule_id = rule_id
        self.name = name
        self.summary = summary
        self.default_severity = default_severity
        self.transformation = transformation  # advisor action name, if any
        self.paper_ref = paper_ref

    def __repr__(self) -> str:
        return f"<rule {self.rule_id} {self.name}>"


DRAG001 = Rule(
    "DRAG001",
    "never-used-allocation",
    "An allocation is stored into a variable that is provably never "
    "read in any call-graph-reachable method; the allocation (and the "
    "store) can be removed.",
    "warning",
    "dead-code-removal",
    "§3.3.2 / §5.1 usage & indirect-usage",
)

DRAG002 = Rule(
    "DRAG002",
    "droppable-reference",
    "A reference has no further use on any path after a program point "
    "well before its holder exits scope; assigning null there (or "
    "clearing the logically-removed array slot) shortens drag.",
    "warning",
    "assign-null",
    "§3.3.1 / §5.1 liveness, §5.2 array liveness",
)

DRAG003 = Rule(
    "DRAG003",
    "lazy-allocation-candidate",
    "A field is eagerly assigned a fresh allocation in its constructor "
    "but is not used on every path; allocating on first use avoids the "
    "allocation entirely for instances that never touch it.",
    "warning",
    "lazy-allocation",
    "§3.3.3 / §5.1 minimal code insertion",
)

DRAG004 = Rule(
    "DRAG004",
    "unreachable-method",
    "A declared method is not reachable from main or any static "
    "initializer; its code (and any allocations in it) is dead weight.",
    "note",
    None,
    "§5.4 call graph",
)

DRAG005 = Rule(
    "DRAG005",
    "oversized-array",
    "A constant-length array allocation reserves a large block whose "
    "logical size is tracked separately (or that greatly exceeds "
    "typical use); consider demand-driven sizing or clearing dead "
    "slots.",
    "note",
    None,
    "§5.2 array liveness",
)

DRAG006 = Rule(
    "DRAG006",
    "dead-heap-path",
    "A heap access path (field, static or array-element region) is "
    "written but no path through it is ever observably read in any "
    "reachable method; the stores only pin dragged bytes and can be "
    "rewritten to store null.",
    "warning",
    "null-dead-heap-store",
    "§3.4 pattern 4; heap reference analysis (access graphs)",
)

DRAG007 = Rule(
    "DRAG007",
    "droppable-container-entry",
    "A container reachable through a local stays live, but every heap "
    "access path through one of its reference fields dies before the "
    "container does; assigning the field null after its last use "
    "releases what it pins.",
    "warning",
    "assign-null-heap-field",
    "§3.4 pattern 4; heap reference analysis (access graphs)",
)

DRAG008 = Rule(
    "DRAG008",
    "high-retained-container",
    "A container's dominator-tree retained size says it single-handedly "
    "keeps a large share of the reachable heap alive — including objects "
    "the profile measured drag at; cutting the dominating reference "
    "after the holder's last use releases the whole retained subtree.",
    "warning",
    "assign-null-heap-field",
    "§3.4 pattern 4; dominator-tree retained size (DESIGN.md §15)",
)

ALL_RULES: List[Rule] = [
    DRAG001, DRAG002, DRAG003, DRAG004, DRAG005, DRAG006, DRAG007, DRAG008,
]

RULES_BY_ID: Dict[str, Rule] = {r.rule_id: r for r in ALL_RULES}


def get_rule(rule_id: str) -> Rule:
    rule = RULES_BY_ID.get(rule_id)
    if rule is None:
        raise KeyError(f"unknown rule {rule_id!r}; have {sorted(RULES_BY_ID)}")
    return rule


def severity_at_least(severity: str, threshold: str) -> bool:
    """Is ``severity`` at least as severe as ``threshold``?"""
    return SEVERITY_RANK[severity] <= SEVERITY_RANK[threshold]
