"""Static drag linting: find drag before running the program.

The paper's §5 observes that much of what the drag profiler measures
dynamically is visible statically: allocations never used, references
held past their last use, fields eagerly allocated but conditionally
needed. This package runs those analyses as a linter — compile once,
analyze once, emit rule-ID'd diagnostics (DRAG001..DRAG005) with
source spans and suggested §3.3 transformations — and can optionally
join the findings against a phase-1 drag log to rank them by measured
bytes·time.

Entry points:

- :func:`lint_program` — lint an already-linked AST.
- :func:`lint_file` — load, link, and lint a ``.mj`` file.
- :func:`detect_main_class` — find the class declaring static main.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic, LintResult, SourceSpan
from repro.lint.passes import AnalysisContext, LintError, Pass, PassManager, standard_pass_manager
from repro.lint.render import FORMATS, render, to_json, to_sarif
from repro.lint.rules import ALL_RULES, RULES_BY_ID, SEVERITIES, get_rule
from repro.mjava import ast

__all__ = [
    "ALL_RULES",
    "AnalysisContext",
    "Diagnostic",
    "FORMATS",
    "LintError",
    "LintResult",
    "Pass",
    "PassManager",
    "RULES_BY_ID",
    "SEVERITIES",
    "SourceSpan",
    "detect_main_class",
    "get_rule",
    "lint_file",
    "lint_program",
    "render",
    "standard_pass_manager",
    "to_json",
    "to_sarif",
]


def detect_main_class(program: ast.Program) -> str:
    """The unique application class declaring ``static main``."""
    mains = [
        decl.name
        for decl in program.classes
        if not decl.is_library
        and any(m.name == "main" and m.mods.static for m in decl.methods)
    ]
    if len(mains) != 1:
        raise LintError(
            "cannot auto-detect main class "
            f"({'no' if not mains else 'multiple'} static main: {mains}); "
            "pass --main"
        )
    return mains[0]


def lint_program(
    program: ast.Program,
    main_class: str,
    program_path: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
    context: Optional[AnalysisContext] = None,
    telemetry=None,
    snapshot=None,
    drag=None,
) -> LintResult:
    """Run the standard lint pipeline over a linked program AST.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, or None) records
    per-pass spans/durations and per-rule diagnostic counts.
    ``snapshot`` (a :class:`repro.snapshot.SnapshotAnalysis`) and
    ``drag`` (a :class:`repro.core.analyzer.DragAnalysis`) attach
    dynamic evidence for DRAG008; without a snapshot that rule is
    silent.
    """
    context = context or AnalysisContext(program, main_class)
    if snapshot is not None:
        context.snapshot = snapshot
    if drag is not None:
        context.drag = drag
    manager = standard_pass_manager(context, telemetry=telemetry)
    result = LintResult(program_path=program_path, main_class=main_class)
    if telemetry is None:
        return manager.run_all(result, rules=rules)
    with telemetry.span("lint.run_all", category="lint", main=main_class):
        manager.run_all(result, rules=rules)
    for rule_id, count in sorted(result.counts().items()):
        telemetry.record_lint_diagnostics(rule_id, count)
    return result


def lint_file(
    path: str,
    main_class: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
    telemetry=None,
    snapshot=None,
    drag=None,
) -> LintResult:
    """Load, link, and lint a ``.mj`` source file."""
    from repro.runtime.library import link

    with open(path, "r", encoding="utf-8") as f:
        source = f.read()
    program = link(source)
    if main_class is None:
        main_class = detect_main_class(program)
    return lint_program(
        program, main_class, program_path=path, rules=rules, telemetry=telemetry,
        snapshot=snapshot, drag=drag,
    )
